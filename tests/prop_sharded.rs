//! Compositional-correctness property suite: the sharded search
//! ([`ral_core::ralin::search_sharded`]) must agree with the monolithic
//! memoized engine and with the naive brute-force ground truth on
//! composed `MultiCluster` histories — 2–4 objects, both timestamp
//! disciplines (`⊗` per-object and `⊗ts` shared), every op-based CRDT
//! type — and on corrupted histories all three must refute together.
//!
//! Runs on the workspace's seeded harness
//! ([`ral_core::rng::run_seeded_cases`]); a failing case prints its seed.

use ral_core::compose::{MultiObjRewrite, MultiObjSpec, ObjLabel};
use ral_core::history::{rewrite_history, History, OpRecord};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::{Identity, Rewrite};
use ral_core::ralin::{
    check_linearization, search_brute_with_budget, search_sharded_with_threads,
    search_with_threads, SearchOutcome,
};
use ral_core::rng::{run_seeded_cases, Rng};
use ral_core::spec::Spec;
use ral_crdts::op::counter::OpCounter;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::{OrSet, OrSetRewrite};
use ral_crdts::op::rga::Rga;
use ral_crdts::op::rga_addat::RgaAddAt;
use ral_crdts::op::wooki::Wooki;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::OpBased;
use ral_runtime::schedule::{drive_multi, ScheduleConfig};
use ral_spec::addat::AddAt3Spec;
use ral_spec::counter::CounterSpec;
use ral_spec::register::RegSpec;
use ral_spec::rga::RgaSpec;
use ral_spec::set::OrSetSpec;
use ral_spec::wooki::WookiSpec;
use ral_verify::workloads;

/// Node budget for the cross-checks; these histories are small enough
/// that only the naive engine ever comes near it.
const CROSS_BUDGET: u64 = 2_000_000;

fn small_cfg(steps: usize) -> ScheduleConfig {
    ScheduleConfig {
        steps,
        ..ScheduleConfig::default()
    }
}

/// Picks a composition shape from the seed stream: 2–4 objects, either
/// timestamp discipline.
fn composition_shape(rng: &mut Rng) -> (usize, TsMode) {
    let objects = rng.random_range(2..=4usize);
    let mode = if rng.random_bool(0.5) {
        TsMode::Shared
    } else {
        TsMode::PerObject
    };
    (objects, mode)
}

/// Asserts sharded ≡ memo ≡ brute on one rewritten composed history.
///
/// When an engine exhausts its (engine-specific) budget only the absence
/// of contradiction is required; otherwise the verdicts must match, and a
/// sharded witness must validate end to end.
fn cross_check_composed<S>(h: &History<S::Label>, spec: &S)
where
    S: ral_core::ralin::ShardableSpec + Sync,
    S::Label: ral_core::compose::ComposedLabel + Sync,
{
    let brute = search_brute_with_budget(h, spec, CROSS_BUDGET);
    let memo = search_with_threads(h, spec, CROSS_BUDGET, 1);
    let sharded_seq = search_sharded_with_threads(h, spec, CROSS_BUDGET, 1);
    let sharded_par = search_sharded_with_threads(h, spec, CROSS_BUDGET, 3);
    assert_eq!(
        sharded_seq, sharded_par,
        "sharded outcome must be thread-count independent"
    );
    if let SearchOutcome::Linearizable(lin) = &sharded_seq {
        assert_eq!(
            check_linearization(h, spec, &lin.order),
            Ok(()),
            "sharded witness must validate against the composed history"
        );
    }
    let engines = [&brute, &memo, &sharded_seq];
    if engines
        .iter()
        .any(|o| matches!(o, SearchOutcome::BudgetExhausted))
    {
        let lin = engines.iter().any(|o| o.is_linearizable());
        let refuted = engines.iter().any(|o| o.is_refuted());
        assert!(
            !(lin && refuted),
            "engines contradict each other: brute={brute:?} memo={memo:?} sharded={sharded_seq:?}"
        );
    } else {
        assert_eq!(brute.is_linearizable(), memo.is_linearizable());
        assert_eq!(
            memo.is_linearizable(),
            sharded_seq.is_linearizable(),
            "sharded verdict must agree with the monolithic engine: memo={memo:?} sharded={sharded_seq:?}"
        );
    }
}

/// Drives a composed cluster and cross-checks the rewritten history.
#[allow(clippy::too_many_arguments)]
fn cross_check_multi<C, R, S>(
    crdt: C,
    seed: u64,
    steps: usize,
    objects: usize,
    mode: TsMode,
    inner_rw: R,
    inner_spec: S,
    gen: impl FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
) where
    C: OpBased,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mut c = MultiCluster::new(crdt, objects, 3, mode);
    drive_multi(&mut c, &small_cfg(steps), seed, gen);
    assert!(c.converged());
    let h = c.into_history();
    let rewritten = rewrite_history(&h, &MultiObjRewrite::new(inner_rw));
    cross_check_composed(&rewritten.history, &MultiObjSpec::new(inner_spec, objects));
}

#[test]
fn sharded_matches_engines_counter() {
    run_seeded_cases("sharded_matches_engines_counter", 24, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        cross_check_multi(
            OpCounter,
            seed,
            12,
            objects,
            mode,
            Identity,
            CounterSpec,
            |rng, _, _, _| Some(workloads::counter(rng)),
        );
    });
}

#[test]
fn sharded_matches_engines_lww_register() {
    run_seeded_cases("sharded_matches_engines_lww_register", 24, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        cross_check_multi(
            LwwRegister::<u8>::new(),
            seed,
            12,
            objects,
            mode,
            Identity,
            RegSpec::new(),
            |rng, _, _, _| Some(workloads::lww_register(rng)),
        );
    });
}

#[test]
fn sharded_matches_engines_or_set() {
    run_seeded_cases("sharded_matches_engines_or_set", 24, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        cross_check_multi(
            OrSet::<u8>::new(),
            seed,
            12,
            objects,
            mode,
            OrSetRewrite::new(),
            OrSetSpec::new(),
            |rng, _, _, _| Some(workloads::or_set(rng)),
        );
    });
}

#[test]
fn sharded_matches_engines_rga() {
    run_seeded_cases("sharded_matches_engines_rga", 24, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        let mut next = 0;
        cross_check_multi(
            Rga::<u16>::new(),
            seed,
            12,
            objects,
            mode,
            Identity,
            RgaSpec::new(),
            |rng, _, _, st| workloads::rga(rng, st, &mut next),
        );
    });
}

#[test]
fn sharded_matches_engines_rga_addat() {
    run_seeded_cases("sharded_matches_engines_rga_addat", 16, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        let mut next = 0;
        cross_check_multi(
            RgaAddAt::<u16>::new(),
            seed,
            10,
            objects,
            mode,
            Identity,
            AddAt3Spec::new(),
            |rng, _, _, st| workloads::rga_addat(rng, st, &mut next),
        );
    });
}

#[test]
fn sharded_matches_engines_wooki() {
    run_seeded_cases("sharded_matches_engines_wooki", 16, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        let mut next = 0;
        cross_check_multi(
            Wooki::<u16>::new(),
            seed,
            10,
            objects,
            mode,
            Identity,
            WookiSpec::new(),
            |rng, _, _, st| workloads::wooki(rng, st, &mut next, 4),
        );
    });
}

/// Corrupted composed histories must be *refuted*, and identically so:
/// bump a counter read so no shard (and no global order) can justify it,
/// then demand all three engines agree.
#[test]
fn sharded_matches_engines_on_refutations() {
    run_seeded_cases("sharded_matches_engines_on_refutations", 24, |seed, rng| {
        let (objects, mode) = composition_shape(rng);
        let mut c = MultiCluster::new(OpCounter, objects, 3, mode);
        drive_multi(&mut c, &small_cfg(12), seed, |rng, _, _, _| {
            Some(workloads::counter(rng))
        });
        let h = c.into_history();
        let bump = rng.random_range(1i64..4);
        let mut corrupted: History<ObjLabel<ral_spec::counter::CounterOp>> = History::new();
        for (i, op) in h.iter() {
            let label = match op.label.label.clone() {
                ral_spec::counter::CounterOp::Read(v) => {
                    ral_spec::counter::CounterOp::Read(v + bump)
                }
                other => other,
            };
            corrupted.push_set(
                OpRecord {
                    label: ObjLabel::new(op.label.obj, label),
                    replica: op.replica,
                    ts: op.ts,
                },
                h.preds(i).clone(),
            );
        }
        cross_check_composed(&corrupted, &MultiObjSpec::new(CounterSpec, objects));
    });
}
