//! Experiment E3 — Figure 5: OR-Set is not linearizable w.r.t. the plain
//! set specification, but is RA-linearizable after the query-update
//! rewriting.
//!
//! Each replica adds the other's element, adds its own, and removes one
//! element having observed only a single identifier; after full delivery
//! both reads return `{a, b}`. Any linearization of the *plain* labels must
//! end with a remove, so a read seeing every update cannot return two
//! elements (Section 2.2). The γ-rewriting of Figure 5b splits each remove
//! into `readIds · remove(R)` and restores linearizability.

use ral_core::history::{rewrite_history, History};
use ral_core::ids::ReplicaId;
use ral_core::label::SpecLabel;
use ral_core::linearizability::linearizable;
use ral_core::ralin::{check_guided, ra_check, ra_search, search, search_brute, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetLabel, OrSetRet, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_spec::set::{OrSetSpec, SetOp, SetSpec};
use std::collections::BTreeSet;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

/// Builds the Figure 5a execution and returns its history.
fn fig5a_history() -> History<OrSetLabel<char>> {
    let mut c = Cluster::new(OrSet::<char>::new(), 2);
    // r0: add(b); add(a); remove(a) — the remove observes only r0's own add
    // of a (r1's add(a) has not been delivered).
    // r1: add(a); add(b); remove(b) — symmetric.
    c.invoke(r(0), OrSetCall::Add('b')).unwrap();
    c.invoke(r(1), OrSetCall::Add('a')).unwrap();
    c.invoke(r(0), OrSetCall::Add('a')).unwrap();
    c.invoke(r(1), OrSetCall::Add('b')).unwrap();
    let rem_a = c.invoke(r(0), OrSetCall::Remove('a')).unwrap();
    let rem_b = c.invoke(r(1), OrSetCall::Remove('b')).unwrap();
    // Each remove observed exactly one identifier.
    match (&rem_a.ret, &rem_b.ret) {
        (OrSetRet::Removed(ra), OrSetRet::Removed(rb)) => {
            assert_eq!(ra.len(), 1, "remove(a) observed a single pair");
            assert_eq!(rb.len(), 1, "remove(b) observed a single pair");
        }
        _ => panic!("unexpected returns"),
    }
    c.deliver_all();
    assert!(c.converged());
    // Both reads see all six updates and return {a, b}.
    let x = c.invoke(r(0), OrSetCall::Read).unwrap();
    let y = c.invoke(r(1), OrSetCall::Read).unwrap();
    assert_eq!(x.ret, OrSetRet::Values(BTreeSet::from(['a', 'b'])));
    assert_eq!(y.ret, OrSetRet::Values(BTreeSet::from(['a', 'b'])));
    c.into_history()
}

#[test]
fn fig5a_not_linearizable_against_plain_set() {
    let h = fig5a_history().map(|l| OrSet::plain_label(&l));
    // Standard linearizability (queries against the whole prefix): refuted.
    assert!(
        linearizable(&h, &SetSpec::new()).is_refuted(),
        "Figure 5a must not be linearizable w.r.t. Spec(Set)"
    );
    // Even with the sub-sequence relaxation for queries (but remove still a
    // plain update), no witness exists: the reads see every update.
    assert!(
        search(&h, &SetSpec::new()).is_refuted(),
        "the sub-sequence relaxation alone cannot explain Figure 5a"
    );
    // The memoized engine (the default `search`) and the naive seed-era
    // enumeration must agree on the paper's flagship negative result.
    assert_eq!(
        search_brute(&h, &SetSpec::new()),
        search(&h, &SetSpec::new())
    );
}

#[test]
fn fig5b_ra_linearizable_after_rewriting() {
    let h = fig5a_history();
    // The guided execution-order linearization validates (Theorem 4.4)…
    let lin = ra_check(
        &h,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .expect("OR-Set history must be RA-linearizable after γ");
    // …and so does the complete search.
    assert!(ra_search(&h, &OrSetRewrite::new(), &OrSetSpec::new()).is_linearizable());
    // The rewriting splits the two removes: 8 operations become 10.
    assert_eq!(h.len(), 8);
    assert_eq!(lin.order.len(), 10);
}

#[test]
fn fig5b_rewriting_shape() {
    let h = fig5a_history();
    let rw = rewrite_history(&h, &OrSetRewrite::new());
    // Two query-updates split; queries and updates are correctly classified.
    let queries = (0..rw.history.len())
        .filter(|&i| rw.history.label(i).is_query())
        .count();
    // 2 readIds + 2 reads.
    assert_eq!(queries, 4);
    let updates = rw.history.len() - queries;
    // 4 adds + 2 removes.
    assert_eq!(updates, 6);
    // The query part of each remove sees what the remove saw, and precedes
    // its update part.
    for parts in &rw.parts {
        if let ral_core::history::Parts::Split { query, update } = *parts {
            assert!(rw.history.sees(update, query));
        }
    }
}

#[test]
fn fig5_interleaving_intuition() {
    // Figure 4: under sequential interleavings, add(a) · add(a) · remove(a)
    // leaves the set empty, while add(a) · remove(a) · add(a) leaves {a}.
    let spec = SetSpec::new();
    let empty = [
        SetOp::Add('a'),
        SetOp::Add('a'),
        SetOp::Remove('a'),
        SetOp::Read(BTreeSet::new()),
    ];
    assert!(ral_core::spec::admits(&spec, &empty));
    let kept = [
        SetOp::Add('a'),
        SetOp::Remove('a'),
        SetOp::Add('a'),
        SetOp::Read(BTreeSet::from(['a'])),
    ];
    assert!(ral_core::spec::admits(&spec, &kept));
}

#[test]
fn fig5b_guided_equals_search_on_rewritten_history() {
    // Cross-check: the guided EO witness is also accepted by the validator
    // used inside the brute-force search.
    let h = fig5a_history();
    let rw = rewrite_history(&h, &OrSetRewrite::new());
    let lin = check_guided(&rw.history, &OrSetSpec::new(), Strategy::ExecutionOrder).unwrap();
    assert!(rw.history.order_consistent(&lin.order));
}
