//! Experiment E2 — Figures 3 and 13: histories and the operational
//! semantics of RGA.
//!
//! Figure 13 steps through three global configurations of an RGA execution:
//! two replicas insert concurrently under a shared parent, the effectors are
//! exchanged, and a `remove` extends the visibility relation. We replay the
//! execution and assert the recorded label sets and visibility edges.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_spec::rga::{Anchor, RgaOp, RgaSpec};

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

#[test]
fn fig13_global_configurations() {
    let mut c = Cluster::new(Rga::<char>::new(), 2);

    // r0: addAfter(◦, a); r1: addAfter(◦, b) — concurrent.
    let a = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap()
        .op;
    let b = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Head, 'b'))
        .unwrap()
        .op;

    // b's effector reaches r0; r0 inserts c after b.
    let to_r0 = c.deliverable(r(0));
    assert_eq!(to_r0.len(), 1);
    c.deliver(r(0), to_r0[0]);
    let cc = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Elem('b'), 'c'))
        .unwrap()
        .op;

    // r1 concurrently inserts d after b.
    let d = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Elem('b'), 'd'))
        .unwrap()
        .op;

    // Figure 13a: r0 has applied {a, b, c}; the visibility relation contains
    // exactly the pairs drawn in the figure.
    assert!(c.seen(r(0)).contains(a));
    assert!(c.seen(r(0)).contains(b));
    assert!(c.seen(r(0)).contains(cc));
    assert!(!c.seen(r(0)).contains(d));
    let h = c.history();
    assert!(h.sees(cc, a), "addAfter(◦,a) ≺ addAfter(b,c)");
    assert!(h.sees(cc, b), "addAfter(◦,b) ≺ addAfter(b,c)");
    assert!(h.sees(d, b), "addAfter(◦,b) ≺ addAfter(b,d)");
    assert!(!h.sees(d, a), "a is not visible to d");
    assert!(h.concurrent(a, b));
    assert!(h.concurrent(cc, d));

    // Figure 13a → 13b: the effector of addAfter(b,d) reaches r0. The
    // visibility relation does not change — only the local configuration.
    let edge_count_before: usize = (0..h.len()).map(|i| h.preds(i).len()).sum();
    let to_r0 = c.deliverable(r(0));
    assert_eq!(to_r0.len(), 1);
    c.deliver(r(0), to_r0[0]);
    assert!(c.seen(r(0)).contains(d));
    let edge_count_after: usize = {
        let h = c.history();
        (0..h.len()).map(|i| h.preds(i).len()).sum()
    };
    assert_eq!(
        edge_count_before, edge_count_after,
        "delivery must not extend visibility (Figure 13b)"
    );

    // Figure 13b → 13c: r0 executes remove(b), which sees all four inserts.
    let rem = c.invoke(r(0), RgaCall::Remove('b')).unwrap().op;
    let h = c.history();
    for earlier in [a, b, cc, d] {
        assert!(
            h.sees(rem, earlier),
            "remove(b) must see operation {earlier}"
        );
    }
    assert_eq!(c.state(r(0)).tombstones().iter().count(), 1);

    // The Figure 3 history shape: visibility is transitive and the
    // execution linearizes under timestamp order.
    assert!(h.is_transitive());
    c.deliver_all();
    assert!(c.converged());
    let h = c.into_history();
    ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder).unwrap();
}

#[test]
fn fig3_labels_and_arrows() {
    // The history of the Figure 2 execution, as drawn in Figure 3:
    // addAfter(◦,a) → addAfter(a,b), addAfter(a,c) → addAfter(c,d),
    // addAfter(c,e) → remove(d).
    let mut c = Cluster::new(Rga::<char>::new(), 2);
    let a = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap()
        .op;
    c.deliver_all();
    let b = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'b'))
        .unwrap()
        .op;
    let cc = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Elem('a'), 'c'))
        .unwrap()
        .op;
    c.deliver_all();
    let d = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Elem('c'), 'd'))
        .unwrap()
        .op;
    let e = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Elem('c'), 'e'))
        .unwrap()
        .op;
    c.deliver_all();
    let rem = c.invoke(r(0), RgaCall::Remove('d')).unwrap().op;

    let h = c.history();
    assert_eq!(h.label(a), &RgaOp::AddAfter(Anchor::Head, 'a'));
    assert_eq!(h.label(rem), &RgaOp::Remove('d'));
    // Arrows of Figure 3 (transitive closure included).
    assert!(h.sees(b, a));
    assert!(h.sees(cc, a));
    assert!(h.concurrent(b, cc));
    assert!(h.sees(d, b) && h.sees(d, cc));
    assert!(h.sees(e, b) && h.sees(e, cc));
    assert!(h.concurrent(d, e));
    assert!(h.sees(rem, d) && h.sees(rem, e));
}
