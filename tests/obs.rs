//! Observability integration: the recorded event stream must agree with
//! the ground truth it mirrors, and the virtual-domain Perfetto export
//! must be golden-stable for a fixed seed.
//!
//! * Per-link delivery counters sum to the simulator's own [`SimStats`]
//!   totals — every send, drop, duplicate, and applied batch is attributed
//!   to exactly one link.
//! * The checker's emitted `ralin.*` counters equal the [`SearchStats`]
//!   the search returns.
//! * A small fixed-seed simulation renders to a byte-pinned Chrome
//!   trace-event JSON (wall-domain events excluded — only the virtual
//!   clock is deterministic).
//!
//! The `ral-obs` sink is process-global, so this suite lives in its own
//! test binary and every test serializes on [`OBS_LOCK`].
//!
//! [`SimStats`]: ral_sim::sim::SimStats
//! [`SearchStats`]: ral_core::ralin::SearchStats

use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_core::ralin::search_with_threads_stats;
use ral_core::rng::Rng;
use ral_crdts::op::or_set::OrSet;
use ral_crdts::state::pn_counter::PnCounter;
use ral_sim::driver::{Driver, OpDriver, StateDriver};
use ral_sim::fault::FaultPlan;
use ral_sim::network::{Latency, LinkFaults, Network, Topology};
use ral_sim::scenario;
use ral_sim::sim::{self, SimConfig};
use ral_sim::time::SimTime;
use ral_spec::counter::{CounterOp, CounterSpec};
use ral_verify::workloads;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with recording on (from a clean sink) and returns its result
/// alongside the drained snapshot.
fn recorded<R>(f: impl FnOnce() -> R) -> (R, ral_obs::Snapshot) {
    ral_obs::reset();
    ral_obs::enable(None);
    let out = f();
    ral_obs::disable();
    let snap = ral_obs::drain();
    ral_obs::reset();
    (out, snap)
}

/// Every link-keyed counter must sum to the corresponding `SimStats`
/// total, on the corpus scenario that exercises loss, duplication, and
/// retries all at once.
#[test]
fn per_link_counters_agree_with_sim_stats() {
    let _guard = OBS_LOCK.lock().unwrap();
    let sc = scenario::flaky_wan();
    let (stats, snap) = recorded(|| {
        let mut driver = StateDriver::new(PnCounter, sc.cfg.n_replicas, |rng: &mut Rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
        let run = sim::run(&mut driver, &sc.cfg, 11);
        assert!(driver.converged(), "flaky_wan must converge");
        run.stats
    });
    assert_eq!(snap.dropped, 0, "lane capacity must hold the whole run");
    let sum = |name: &str| snap.counter_by_key(name).values().sum::<u64>();
    assert_eq!(sum("sim.link.sends"), stats.sends as u64);
    assert_eq!(sum("sim.link.bytes"), stats.payload_bytes);
    assert_eq!(sum("sim.link.dropped"), stats.dropped as u64);
    assert_eq!(sum("sim.link.applied"), stats.applied as u64);
    assert_eq!(sum("sim.link.duplicated"), stats.duplicated as u64);
    // The cross-check only means something if the faults actually fired.
    assert!(stats.dropped > 0, "scenario must drop snapshots");
    assert!(stats.duplicated > 0, "scenario must duplicate snapshots");
    // Every attributed link is a real (from, to) pair, and no link talks
    // to itself.
    for (&key, _) in snap.counter_by_key("sim.link.sends").iter() {
        let (from, to) = ral_obs::link_from_to(key);
        assert!((from as usize) < sc.cfg.n_replicas);
        assert!((to as usize) < sc.cfg.n_replicas);
        assert_ne!(from, to, "no self-links");
    }
}

/// The canonical impossible-read refutation: `n` concurrent increments
/// and a read that claims one too many.
fn impossible_history(n: usize) -> History<CounterOp> {
    let mut h = History::new();
    let incs: Vec<usize> = (0..n)
        .map(|i| h.push(OpRecord::new(CounterOp::Inc, ReplicaId(i as u32)), []))
        .collect();
    h.push(
        OpRecord::new(CounterOp::Read(n as i64 + 1), ReplicaId(0)),
        incs,
    );
    h
}

/// The `ralin.*` counters the search emits must equal the `SearchStats`
/// it returns — one code path feeds both.
#[test]
fn checker_counters_agree_with_search_stats() {
    let _guard = OBS_LOCK.lock().unwrap();
    let h = impossible_history(10);
    let ((outcome, stats), snap) =
        recorded(|| search_with_threads_stats(&h, &CounterSpec, u64::MAX, 1));
    assert!(outcome.is_refuted());
    assert!(snap.has_span("ralin.search"));
    assert_eq!(
        snap.counter_total("ralin.nodes_expanded"),
        stats.nodes_expanded
    );
    assert_eq!(snap.counter_total("ralin.memo_hits"), stats.memo_hits);
    assert_eq!(snap.counter_total("ralin.branches"), stats.branches);
    assert_eq!(
        snap.counter_total("ralin.prune.frontier_death"),
        stats.prune_frontier_death
    );
    assert!(
        stats.memo_hits > 0,
        "the refutation must revisit configurations"
    );
}

/// FNV-1a, 64-bit — enough to pin a golden byte string without embedding
/// all of it in the source.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deliberately tiny lossless run: 2 replicas, short active phase.
fn tiny_cfg() -> SimConfig {
    SimConfig {
        n_replicas: 2,
        duration: SimTime(120),
        invoke_every: Latency::jittered(25, 30),
        gossip_every: Latency::jittered(20, 25),
        network: Network {
            topology: Topology::Uniform(Latency::jittered(3, 10)),
            faults: LinkFaults::NONE,
            retry: 10,
        },
        faults: FaultPlan::none(),
        final_sync: true,
    }
}

fn tiny_trace() -> String {
    let cfg = tiny_cfg();
    let (_, snap) = recorded(|| {
        let mut driver =
            OpDriver::new(OrSet::<u8>::new(), cfg.n_replicas, |rng: &mut Rng, _, _| {
                Some(workloads::or_set(rng))
            });
        sim::run(&mut driver, &cfg, 7);
        assert!(driver.converged());
    });
    // Wall-domain events (none are expected inside a sim run, but the
    // exclusion is the documented golden contract) are filtered out:
    // only virtual-clock timestamps replay exactly.
    let opts = ral_obs::perfetto::TraceOptions {
        include_wall: false,
    };
    ral_obs::perfetto::render_trace(&snap, &opts)
}

/// The virtual-domain Perfetto export of a fixed-seed run is pinned to
/// the byte. If this fails because the trace format or the sim's
/// instrumentation *intentionally* changed, re-pin the hash; anything
/// else is a determinism regression (recorded traces would no longer
/// replay).
#[test]
fn perfetto_export_is_golden() {
    let _guard = OBS_LOCK.lock().unwrap();
    let trace = tiny_trace();
    ral_obs::json::validate(&trace).expect("trace must be valid JSON");
    assert_eq!(tiny_trace(), trace, "export must be run-to-run identical");
    assert!(trace.contains("\"name\": \"sim.run\""));
    assert!(trace.contains("\"name\": \"sim.event.invoke\""));
    assert!(trace.contains("\"name\": \"sim.final_sync\""));
    assert_eq!(
        fnv1a(trace.as_bytes()),
        17_355_052_159_729_752_074,
        "golden Perfetto trace drifted ({} bytes)",
        trace.len()
    );
}
