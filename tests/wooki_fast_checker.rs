//! Cross-validation of the polynomial Wooki validator against the generic
//! frontier-based checker, and the scale it unlocks.
//!
//! `Spec(Wooki)` is nondeterministic, so the generic checker's frontier of
//! abstract states grows exponentially with concurrent inserts; the
//! constraint-graph validator (`ral_spec::wooki_fast`) decides the same
//! conditions in polynomial time. On small histories the two must agree
//! verdict for verdict; on large ones only the fast one is feasible.

use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::wooki::{Wooki, WookiCall};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
use ral_spec::wooki::{WookiAnchor, WookiOp, WookiSpec};
use ral_spec::wooki_fast::check_wooki_guided;

fn random_wooki_history(
    seed: u64,
    steps: usize,
    insert_cap: u16,
) -> ral_core::history::History<WookiOp<u16>> {
    let mut c = Cluster::new(Wooki::<u16>::new(), 3);
    let mut next: u16 = 0;
    let cfg = ScheduleConfig {
        steps,
        invoke_weight: 1,
        deliver_weight: 1,
        final_sync: true,
    };
    drive_op_based(&mut c, &cfg, seed, |rng, _, state| {
        let roll: u8 = rng.random_range(0..10);
        if roll < 4 && next < insert_cap {
            let all = state.all_values();
            let (left, right) = if all.is_empty() {
                (WookiAnchor::Begin, WookiAnchor::End)
            } else {
                let i = rng.random_range(0..=all.len());
                let j = rng.random_range(i..=all.len());
                let left = if i == 0 {
                    WookiAnchor::Begin
                } else {
                    WookiAnchor::Elem(all[i - 1])
                };
                let right = if j == all.len() {
                    WookiAnchor::End
                } else {
                    WookiAnchor::Elem(all[j])
                };
                (left, right)
            };
            next += 1;
            Some(WookiCall::AddBetween(left, next, right))
        } else if roll < 6 {
            let vis = state.visible();
            if vis.is_empty() {
                None
            } else {
                Some(WookiCall::Remove(vis[rng.random_range(0..vis.len())]))
            }
        } else {
            Some(WookiCall::Read)
        }
    });
    assert!(c.converged(), "seed {seed} did not converge");
    c.into_history()
}

#[test]
fn fast_checker_agrees_with_frontier_on_small_histories() {
    for seed in 0..25 {
        let h = random_wooki_history(seed, 20, 7);
        let frontier = ra_check(&h, &Identity, &WookiSpec::new(), Strategy::ExecutionOrder);
        let fast = check_wooki_guided(&h);
        assert_eq!(
            frontier.is_ok(),
            fast.is_ok(),
            "seed {seed}: frontier {frontier:?} vs fast {fast:?}"
        );
        assert!(fast.is_ok(), "seed {seed}: Wooki histories must validate");
    }
}

#[test]
fn fast_checker_agrees_on_corrupted_histories() {
    // Corrupt the last read of each history and confirm both checkers
    // reject identically.
    for seed in 0..15 {
        let h = random_wooki_history(seed, 20, 6);
        let Some(read_idx) = (0..h.len())
            .rev()
            .find(|&i| matches!(h.label(i), WookiOp::Read(_)))
        else {
            continue;
        };
        let mut corrupted = ral_core::history::History::new();
        for (i, op) in h.iter() {
            let label = if i == read_idx {
                // Claim an element that was never inserted.
                WookiOp::Read(vec![u16::MAX])
            } else {
                op.label.clone()
            };
            corrupted.push_set(
                ral_core::history::OpRecord {
                    label,
                    replica: op.replica,
                    ts: op.ts,
                },
                h.preds(i).clone(),
            );
        }
        let frontier = ra_check(
            &corrupted,
            &Identity,
            &WookiSpec::new(),
            Strategy::ExecutionOrder,
        );
        let fast = check_wooki_guided(&corrupted);
        assert!(frontier.is_err(), "seed {seed}: corrupted read must fail");
        assert_eq!(frontier.is_ok(), fast.is_ok(), "seed {seed}");
    }
}

#[test]
fn fast_checker_scales_to_large_sessions() {
    // ~50 concurrent inserts would put the frontier far beyond reach; the
    // constraint-graph validator handles it comfortably.
    for seed in 0..5 {
        let h = random_wooki_history(seed, 200, 60);
        assert!(h.len() > 80, "seed {seed}: expected a sizeable history");
        check_wooki_guided(&h)
            .unwrap_or_else(|v| panic!("seed {seed}: large Wooki session rejected: {v}"));
    }
}

#[test]
fn deliberate_divergence_is_detected_at_scale() {
    // Flip two adjacent elements in the final read of a large session: the
    // constraints (if any exist between them) or the element sets must
    // catch tampering. We swap an element for a fresh value, which is
    // always caught.
    let h = random_wooki_history(3, 200, 60);
    let Some(read_idx) = (0..h.len())
        .rev()
        .find(|&i| matches!(h.label(i), WookiOp::Read(s) if !s.is_empty()))
    else {
        panic!("no non-empty read in the session");
    };
    let mut corrupted = ral_core::history::History::new();
    for (i, op) in h.iter() {
        let label = match (i == read_idx, op.label.clone()) {
            (true, WookiOp::Read(mut s)) => {
                s[0] = 9999;
                WookiOp::Read(s)
            }
            (_, l) => l,
        };
        corrupted.push_set(
            ral_core::history::OpRecord {
                label,
                replica: op.replica,
                ts: op.ts,
            },
            h.preds(i).clone(),
        );
    }
    assert!(check_wooki_guided(&corrupted).is_err());
}

#[test]
fn wooki_figure12_row_via_fast_checker() {
    // The Figure 12 claim for Wooki (OB, EO), re-established at a scale the
    // frontier checker cannot reach.
    let mut checked = 0;
    for seed in 100..110 {
        let h = random_wooki_history(seed, 120, 40);
        check_wooki_guided(&h).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        checked += h.len();
    }
    assert!(checked > 500, "exercised {checked} operations");
}
