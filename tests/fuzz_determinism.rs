//! Fuzzer determinism: the whole campaign is a pure function of its seed.
//!
//! Same seed ⇒ byte-identical scenario stream (pinned by the folded FNV),
//! byte-identical coverage map, and a byte-identical `FUZZ_report.json`
//! (modulo wall-clock, which the report keeps in a single trailing field
//! and which these tests simply omit). The shrinker is deterministic, a
//! fixpoint under re-shrinking, and 1-minimal w.r.t. element removal —
//! exactly the properties that make a shipped counterexample replayable.

use ral_fuzz::oracle::run_scenario;
use ral_fuzz::scenario::Family;
use ral_fuzz::shrink::{one_element_removals, shrink};
use ral_fuzz::{fuzz, report, FuzzConfig};

fn shipped(seed: u64, runs: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        runs,
        search_budget: 200_000,
        ..Default::default()
    }
}

fn broken(seed: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        runs: 10,
        families: Family::BROKEN.to_vec(),
        search_budget: 1_000,
        shrink_replays: 300,
    }
}

/// Two campaigns from one seed agree on every observable: the scenario
/// stream, the coverage map, the verdict counters, and the report bytes.
/// A third campaign from a different seed produces a different stream.
#[test]
fn same_seed_means_byte_identical_campaigns() {
    let cfg = shipped(11, 15);
    let a = fuzz(&cfg);
    let b = fuzz(&cfg);
    assert_eq!(a.stream_fnv, b.stream_fnv, "scenario stream diverged");
    assert_eq!(
        a.coverage.render(),
        b.coverage.render(),
        "coverage map diverged"
    );
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!((a.runs, a.dedup, a.novel), (b.runs, b.dedup, b.novel));
    // The report with wall-clock omitted must be byte-identical too.
    let report_a = report::render_report(&cfg, &a, None);
    let report_b = report::render_report(&cfg, &b, None);
    assert_eq!(report_a, report_b, "FUZZ_report.json diverged");
    assert!(ral_obs::json::validate(&report_a).is_ok());

    let other = fuzz(&shipped(12, 15));
    assert_ne!(
        a.stream_fnv, other.stream_fnv,
        "different seeds, same stream"
    );
}

/// Campaigns that *find* something are deterministic end to end: both the
/// discovered scenario and its shrunk form come out byte-identical, so a
/// reported counterexample always replays.
#[test]
fn findings_and_their_shrunk_forms_are_deterministic() {
    let cfg = broken(3);
    let a = fuzz(&cfg);
    let b = fuzz(&cfg);
    assert!(!a.findings.is_empty(), "negative controls must be caught");
    assert_eq!(a.findings.len(), b.findings.len());
    for (fa, fb) in a.findings.iter().zip(&b.findings) {
        assert_eq!(fa.original.render(), fb.original.render());
        assert_eq!(fa.shrunk.render(), fb.shrunk.render());
        assert_eq!(fa.verdict, fb.verdict);
        assert_eq!(fa.replays, fb.replays, "shrink replay count diverged");
    }
    assert_eq!(
        report::render_report(&cfg, &a, None),
        report::render_report(&cfg, &b, None)
    );
}

/// Re-shrinking a shrunk counterexample is a no-op (fixpoint), and no
/// single structural element can be removed from it without losing the
/// verdict (1-minimality).
#[test]
fn shrinking_is_a_fixpoint_and_one_minimal() {
    let out = fuzz(&broken(3));
    let f = out.findings.first().expect("a finding to shrink");
    let again = shrink(&f.shrunk, 1_000, 300);
    assert_eq!(
        again.scenario.render(),
        f.shrunk.render(),
        "re-shrinking changed the scenario — not a fixpoint"
    );
    assert_eq!(again.verdict, f.verdict);
    for candidate in one_element_removals(&f.shrunk) {
        if candidate.validate().is_err() {
            continue;
        }
        assert_ne!(
            run_scenario(&candidate, 1_000).verdict,
            f.verdict,
            "an element could still be removed — not 1-minimal:\n{}",
            f.shrunk.render()
        );
    }
}
