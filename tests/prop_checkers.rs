//! Property-based cross-checks between the guided linearization strategies
//! and the complete brute-force search, over random CRDT executions.
//!
//! * If the guided witness validates, the brute-force search must find a
//!   witness too (trivially — but it exercises the search).
//! * If the brute-force search refutes, the guided check must fail
//!   (soundness of the guided path).
//! * For the data types of Figure 12, the guided check of the claimed class
//!   never fails, so guided and search always agree positively.
//!
//! Runs on the workspace's seeded harness
//! ([`ral_core::rng::run_seeded_cases`]); a failing case prints its seed.

use ral_core::history::rewrite_history;
use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{
    check_guided, count_linearizations, search_with_budget, SearchOutcome, Strategy,
};
use ral_core::rng::run_seeded_cases;
use ral_crdts::op::counter::{CounterCall, OpCounter};
use ral_crdts::op::lww_register::{LwwRegister, RegCall};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_runtime::op_based::{Cluster, OpBased};
use ral_spec::counter::CounterSpec;
use ral_spec::register::RegSpec;
use ral_spec::set::OrSetSpec;

mod common;
use common::random_schedule;

/// Interprets a [`random_schedule`]: action < 16 selects an invocation and
/// the rest request one delivery.
fn run_schedule<C: OpBased>(
    crdt: C,
    schedule: &[(u8, u8)],
    mut call_of: impl FnMut(u8, &C::State) -> Option<C::Call>,
) -> Cluster<C> {
    let mut cluster = Cluster::new(crdt, 3);
    for &(raw_replica, action) in schedule {
        let r = ReplicaId((raw_replica % 3) as u32);
        if action < 16 {
            if let Some(call) = call_of(action, cluster.state(r)) {
                cluster.invoke(r, call);
            }
        } else {
            let ds = cluster.deliverable(r);
            if !ds.is_empty() {
                let d = ds[(action as usize) % ds.len()];
                cluster.deliver(r, d);
            }
        }
    }
    cluster.deliver_all();
    cluster
}

/// Counter: guided EO always validates and the witness space is
/// non-empty under the brute-force counter.
#[test]
fn counter_guided_and_search_agree() {
    run_seeded_cases("counter_guided_and_search_agree", 64, |_, rng| {
        let schedule = random_schedule(rng, 14);
        let cluster = run_schedule(OpCounter, &schedule, |a, _| {
            Some(match a % 3 {
                0 => CounterCall::Inc,
                1 => CounterCall::Dec,
                _ => CounterCall::Read,
            })
        });
        assert!(cluster.converged());
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &Identity);
        let guided = check_guided(&rewritten.history, &CounterSpec, Strategy::ExecutionOrder);
        assert!(guided.is_ok(), "{guided:?}");
        let (count, complete) = count_linearizations(&rewritten.history, &CounterSpec, 2_000_000);
        assert!(count >= 1);
        let _ = complete;
    });
}

/// LWW-Register: guided TO always validates; when the execution-order
/// strategy fails, a witness still exists (TO is one).
#[test]
fn lww_register_to_subsumes_search() {
    run_seeded_cases("lww_register_to_subsumes_search", 64, |_, rng| {
        let schedule = random_schedule(rng, 14);
        let cluster = run_schedule(LwwRegister::<u8>::new(), &schedule, |a, _| {
            Some(if a % 2 == 0 {
                RegCall::Write(a % 4)
            } else {
                RegCall::Read
            })
        });
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &Identity);
        let spec = RegSpec::new();
        let to = check_guided(&rewritten.history, &spec, Strategy::TimestampOrder);
        assert!(to.is_ok(), "{to:?}");
        if check_guided(&rewritten.history, &spec, Strategy::ExecutionOrder).is_err() {
            let outcome = search_with_budget(&rewritten.history, &spec, 2_000_000);
            assert!(
                matches!(
                    outcome,
                    SearchOutcome::Linearizable(_) | SearchOutcome::BudgetExhausted
                ),
                "EO may fail, but a witness must still exist: {outcome:?}"
            );
        }
    });
}

/// OR-Set: the γ-rewritten guided EO witness always validates, and the
/// brute-force search never refutes.
#[test]
fn or_set_never_refuted() {
    run_seeded_cases("or_set_never_refuted", 64, |_, rng| {
        let schedule = random_schedule(rng, 12);
        let cluster = run_schedule(OrSet::<u8>::new(), &schedule, |a, _| {
            Some(match a % 4 {
                0 | 1 => OrSetCall::Add(a % 3),
                2 => OrSetCall::Remove(a % 3),
                _ => OrSetCall::Read,
            })
        });
        assert!(cluster.converged());
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        let spec = OrSetSpec::new();
        let guided = check_guided(&rewritten.history, &spec, Strategy::ExecutionOrder);
        assert!(guided.is_ok(), "{guided:?}");
        let outcome = search_with_budget(&rewritten.history, &spec, 2_000_000);
        assert!(!outcome.is_refuted());
    });
}

/// Tampering with a counter read's return value must be caught by both
/// the guided check and the search.
#[test]
fn corrupted_reads_are_rejected() {
    run_seeded_cases("corrupted_reads_are_rejected", 64, |_, rng| {
        let mut schedule = random_schedule(rng, 10);
        if schedule.is_empty() {
            schedule.push((rng.random_range(0..=u8::MAX), rng.random_range(0..=u8::MAX)));
        }
        let bump = rng.random_range(1i64..5);
        let cluster = run_schedule(OpCounter, &schedule, |a, _| {
            Some(if a % 2 == 0 {
                CounterCall::Inc
            } else {
                CounterCall::Read
            })
        });
        let h = cluster.into_history();
        // Corrupt the last read, if any.
        let mut labels: Vec<ral_spec::counter::CounterOp> =
            (0..h.len()).map(|i| h.label(i).clone()).collect();
        let Some(pos) = labels
            .iter()
            .rposition(|l| matches!(l, ral_spec::counter::CounterOp::Read(_)))
        else {
            return;
        };
        if let ral_spec::counter::CounterOp::Read(v) = labels[pos] {
            labels[pos] = ral_spec::counter::CounterOp::Read(v + bump);
        }
        let mut corrupted = ral_core::history::History::new();
        for (i, label) in labels.into_iter().enumerate() {
            let rec = ral_core::history::OpRecord {
                label,
                replica: h.op(i).replica,
                ts: h.op(i).ts,
            };
            corrupted.push_set(rec, h.preds(i).clone());
        }
        assert!(check_guided(&corrupted, &CounterSpec, Strategy::ExecutionOrder).is_err());
        let outcome = search_with_budget(&corrupted, &CounterSpec, 2_000_000);
        assert!(matches!(
            outcome,
            SearchOutcome::NotLinearizable | SearchOutcome::BudgetExhausted
        ));
    });
}
