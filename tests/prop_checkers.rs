//! Property-based cross-checks between the guided linearization strategies
//! and the complete brute-force search, over random CRDT executions.
//!
//! * If the guided witness validates, the brute-force search must find a
//!   witness too (trivially — but it exercises the search).
//! * If the brute-force search refutes, the guided check must fail
//!   (soundness of the guided path).
//! * For the data types of Figure 12, the guided check of the claimed class
//!   never fails, so guided and search always agree positively.
//!
//! Runs on the workspace's seeded harness
//! ([`ral_core::rng::run_seeded_cases`]); a failing case prints its seed.

use ral_core::history::{rewrite_history, History};
use ral_core::ids::ReplicaId;
use ral_core::label::{Identity, Rewrite};
use ral_core::ralin::{
    check_guided, count_linearizations, search_brute_with_budget, search_with_budget,
    search_with_threads, search_with_threads_stats, SearchOutcome, Strategy,
};
use ral_core::rng::run_seeded_cases;
use ral_core::spec::Spec;
use ral_crdts::op::counter::{CounterCall, OpCounter};
use ral_crdts::op::lww_register::{LwwRegister, RegCall};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_crdts::op::rga::Rga;
use ral_crdts::op::wooki::Wooki;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::mv_register::MvRegister;
use ral_crdts::state::pn_counter::PnCounter;
use ral_crdts::state::two_phase_set::TwoPhaseSet;
use ral_runtime::op_based::{Cluster, OpBased};
use ral_runtime::schedule::{drive_op_based, drive_state_based, ScheduleConfig};
use ral_runtime::state_based::{StateBased, StateCluster};
use ral_spec::counter::CounterSpec;
use ral_spec::register::{MvRegSpec, RegSpec};
use ral_spec::rga::RgaSpec;
use ral_spec::set::{OrSetSpec, SetSpec};
use ral_spec::wooki::WookiSpec;
use ral_verify::workloads;

mod common;
use common::random_schedule;

/// Interprets a [`random_schedule`]: action < 16 selects an invocation and
/// the rest request one delivery.
fn run_schedule<C: OpBased>(
    crdt: C,
    schedule: &[(u8, u8)],
    mut call_of: impl FnMut(u8, &C::State) -> Option<C::Call>,
) -> Cluster<C> {
    let mut cluster = Cluster::new(crdt, 3);
    for &(raw_replica, action) in schedule {
        let r = ReplicaId((raw_replica % 3) as u32);
        if action < 16 {
            if let Some(call) = call_of(action, cluster.state(r)) {
                cluster.invoke(r, call);
            }
        } else {
            let ds = cluster.deliverable(r);
            if !ds.is_empty() {
                let d = ds[(action as usize) % ds.len()];
                cluster.deliver(r, d);
            }
        }
    }
    cluster.deliver_all();
    cluster
}

/// Counter: guided EO always validates and the witness space is
/// non-empty under the brute-force counter.
#[test]
fn counter_guided_and_search_agree() {
    run_seeded_cases("counter_guided_and_search_agree", 64, |_, rng| {
        let schedule = random_schedule(rng, 14);
        let cluster = run_schedule(OpCounter, &schedule, |a, _| {
            Some(match a % 3 {
                0 => CounterCall::Inc,
                1 => CounterCall::Dec,
                _ => CounterCall::Read,
            })
        });
        assert!(cluster.converged());
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &Identity);
        let guided = check_guided(&rewritten.history, &CounterSpec, Strategy::ExecutionOrder);
        assert!(guided.is_ok(), "{guided:?}");
        let (count, _complete) = count_linearizations(&rewritten.history, &CounterSpec, 2_000_000);
        assert!(count >= 1);
    });
}

/// LWW-Register: guided TO always validates; when the execution-order
/// strategy fails, a witness still exists (TO is one).
#[test]
fn lww_register_to_subsumes_search() {
    run_seeded_cases("lww_register_to_subsumes_search", 64, |_, rng| {
        let schedule = random_schedule(rng, 14);
        let cluster = run_schedule(LwwRegister::<u8>::new(), &schedule, |a, _| {
            Some(if a % 2 == 0 {
                RegCall::Write(a % 4)
            } else {
                RegCall::Read
            })
        });
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &Identity);
        let spec = RegSpec::new();
        let to = check_guided(&rewritten.history, &spec, Strategy::TimestampOrder);
        assert!(to.is_ok(), "{to:?}");
        if check_guided(&rewritten.history, &spec, Strategy::ExecutionOrder).is_err() {
            let outcome = search_with_budget(&rewritten.history, &spec, 2_000_000);
            assert!(
                matches!(
                    outcome,
                    SearchOutcome::Linearizable(_) | SearchOutcome::BudgetExhausted
                ),
                "EO may fail, but a witness must still exist: {outcome:?}"
            );
        }
    });
}

/// OR-Set: the γ-rewritten guided EO witness always validates, and the
/// brute-force search never refutes.
#[test]
fn or_set_never_refuted() {
    run_seeded_cases("or_set_never_refuted", 64, |_, rng| {
        let schedule = random_schedule(rng, 12);
        let cluster = run_schedule(OrSet::<u8>::new(), &schedule, |a, _| {
            Some(match a % 4 {
                0 | 1 => OrSetCall::Add(a % 3),
                2 => OrSetCall::Remove(a % 3),
                _ => OrSetCall::Read,
            })
        });
        assert!(cluster.converged());
        let h = cluster.into_history();
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        let spec = OrSetSpec::new();
        let guided = check_guided(&rewritten.history, &spec, Strategy::ExecutionOrder);
        assert!(guided.is_ok(), "{guided:?}");
        let outcome = search_with_budget(&rewritten.history, &spec, 2_000_000);
        assert!(!outcome.is_refuted());
    });
}

// ---------------------------------------------------------------------
// Memoized-engine cross-checks: for every Figure 12 data type, the memo
// engine (sequential AND parallel) must agree bit-for-bit with the naive
// brute-force ground truth on random histories — same verdict and, for
// witnesses, the same (lexicographically minimal) order.
// ---------------------------------------------------------------------

/// Node budget for the cross-checks; the histories are small enough that
/// neither engine comes close.
const CROSS_BUDGET: u64 = 2_000_000;

/// Asserts brute ≡ memo(1 thread) ≡ memo(3 threads) on one rewritten
/// history. When either engine exhausts its (engine-specific) budget only
/// the absence of contradiction is required.
fn cross_check<S>(h: &History<S::Label>, spec: &S)
where
    S: Spec + Sync,
    S::Label: Sync,
{
    let brute = search_brute_with_budget(h, spec, CROSS_BUDGET);
    let memo_seq = search_with_threads(h, spec, CROSS_BUDGET, 1);
    let memo_par = search_with_threads(h, spec, CROSS_BUDGET, 3);
    assert_eq!(
        memo_seq, memo_par,
        "memo outcome must be thread-count independent"
    );
    if matches!(brute, SearchOutcome::BudgetExhausted)
        || matches!(memo_seq, SearchOutcome::BudgetExhausted)
    {
        let contradictory = (brute.is_linearizable() && memo_seq.is_refuted())
            || (brute.is_refuted() && memo_seq.is_linearizable());
        assert!(
            !contradictory,
            "engines contradict each other: brute={brute:?} memo={memo_seq:?}"
        );
    } else {
        assert_eq!(brute, memo_seq, "memo must be bit-identical to brute");
    }
}

fn cross_cfg(steps: usize) -> ScheduleConfig {
    ScheduleConfig {
        steps,
        ..ScheduleConfig::default()
    }
}

/// Drives an op-based cluster and cross-checks the rewritten history.
fn cross_check_op<C, R, S>(
    crdt: C,
    seed: u64,
    steps: usize,
    rw: &R,
    spec: &S,
    mut gen: impl FnMut(&mut ral_core::rng::Rng, ReplicaId, &C::State) -> Option<C::Call>,
) where
    C: OpBased + Clone,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mut c = Cluster::new(crdt, 3);
    drive_op_based(&mut c, &cross_cfg(steps), seed, &mut gen);
    let rewritten = rewrite_history(&c.into_history(), rw);
    cross_check(&rewritten.history, spec);
}

/// Drives a state-based cluster and cross-checks the rewritten history.
fn cross_check_state<C, S>(
    crdt: C,
    seed: u64,
    steps: usize,
    spec: &S,
    mut gen: impl FnMut(&mut ral_core::rng::Rng, ReplicaId, &C::State) -> Option<C::Call>,
) where
    C: StateBased + Clone,
    S: Spec + Sync,
    S::Label: Sync,
    Identity: Rewrite<C::Label, Out = S::Label>,
{
    let mut c = StateCluster::new(crdt, 3);
    drive_state_based(&mut c, &cross_cfg(steps), seed, &mut gen);
    let rewritten = rewrite_history(&c.into_history(), &Identity);
    cross_check(&rewritten.history, spec);
}

#[test]
fn memo_matches_brute_counter() {
    run_seeded_cases("memo_matches_brute_counter", 24, |seed, _| {
        cross_check_op(OpCounter, seed, 12, &Identity, &CounterSpec, |rng, _, _| {
            Some(workloads::counter(rng))
        });
    });
}

#[test]
fn memo_matches_brute_lww_register() {
    run_seeded_cases("memo_matches_brute_lww_register", 24, |seed, _| {
        cross_check_op(
            LwwRegister::<u8>::new(),
            seed,
            12,
            &Identity,
            &RegSpec::new(),
            |rng, _, _| Some(workloads::lww_register(rng)),
        );
    });
}

#[test]
fn memo_matches_brute_or_set() {
    run_seeded_cases("memo_matches_brute_or_set", 24, |seed, _| {
        cross_check_op(
            OrSet::<u8>::new(),
            seed,
            12,
            &OrSetRewrite::new(),
            &OrSetSpec::new(),
            |rng, _, _| Some(workloads::or_set(rng)),
        );
    });
}

#[test]
fn memo_matches_brute_rga() {
    run_seeded_cases("memo_matches_brute_rga", 24, |seed, _| {
        let mut next = 0;
        cross_check_op(
            Rga::<u16>::new(),
            seed,
            12,
            &Identity,
            &RgaSpec::new(),
            |rng, _, st| workloads::rga(rng, st, &mut next),
        );
    });
}

#[test]
fn memo_matches_brute_wooki() {
    run_seeded_cases("memo_matches_brute_wooki", 16, |seed, _| {
        let mut next = 0;
        cross_check_op(
            Wooki::<u16>::new(),
            seed,
            10,
            &Identity,
            &WookiSpec::new(),
            |rng, _, st| workloads::wooki(rng, st, &mut next, 4),
        );
    });
}

#[test]
fn memo_matches_brute_pn_counter() {
    run_seeded_cases("memo_matches_brute_pn_counter", 24, |seed, _| {
        cross_check_state(PnCounter, seed, 12, &CounterSpec, |rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
    });
}

#[test]
fn memo_matches_brute_mv_register() {
    run_seeded_cases("memo_matches_brute_mv_register", 24, |seed, _| {
        cross_check_state(
            MvRegister::<u8>::new(),
            seed,
            12,
            &MvRegSpec::new(),
            |rng, _, _| Some(workloads::mv_register(rng)),
        );
    });
}

#[test]
fn memo_matches_brute_lww_element_set() {
    run_seeded_cases("memo_matches_brute_lww_element_set", 24, |seed, _| {
        cross_check_state(
            LwwElementSet::<u8>::new(),
            seed,
            12,
            &SetSpec::new(),
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        );
    });
}

#[test]
fn memo_matches_brute_two_phase_set() {
    run_seeded_cases("memo_matches_brute_two_phase_set", 24, |seed, _| {
        let mut next = 0;
        cross_check_state(
            TwoPhaseSet::<u16>::new(),
            seed,
            12,
            &SetSpec::new(),
            |rng, _, st| workloads::two_phase_set(rng, st, &mut next),
        );
    });
}

/// Corrupted histories (negative cases) must be *refuted* identically:
/// tamper with a read and demand both engines agree on the verdict.
#[test]
fn memo_matches_brute_on_refutations() {
    run_seeded_cases("memo_matches_brute_on_refutations", 24, |seed, rng| {
        let mut c = Cluster::new(OpCounter, 3);
        drive_op_based(&mut c, &cross_cfg(12), seed, |rng, _, _| {
            Some(workloads::counter(rng))
        });
        let h = c.into_history();
        let mut corrupted = History::new();
        let bump = rng.random_range(1i64..4);
        for (i, op) in h.iter() {
            let label = match op.label.clone() {
                ral_spec::counter::CounterOp::Read(v) => {
                    ral_spec::counter::CounterOp::Read(v + bump)
                }
                other => other,
            };
            corrupted.push_set(
                ral_core::history::OpRecord {
                    label,
                    replica: op.replica,
                    ts: op.ts,
                },
                h.preds(i).clone(),
            );
        }
        cross_check(&corrupted, &CounterSpec);
    });
}

/// Refutations are where memoization earns its keep: at `n ≥ 8`
/// concurrent increments the impossible-read walk revisits placed-set
/// configurations, so the reported hit rate is non-zero — and because a
/// refutation runs every branch to completion, the exploration counters
/// are identical at any thread count (the [`SearchStats`] determinism
/// contract).
///
/// [`SearchStats`]: ral_core::ralin::SearchStats
#[test]
fn refuting_runs_hit_the_memo_table() {
    use ral_core::history::OpRecord;
    use ral_spec::counter::CounterOp;

    for n in [8usize, 10, 12] {
        let mut h = History::new();
        let incs: Vec<usize> = (0..n)
            .map(|i| h.push(OpRecord::new(CounterOp::Inc, ReplicaId(i as u32)), []))
            .collect();
        h.push(
            OpRecord::new(CounterOp::Read(n as i64 + 1), ReplicaId(0)),
            incs,
        );

        let (seq, seq_stats) = search_with_threads_stats(&h, &CounterSpec, u64::MAX, 1);
        assert!(seq.is_refuted(), "n = {n}");
        assert!(
            seq_stats.memo_hits > 0,
            "n = {n}: no memo hits on a refutation"
        );
        assert!(seq_stats.memo_hit_rate() > 0.0, "n = {n}");
        assert!(seq_stats.nodes_expanded > 0, "n = {n}");

        let (par, par_stats) = search_with_threads_stats(&h, &CounterSpec, u64::MAX, 3);
        assert!(par.is_refuted(), "n = {n}");
        assert_eq!(
            (
                seq_stats.nodes_expanded,
                seq_stats.memo_hits,
                seq_stats.prune_causes()
            ),
            (
                par_stats.nodes_expanded,
                par_stats.memo_hits,
                par_stats.prune_causes()
            ),
            "n = {n}: refuting-run exploration counters must be thread-count independent"
        );
    }
}

/// Tampering with a counter read's return value must be caught by both
/// the guided check and the search.
#[test]
fn corrupted_reads_are_rejected() {
    run_seeded_cases("corrupted_reads_are_rejected", 64, |_, rng| {
        let mut schedule = random_schedule(rng, 10);
        if schedule.is_empty() {
            schedule.push((rng.random_range(0..=u8::MAX), rng.random_range(0..=u8::MAX)));
        }
        let bump = rng.random_range(1i64..5);
        let cluster = run_schedule(OpCounter, &schedule, |a, _| {
            Some(if a % 2 == 0 {
                CounterCall::Inc
            } else {
                CounterCall::Read
            })
        });
        let h = cluster.into_history();
        // Corrupt the last read, if any.
        let mut labels: Vec<ral_spec::counter::CounterOp> =
            (0..h.len()).map(|i| h.label(i).clone()).collect();
        let Some(pos) = labels
            .iter()
            .rposition(|l| matches!(l, ral_spec::counter::CounterOp::Read(_)))
        else {
            return;
        };
        if let ral_spec::counter::CounterOp::Read(v) = labels[pos] {
            labels[pos] = ral_spec::counter::CounterOp::Read(v + bump);
        }
        let mut corrupted = ral_core::history::History::new();
        for (i, label) in labels.into_iter().enumerate() {
            let rec = ral_core::history::OpRecord {
                label,
                replica: h.op(i).replica,
                ts: h.op(i).ts,
            };
            corrupted.push_set(rec, h.preds(i).clone());
        }
        assert!(check_guided(&corrupted, &CounterSpec, Strategy::ExecutionOrder).is_err());
        let outcome = search_with_budget(&corrupted, &CounterSpec, 2_000_000);
        assert!(matches!(
            outcome,
            SearchOutcome::NotLinearizable | SearchOutcome::BudgetExhausted
        ));
    });
}
