//! Delta-replication obligations over the whole scenario corpus:
//!
//! * **parity** — for all four state-based CRDTs and every named scenario,
//!   a lockstep differential run (`ral_verify::delta::ParityDriver`)
//!   replicates the *same mutations* through full-state snapshots and
//!   through the delta transport, under the identical schedule of
//!   invocations, transmissions, faults, and crashes — and must converge
//!   to **identical final states** on both sides;
//! * **native convergence** — the delta transport driving its own cluster
//!   (`DeltaDriver`, delta mutators included) converges and keeps the
//!   lattice + delta laws under every scenario;
//! * **bandwidth** — on the 50-replica gossip mesh the delta transport
//!   ships strictly fewer payload bytes than full-state snapshots (the
//!   claim the `delta_bandwidth` bench quantifies).
//!
//! A tight resync horizon (`resync_after: 8`) keeps the fallback machinery
//! — buffer overflow under partition, ack regression after crashes — in
//! play on the fault scenarios rather than only in unit tests.

use ral_core::rng::Rng;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::mv_register::MvRegister;
use ral_crdts::state::pn_counter::PnCounter;
use ral_crdts::state::two_phase_set::TwoPhaseSet;
use ral_runtime::delta::DeltaConfig;
use ral_sim::scenario;
use ral_verify::delta::{
    delta_converges_in, delta_matches_full_state_in, payload_bytes_comparison,
};
use ral_verify::workloads;

const SEEDS: std::ops::Range<u64> = 0..2;

fn config() -> DeltaConfig {
    DeltaConfig { resync_after: 8 }
}

// ---------------------------------------------------------------------------
// Parity: identical final states, all four CRDTs × the whole corpus.
// ---------------------------------------------------------------------------

#[test]
fn pn_counter_parity_across_the_corpus() {
    for sc in scenario::all() {
        let report = delta_matches_full_state_in(PnCounter, config(), &sc, SEEDS, || {
            |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
        });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn mv_register_parity_across_the_corpus() {
    for sc in scenario::all() {
        let report =
            delta_matches_full_state_in(MvRegister::<u8>::new(), config(), &sc, SEEDS, || {
                |rng: &mut Rng, _, _| Some(workloads::mv_register(rng))
            });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn lww_element_set_parity_across_the_corpus() {
    for sc in scenario::all() {
        let report =
            delta_matches_full_state_in(LwwElementSet::<u8>::new(), config(), &sc, SEEDS, || {
                |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng))
            });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn two_phase_set_parity_across_the_corpus() {
    for sc in scenario::all() {
        let report =
            delta_matches_full_state_in(TwoPhaseSet::<u16>::new(), config(), &sc, SEEDS, || {
                let mut next = 0u16;
                move |rng: &mut Rng, _, st| workloads::two_phase_set(rng, st, &mut next)
            });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

// ---------------------------------------------------------------------------
// Native delta runs: the transport with its own delta mutators converges.
// The parity suite above already walks the whole corpus; these runs focus
// on the fault-heavy scenarios, where retransmission, GC starvation, and
// resync actually fire.
// ---------------------------------------------------------------------------

fn fault_scenarios() -> Vec<scenario::Scenario> {
    scenario::all()
        .into_iter()
        .filter(|s| {
            matches!(
                s.name,
                "flaky_wan" | "rolling_restart" | "split_brain_heal" | "delta_wan"
            )
        })
        .collect()
}

#[test]
fn pn_counter_delta_transport_converges_across_the_corpus() {
    for sc in fault_scenarios() {
        let report = delta_converges_in(PnCounter, config(), &sc, SEEDS, || {
            |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
        });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn mv_register_delta_transport_converges_across_the_corpus() {
    for sc in fault_scenarios() {
        let report = delta_converges_in(MvRegister::<u8>::new(), config(), &sc, SEEDS, || {
            |rng: &mut Rng, _, _| Some(workloads::mv_register(rng))
        });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn lww_element_set_delta_transport_converges_across_the_corpus() {
    for sc in fault_scenarios() {
        let report = delta_converges_in(LwwElementSet::<u8>::new(), config(), &sc, SEEDS, || {
            |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng))
        });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

#[test]
fn two_phase_set_delta_transport_converges_across_the_corpus() {
    for sc in fault_scenarios() {
        let report = delta_converges_in(TwoPhaseSet::<u16>::new(), config(), &sc, SEEDS, || {
            let mut next = 0u16;
            move |rng: &mut Rng, _, st| workloads::two_phase_set(rng, st, &mut next)
        });
        assert!(report.ok(), "{}: {report}", sc.name);
    }
}

// ---------------------------------------------------------------------------
// Bandwidth: strictly fewer payload bytes on the 50-replica gossip mesh.
// ---------------------------------------------------------------------------

#[test]
fn delta_ships_fewer_bytes_than_full_state_on_gossip_50() {
    let sc = scenario::gossip_50();
    let (full, delta) = payload_bytes_comparison(PnCounter, DeltaConfig::default(), &sc, 7, || {
        |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
    });
    assert!(
        delta < full,
        "gossip_50/pn_counter: delta shipped {delta} bytes, full-state {full}"
    );

    // The gap widens for types whose full snapshots accumulate history:
    // an LWW snapshot carries every pair ever written, a delta only the
    // unacknowledged tail.
    let (full, delta) = payload_bytes_comparison(
        LwwElementSet::<u8>::new(),
        DeltaConfig::default(),
        &sc,
        7,
        || |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    assert!(
        delta < full,
        "gossip_50/lww: delta shipped {delta} bytes, full-state {full}"
    );
}
