//! Heterogeneous composition: a counter and an OR-Set living side by side
//! (`Spec₁ ⊗ Spec₂`, Section 5.1).
//!
//! The composed history interleaves operations of *different* data types;
//! its projections must be admitted by the component specifications and the
//! whole must respect the global (cross-object) visibility — the causality
//! a key-value store client relies on (Section 7's referential-integrity
//! discussion).

use ral_core::compose::{EitherLabel, PairSpec};
use ral_core::history::{History, OpRecord};
use ral_core::ids::{ReplicaId, Uid};
use ral_core::ralin::{check_guided, search, Strategy};
use ral_spec::counter::{CounterOp, CounterSpec};
use ral_spec::set::{OrSetOp, OrSetSpec};
use std::collections::BTreeSet;

type Label = EitherLabel<CounterOp, OrSetOp<char>>;

fn ctr(op: CounterOp) -> Label {
    EitherLabel::First(op)
}

fn set(op: OrSetOp<char>) -> Label {
    EitherLabel::Second(op)
}

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

#[test]
fn interleaved_history_validates() {
    // r0: ctr.inc ; set.add(a) ; ctr.read⇒1 — r1: set.add(b) ; set.read⇒{b}.
    let mut h: History<Label> = History::new();
    let inc = h.push(OpRecord::new(ctr(CounterOp::Inc), r(0)), []);
    let add_a = h.push(OpRecord::new(set(OrSetOp::Add('a', Uid(0))), r(0)), [inc]);
    let _read_c = h.push(OpRecord::new(ctr(CounterOp::Read(1)), r(0)), [inc, add_a]);
    let add_b = h.push(OpRecord::new(set(OrSetOp::Add('b', Uid(1))), r(1)), []);
    h.push(
        OpRecord::new(set(OrSetOp::Read(BTreeSet::from(['b']))), r(1)),
        [add_b],
    );
    let spec = PairSpec::new(CounterSpec, OrSetSpec::new());
    let lin = check_guided(&h, &spec, Strategy::ExecutionOrder)
        .expect("interleaved EO history validates");
    assert_eq!(lin.order.len(), 5);
    assert!(search(&h, &spec).is_linearizable());
}

#[test]
fn cross_object_causality_restricts_witnesses() {
    // The pointer pattern: set.add('p') is issued only after ctr.inc is
    // visible — every linearization orders the record before the pointer.
    let mut h: History<Label> = History::new();
    let record = h.push(OpRecord::new(ctr(CounterOp::Inc), r(0)), []);
    let pointer = h.push(
        OpRecord::new(set(OrSetOp::Add('p', Uid(0))), r(1)),
        [record],
    );
    let spec = PairSpec::new(CounterSpec, OrSetSpec::new());
    let lin = check_guided(&h, &spec, Strategy::ExecutionOrder).unwrap();
    let pos = |x: usize| lin.order.iter().position(|&y| y == x).unwrap();
    assert!(pos(record) < pos(pointer));
    // And the inverted order is rejected outright.
    assert!(ral_core::ralin::check_linearization(&h, &spec, &[pointer, record]).is_err());
}

#[test]
fn component_violations_surface_in_the_composition() {
    // A wrong counter read poisons the composed history even though the
    // set part is fine.
    let mut h: History<Label> = History::new();
    let inc = h.push(OpRecord::new(ctr(CounterOp::Inc), r(0)), []);
    h.push(OpRecord::new(ctr(CounterOp::Read(7)), r(0)), [inc]);
    h.push(OpRecord::new(set(OrSetOp::Add('a', Uid(0))), r(1)), []);
    let spec = PairSpec::new(CounterSpec, OrSetSpec::new());
    assert!(check_guided(&h, &spec, Strategy::ExecutionOrder).is_err());
    assert!(search(&h, &spec).is_refuted());
}

#[test]
fn projections_match_component_specs() {
    use ral_core::spec::Spec;
    let spec = PairSpec::new(CounterSpec, OrSetSpec::new());
    let st = spec.initial();
    // Stepping a counter label leaves the set component untouched and vice
    // versa.
    let st = spec.step(&st, &ctr(CounterOp::Inc)).pop().unwrap();
    assert_eq!(st.0, 1);
    assert!(st.1.is_empty());
    let st = spec
        .step(&st, &set(OrSetOp::Add('z', Uid(9))))
        .pop()
        .unwrap();
    assert_eq!(st.0, 1);
    assert!(st.1.contains(&('z', Uid(9))));
}
