//! Fault-tolerance coverage through the simulator, per the paper's claims:
//!
//! * **Appendix D.2** — state-based propagation explicitly tolerates
//!   message loss, duplication, and reordering: every state-based CRDT in
//!   `ral_crdts::state` must converge (and keep its lattice laws) under
//!   the `flaky_wan` scenario, which drops a quarter of all snapshots,
//!   duplicates a fifth, and jitters latency enough to reorder almost
//!   every pair;
//! * **Sections 3–4** — op-based CRDTs assume causal delivery but nothing
//!   about timing or availability: every op-based CRDT's history recorded
//!   under the `split_brain_heal` scenario (two scheduled partitions, both
//!   sides writing throughout) must still pass its RA-linearizability
//!   check with the strategy Figure 12 claims.

use ral_core::label::Identity;
use ral_core::rng::Rng;
use ral_crdts::op::counter::OpCounter;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::{OrSet, OrSetRewrite};
use ral_crdts::op::rga::Rga;
use ral_crdts::op::rga_addat::RgaAddAt;
use ral_crdts::op::wooki::{Wooki, WookiCall, WookiState};
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::mv_register::MvRegister;
use ral_crdts::state::pn_counter::PnCounter;
use ral_crdts::state::two_phase_set::TwoPhaseSet;
use ral_sim::scenario;
use ral_spec::addat::AddAt3Spec;
use ral_spec::counter::CounterSpec;
use ral_spec::register::RegSpec;
use ral_spec::rga::RgaSpec;
use ral_spec::set::OrSetSpec;
use ral_spec::wooki::{WookiAnchor, WookiSpec};
use ral_verify::scenarios::{op_linearizable_in, state_converges_in};
use ral_verify::workloads;

const SEEDS: std::ops::Range<u64> = 0..3;

// ---------------------------------------------------------------------------
// Appendix D.2: every state-based CRDT converges under flaky_wan.
// ---------------------------------------------------------------------------

#[test]
fn pn_counter_converges_under_flaky_wan() {
    let report = state_converges_in(PnCounter, &scenario::flaky_wan(), SEEDS, || {
        |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
    });
    assert!(report.ok(), "{report}");
}

#[test]
fn mv_register_converges_under_flaky_wan() {
    let report = state_converges_in(
        MvRegister::<u8>::new(),
        &scenario::flaky_wan(),
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::mv_register(rng)),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn lww_element_set_converges_under_flaky_wan() {
    let report = state_converges_in(
        LwwElementSet::<u8>::new(),
        &scenario::flaky_wan(),
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn two_phase_set_converges_under_flaky_wan() {
    let report = state_converges_in(
        TwoPhaseSet::<u16>::new(),
        &scenario::flaky_wan(),
        SEEDS,
        || {
            let mut next = 0u16;
            move |rng: &mut Rng, _, st| workloads::two_phase_set(rng, st, &mut next)
        },
    );
    assert!(report.ok(), "{report}");
}

/// Crash-recovery belongs to the same tolerance story: durable-checkpoint
/// restarts lose only merged-in knowledge, which redelivery restores.
#[test]
fn state_crdts_converge_under_rolling_restart() {
    let report = state_converges_in(PnCounter, &scenario::rolling_restart(), SEEDS, || {
        |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
    });
    assert!(report.ok(), "{report}");
    let report = state_converges_in(
        LwwElementSet::<u8>::new(),
        &scenario::rolling_restart(),
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    assert!(report.ok(), "{report}");
}

// ---------------------------------------------------------------------------
// Sections 3–4: every op-based CRDT RA-linearizes under split_brain_heal.
// ---------------------------------------------------------------------------

#[test]
fn op_counter_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        OpCounter,
        &scenario::split_brain_heal(),
        &Identity,
        &CounterSpec,
        OpCounter::STRATEGY,
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::counter(rng)),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn lww_register_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        LwwRegister::<u8>::new(),
        &scenario::split_brain_heal(),
        &Identity,
        &RegSpec::new(),
        LwwRegister::<u8>::STRATEGY,
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::lww_register(rng)),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn or_set_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        OrSet::<u8>::new(),
        &scenario::split_brain_heal(),
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        OrSet::<u8>::STRATEGY,
        SEEDS,
        || |rng: &mut Rng, _, _| Some(workloads::or_set(rng)),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn rga_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        Rga::<u16>::new(),
        &scenario::split_brain_heal(),
        &Identity,
        &RgaSpec::new(),
        Rga::<u16>::STRATEGY,
        SEEDS,
        || {
            let mut next = 0u16;
            move |rng: &mut Rng, _, st| workloads::rga(rng, st, &mut next)
        },
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn rga_addat_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        RgaAddAt::<u16>::new(),
        &scenario::split_brain_heal(),
        &Identity,
        &AddAt3Spec::new(),
        RgaAddAt::<u16>::STRATEGY,
        SEEDS,
        || {
            let mut next = 0u16;
            move |rng: &mut Rng, _, st| workloads::rga_addat(rng, st, &mut next)
        },
    );
    assert!(report.ok(), "{report}");
}

/// Wooki's nondeterministic specification makes checking exponential in
/// concurrent inserts (see `wooki_row` in `ral_verify::table`), so its
/// split-brain workload is deliberately sparse: few inserts, occasional
/// reads, most turns skipped. The *scenario* — both partitions, full
/// duration — is unchanged.
#[test]
fn wooki_linearizes_under_split_brain() {
    let report = op_linearizable_in(
        Wooki::<u16>::new(),
        &scenario::split_brain_heal(),
        &Identity,
        &WookiSpec::new(),
        Wooki::<u16>::STRATEGY,
        0..2,
        || {
            let mut next = 0u16;
            move |rng: &mut Rng, _, state: &WookiState<u16>| {
                let roll: u8 = rng.random_range(0..12);
                if roll < 2 && next < 6 {
                    let all = state.all_values();
                    let (left, right) = if all.is_empty() {
                        (WookiAnchor::Begin, WookiAnchor::End)
                    } else {
                        let i = rng.random_range(0..=all.len());
                        let j = rng.random_range(i..=all.len());
                        (
                            if i == 0 {
                                WookiAnchor::Begin
                            } else {
                                WookiAnchor::Elem(all[i - 1])
                            },
                            if j == all.len() {
                                WookiAnchor::End
                            } else {
                                WookiAnchor::Elem(all[j])
                            },
                        )
                    };
                    next += 1;
                    Some(WookiCall::AddBetween(left, next, right))
                } else if roll == 11 {
                    Some(WookiCall::Read)
                } else {
                    None
                }
            }
        },
    );
    assert!(report.ok(), "{report}");
}
