//! Experiment E8 — Section 3.3 "Reasoning with specifications".
//!
//! Two replicas run the OR-Set client program
//!
//! ```text
//! r0: add(a); remove(a); X = read()     r1: add(a); Y = read()
//! ```
//!
//! The paper proves, purely at the level of RA-linearizations of
//! `Spec(OR-Set)`, the postcondition `a ∈ X ⇒ a ∈ Y`. We check it over
//! every interleaving the scheduler can produce, and sanity-check the
//! reasoning's case split on whether `(a, i2) ∈ R`.

use ral_core::ids::ReplicaId;
use ral_core::ralin::{ra_check, Strategy};
use ral_core::rng::Rng;
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRet, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_spec::set::OrSetSpec;
use std::collections::BTreeSet;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

/// Runs the client program under one scheduler seed and returns `(X, Y)`.
fn run_program(seed: u64) -> (BTreeSet<char>, BTreeSet<char>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cluster = Cluster::new(OrSet::<char>::new(), 2);
    let programs: [Vec<OrSetCall<char>>; 2] = [
        vec![OrSetCall::Add('a'), OrSetCall::Remove('a'), OrSetCall::Read],
        vec![OrSetCall::Add('a'), OrSetCall::Read],
    ];
    let mut pc = [0usize, 0usize];
    let mut x = BTreeSet::new();
    let mut y = BTreeSet::new();
    while pc[0] < programs[0].len() || pc[1] < programs[1].len() || {
        // also flush a random number of deliveries at the end
        false
    } {
        let replica = rng.random_range(0..2usize);
        if rng.random_bool(0.5) && pc[replica] < programs[replica].len() {
            let call = programs[replica][pc[replica]].clone();
            pc[replica] += 1;
            let ret = cluster
                .invoke(r(replica as u32), call)
                .expect("client calls never refuse")
                .ret;
            if let OrSetRet::Values(v) = ret {
                if replica == 0 {
                    x = v;
                } else {
                    y = v;
                }
            }
        } else {
            let target = r(rng.random_range(0..2) as u32);
            let ds = cluster.deliverable(target);
            if !ds.is_empty() {
                let d = ds[rng.random_range(0..ds.len())];
                cluster.deliver(target, d);
            }
        }
    }
    // The history (whatever the interleaving) is RA-linearizable.
    cluster.deliver_all();
    let h = cluster.into_history();
    ra_check(
        &h,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    (x, y)
}

#[test]
fn postcondition_holds_over_many_schedules() {
    let mut saw_a_in_x = false;
    let mut saw_a_absent_in_x = false;
    for seed in 0..400 {
        let (x, y) = run_program(seed);
        // The paper's postcondition.
        if x.contains(&'a') {
            saw_a_in_x = true;
            assert!(
                y.contains(&'a'),
                "seed {seed}: a ∈ X but a ∉ Y (X={x:?}, Y={y:?})"
            );
        } else {
            saw_a_absent_in_x = true;
        }
    }
    // Both branches of the case split must actually occur.
    assert!(saw_a_in_x, "some schedule leaves a visible to X");
    assert!(saw_a_absent_in_x, "some schedule removes a before X");
}

#[test]
fn x_contains_a_exactly_when_remove_missed_the_concurrent_add() {
    // Deterministic schedule exercising the interesting case: r1's add is
    // delivered to r0 after r0's remove observed only its own identifier.
    let mut cluster = Cluster::new(OrSet::<char>::new(), 2);
    cluster.invoke(r(0), OrSetCall::Add('a')).unwrap();
    cluster.invoke(r(1), OrSetCall::Add('a')).unwrap();
    let rem = cluster.invoke(r(0), OrSetCall::Remove('a')).unwrap();
    // The remove observed one pair (its own replica's).
    match rem.ret {
        OrSetRet::Removed(observed) => assert_eq!(observed.len(), 1),
        _ => unreachable!(),
    }
    cluster.deliver_all();
    let x = cluster.invoke(r(0), OrSetCall::Read).unwrap();
    let y = cluster.invoke(r(1), OrSetCall::Read).unwrap();
    // The concurrent add survives at both replicas.
    assert_eq!(x.ret, OrSetRet::Values(BTreeSet::from(['a'])));
    assert_eq!(y.ret, OrSetRet::Values(BTreeSet::from(['a'])));
}
