//! Experiment E9 — Figure 14 and Lemmas C.1/C.2: the `addAt` interface.
//!
//! The RGA-based list with `addAt(a, k)` (index-based insertion) is **not**
//! RA-linearizable w.r.t. the natural index specifications `Spec(addAt1)`
//! (no tombstones) or `Spec(addAt2)` (tombstones): the Figure 14 execution
//! reads `d·e·c` while every consistent linearization yields `d·c·e`.
//! Returning the origin's updated list from every mutator (`Spec(addAt3)`,
//! the "local view" specification) restores RA-linearizability.

use ral_core::history::History;
use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, ra_search, Strategy};
use ral_crdts::op::rga_addat::{AddAtCall, RgaAddAt, RgaAddAtSilent};
use ral_runtime::op_based::Cluster;
use ral_spec::addat::{AddAt1Spec, AddAt2Spec, AddAt3Spec, AddAtOp, AddAtRetOp};

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

/// Drives the Figure 14 schedule on any of the two `addAt` variants.
///
/// Timestamps: `ts_a = 1@r0 < ts_b = 2@r1 < ts_c = 3@r0 < ts_d = 3@r1 <
/// ts_e = 4@r2`; the final read at r2 sees all operations and returns
/// `d·e·c`.
macro_rules! fig14_schedule {
    ($cluster:expr) => {{
        let c = $cluster;
        // addAt(a, 0) at r0, delivered everywhere.
        c.invoke(r(0), AddAtCall::AddAt('a', 0)).unwrap();
        c.deliver_all();
        // addAt(b, 0) at r1, delivered everywhere.
        c.invoke(r(1), AddAtCall::AddAt('b', 0)).unwrap();
        c.deliver_all();
        // remove(b) at r2, delivered everywhere.
        c.invoke(r(2), AddAtCall::Remove('b')).unwrap();
        c.deliver_all();
        // addAt(c, 1) at r0 — local view [a], anchor a. NOT delivered yet.
        c.invoke(r(0), AddAtCall::AddAt('c', 1)).unwrap();
        // addAt(d, 0) at r1 — local view [a], anchor ◦. Delivered to r2 only.
        let d_op = c.invoke(r(1), AddAtCall::AddAt('d', 0)).unwrap().op;
        let del = c
            .deliverable(r(2))
            .into_iter()
            .find(|&x| c.delivery_op(x) == d_op)
            .expect("d deliverable at r2");
        c.deliver(r(2), del);
        // remove(a) at r2 (sees a, b, rem b, d).
        c.invoke(r(2), AddAtCall::Remove('a')).unwrap();
        // addAt(e, 2) at r2 — local view [d], index clamps to the tail,
        // anchor d.
        c.invoke(r(2), AddAtCall::AddAt('e', 2)).unwrap();
        // Everything reaches everyone; the read sees all operations.
        c.deliver_all();
        assert!(c.converged(), "Figure 14 cluster must converge");
        let read = c.invoke(r(2), AddAtCall::Read).unwrap();
        read
    }};
}

fn fig14_silent() -> History<AddAtOp<char>> {
    let mut c = Cluster::new(RgaAddAtSilent::<char>::new(), 3);
    let read = fig14_schedule!(&mut c);
    assert_eq!(
        read.ret,
        Some(vec!['d', 'e', 'c']),
        "the Figure 14 read returns d·e·c"
    );
    c.into_history()
}

#[test]
fn fig14_not_ra_linearizable_wrt_addat1() {
    let h = fig14_silent();
    assert!(
        ra_search(&h, &Identity, &AddAt1Spec::new()).is_refuted(),
        "Lemma C.1: no linearization w.r.t. Spec(addAt1) exists"
    );
    // Memoized refutation cross-checked against the naive ground truth.
    assert_eq!(
        ral_core::ralin::ra_search_brute(&h, &Identity, &AddAt1Spec::new()),
        ra_search(&h, &Identity, &AddAt1Spec::new())
    );
}

#[test]
fn fig14_not_ra_linearizable_wrt_addat2() {
    let h = fig14_silent();
    assert!(
        ra_search(&h, &Identity, &AddAt2Spec::new()).is_refuted(),
        "Lemma C.1: no linearization w.r.t. Spec(addAt2) exists"
    );
    assert_eq!(
        ral_core::ralin::ra_search_brute(&h, &Identity, &AddAt2Spec::new()),
        ra_search(&h, &Identity, &AddAt2Spec::new())
    );
}

#[test]
fn fig14_proof_linearizations_yield_d_c_e() {
    // The proof of Lemma C.1 enumerates the candidate linearizations and
    // shows they all read d·c·e. Check one representative against
    // Spec(addAt1) directly.
    use ral_core::spec::admits;
    let spec = AddAt1Spec::new();
    let candidate = [
        AddAtOp::AddAt('a', 0),
        AddAtOp::AddAt('b', 0),
        AddAtOp::Remove('b'),
        AddAtOp::AddAt('c', 1),
        AddAtOp::AddAt('d', 0),
        AddAtOp::Remove('a'),
        AddAtOp::AddAt('e', 2),
        AddAtOp::Read(vec!['d', 'c', 'e']),
    ];
    assert!(
        admits(&spec, &candidate),
        "the proof's sequence reads d·c·e"
    );
    let observed = [
        AddAtOp::AddAt('a', 0),
        AddAtOp::AddAt('b', 0),
        AddAtOp::Remove('b'),
        AddAtOp::AddAt('c', 1),
        AddAtOp::AddAt('d', 0),
        AddAtOp::Remove('a'),
        AddAtOp::AddAt('e', 2),
        AddAtOp::Read(vec!['d', 'e', 'c']),
    ];
    assert!(
        !admits(&spec, &observed),
        "the implementation's d·e·c is inadmissible sequentially"
    );
}

#[test]
fn fig14_ra_linearizable_wrt_addat3() {
    // Lemma C.2: with local-view returns the same schedule linearizes under
    // timestamp order.
    let mut c = Cluster::new(RgaAddAt::<char>::new(), 3);
    let read = fig14_schedule!(&mut c);
    assert_eq!(read.ret, vec!['d', 'e', 'c']);
    let h = c.into_history();
    ra_check(&h, &Identity, &AddAt3Spec::new(), Strategy::TimestampOrder)
        .expect("Lemma C.2: Spec(addAt3) admits the Figure 14 history");
    assert!(ra_search(&h, &Identity, &AddAt3Spec::new()).is_linearizable());
}

#[test]
fn addat3_returns_expose_local_views() {
    // The returning variant exposes exactly the local views the proof of
    // Lemma C.2 reasons about.
    let mut c = Cluster::new(RgaAddAt::<char>::new(), 2);
    let a = c.invoke(r(0), AddAtCall::AddAt('a', 0)).unwrap();
    assert_eq!(a.ret, vec!['a']);
    // r1 has seen nothing: its insert at index 5 observes the empty view.
    let b = c.invoke(r(1), AddAtCall::AddAt('b', 5)).unwrap();
    assert_eq!(b.ret, vec!['b']);
    c.deliver_all();
    assert!(c.converged());
    let h = c.into_history();
    assert_eq!(h.label(0), &AddAtRetOp::AddAt('a', 0, vec!['a']));
    assert_eq!(h.label(1), &AddAtRetOp::AddAt('b', 5, vec!['b']));
    ra_check(&h, &Identity, &AddAt3Spec::new(), Strategy::TimestampOrder).unwrap();
}
