//! Experiment E7 — Figure 12: the paper's table of CRDTs proved
//! RA-linearizable, regenerated end to end.
//!
//! For each of the nine data types the harness (a) discharges the proof
//! obligations of Sections 4 / Appendix D on random reachable
//! configurations and (b) model-checks RA-linearizability on seeded random
//! histories with the claimed strategy. The resulting classification must
//! match the paper's table exactly.

use ral_verify::{fig12_rows, render_fig12};

#[test]
fn fig12_reproduces_the_paper_table() {
    let rows = fig12_rows(10, 42);
    assert_eq!(rows.len(), 9, "Figure 12 has nine rows");

    let expected = [
        ("Counter", "OB", "EO"),
        ("PN-Counter", "SB", "EO"),
        ("LWW-Register", "OB", "TO"),
        ("Multi-Value Reg.", "SB", "EO"),
        ("LWW-Element Set", "SB", "TO"),
        ("2P-Set", "SB", "EO"),
        ("OR-Set", "OB", "EO"),
        ("RGA", "OB", "TO"),
        ("Wooki", "OB", "EO"),
    ];
    for (row, (name, imp, lin)) in rows.iter().zip(expected) {
        assert_eq!(row.name, name);
        assert_eq!(row.imp, imp, "{name} implementation style");
        assert_eq!(row.lin, lin, "{name} linearization class");
        assert!(
            row.verified(),
            "{name} failed verification: {}",
            row.obligations
                .iter()
                .filter(|o| !o.ok())
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!(
            row.history_failures, 0,
            "{name} had non-linearizable histories"
        );
        assert!(row.histories >= 10);
        for obligation in &row.obligations {
            assert!(
                obligation.checks > 0,
                "{name}/{} ran no checks",
                obligation.name
            );
        }
    }

    let table = render_fig12(&rows);
    assert!(table.lines().count() >= 11, "header + nine rows");
    assert!(table.contains("OK"));
    assert!(!table.contains("FAIL"));
}
