//! Lemma C.2, by its own proof obligations: the returning `addAt` variant
//! satisfies Commutativity and `Refinement_ts` w.r.t. `Spec(addAt3)`
//! (Appendix C.6), and therefore admits timestamp-order linearizations.
//!
//! The paper proves these two properties by hand; here they are discharged
//! by the same property harness used for the Figure 12 CRDTs. A negative
//! control confirms the harness would notice if the refinement mapping were
//! wrong.

use ral_core::label::Identity;
use ral_crdts::op::rga::Rga;
use ral_crdts::op::rga_addat::{AddAtCall, RgaAddAt};
use ral_spec::addat::AddAt3Spec;
use ral_verify::commutativity::check_op_based as check_commutativity;
use ral_verify::refinement::{check_op_based as check_refinement, Mode};

fn workload(
    rng: &mut ral_core::rng::Rng,
    state: &ral_crdts::op::rga::RgaState<u16>,
    next: &mut u16,
) -> Option<AddAtCall<u16>> {
    let roll: u8 = rng.random_range(0..10);
    if roll < 5 {
        *next += 1;
        Some(AddAtCall::AddAt(*next, rng.random_range(0..5)))
    } else if roll < 7 {
        let visible = state.visible();
        if visible.is_empty() {
            None
        } else {
            Some(AddAtCall::Remove(
                visible[rng.random_range(0..visible.len())],
            ))
        }
    } else {
        Some(AddAtCall::Read)
    }
}

#[test]
fn addat_effectors_commute() {
    let mut next = 0;
    let report = check_commutativity(RgaAddAt::<u16>::new(), 3, 40, 0..6, move |rng, _, st| {
        workload(rng, st, &mut next)
    });
    assert!(report.ok(), "{report}");
    assert!(report.checks > 20, "enough concurrent pairs exercised");
}

#[test]
fn addat_satisfies_refinement_ts() {
    // The abs mapping of the proof: the RGA traversal including tombstoned
    // elements, plus the tombstone set.
    let mut next = 0;
    let report = check_refinement(
        RgaAddAt::<u16>::new(),
        &AddAt3Spec::new(),
        &Identity,
        Mode::Timestamped,
        Rga::<u16>::abs,
        Rga::<u16>::state_timestamps,
        3,
        40,
        0..6,
        move |rng, _, st| workload(rng, st, &mut next),
    );
    assert!(report.ok(), "{report}");
}

#[test]
fn wrong_abs_is_refuted() {
    // Negative control: drop the tombstone component from the mapping and
    // the remove effectors stop being simulated.
    let mut next = 0;
    let report = check_refinement(
        RgaAddAt::<u16>::new(),
        &AddAt3Spec::new(),
        &Identity,
        Mode::Timestamped,
        |st| (st.all_elements(), std::collections::BTreeSet::new()),
        Rga::<u16>::state_timestamps,
        3,
        40,
        0..6,
        move |rng, _, st| workload(rng, st, &mut next),
    );
    assert!(!report.ok(), "a broken refinement mapping must be caught");
}

#[test]
fn plain_refinement_fails_where_ts_variant_holds() {
    // Without the timestamp exemption, stale insert effectors are not
    // simulated by Spec(addAt3) transitions — Refinement (plain) fails while
    // Refinement_ts holds; this is exactly why Section 4.2 introduces the
    // weaker obligation.
    let mut found_plain_failure = false;
    for seed in 0..12u64 {
        let mut next = 0;
        let report = check_refinement(
            RgaAddAt::<u16>::new(),
            &AddAt3Spec::new(),
            &Identity,
            Mode::Plain,
            Rga::<u16>::abs,
            Rga::<u16>::state_timestamps,
            3,
            60,
            seed..seed + 1,
            move |rng, _, st| workload(rng, st, &mut next),
        );
        if !report.ok() {
            found_plain_failure = true;
            break;
        }
    }
    assert!(
        found_plain_failure,
        "some stale effector must violate plain Refinement"
    );
}
