//! Section 7: RA-linearizable systems subsume the session guarantees of
//! Terry et al. (1994).
//!
//! Every history recorded by the runtime — op-based with causal delivery
//! *or* state-based over the unreliable merge network — satisfies Read Your
//! Writes, Monotonic Reads, Monotonic Writes, and Writes Follow Reads.
//! Interval orders (footnote 12) separate standard linearizability's
//! returns-before relation from visibility.

use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_core::sessions::check_sessions;
use ral_crdts::op::or_set::{OrSet, OrSetCall};
use ral_crdts::state::lww_element_set::{LwwElementSet, LwwSetCall};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, drive_state_based, ScheduleConfig};
use ral_runtime::state_based::StateCluster;

#[test]
fn op_based_histories_satisfy_session_guarantees() {
    for seed in 0..20 {
        let mut c = Cluster::new(OrSet::<u8>::new(), 3);
        drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(match rng.random_range(0..4u8) {
                0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
                2 => OrSetCall::Remove(rng.random_range(0..3)),
                _ => OrSetCall::Read,
            })
        });
        let h = c.into_history().map(|l| OrSet::plain_label(&l));
        let report = check_sessions(&h);
        assert!(report.all_hold(), "seed {seed}: {report}");
    }
}

#[test]
fn state_based_histories_satisfy_session_guarantees() {
    // Even without causal delivery: merges only ever grow the observed set,
    // and observed sets travel with the states.
    for seed in 0..20 {
        let mut c = StateCluster::new(LwwElementSet::<u8>::new(), 3);
        drive_state_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(match rng.random_range(0..4u8) {
                0 | 1 => LwwSetCall::Add(rng.random_range(0..4)),
                2 => LwwSetCall::Remove(rng.random_range(0..4)),
                _ => LwwSetCall::Read,
            })
        });
        let h = c.into_history();
        let report = check_sessions(&h);
        assert!(report.all_hold(), "seed {seed}: {report}");
    }
}

#[test]
fn visibility_is_generally_not_an_interval_order() {
    use ral_spec::set::SetOp;
    use std::collections::BTreeSet;

    // Two disjoint causal chains: (a → b) and (c → d) with no cross edges.
    // An interval order would require a ≺ d or c ≺ b.
    let mut h: History<SetOp<char>> = History::new();
    let a = h.push(OpRecord::new(SetOp::Add('a'), ReplicaId(0)), []);
    h.push(
        OpRecord::new(SetOp::Read(BTreeSet::from(['a'])), ReplicaId(0)),
        [a],
    );
    let c = h.push(OpRecord::new(SetOp::Add('c'), ReplicaId(1)), []);
    h.push(
        OpRecord::new(SetOp::Read(BTreeSet::from(['c'])), ReplicaId(1)),
        [c],
    );
    assert!(!h.is_interval_order());
    assert!(h.is_transitive());

    // A totally-ordered history trivially is an interval order.
    let mut seq: History<SetOp<char>> = History::new();
    let x = seq.push(OpRecord::new(SetOp::Add('x'), ReplicaId(0)), []);
    let y = seq.push(OpRecord::new(SetOp::Add('y'), ReplicaId(0)), [x]);
    seq.push(
        OpRecord::new(SetOp::Read(BTreeSet::from(['x', 'y'])), ReplicaId(0)),
        [x, y],
    );
    assert!(seq.is_interval_order());
}
