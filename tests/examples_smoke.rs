//! Smoke coverage for `examples/*.rs` so they can never silently rot:
//! every example is built and executed, and must exit 0.
//!
//! The build goes through the same `cargo` that is running this test
//! (`CARGO` env var), with `--offline` so the suite stays hermetic. Each
//! example runs under a generous timeout-free `Command::output()` — they
//! all finish in well under a second in debug builds.

use std::path::PathBuf;
use std::process::Command;

/// Every example the facade package ships. Adding an example without
/// registering it here fails the `all_examples_are_registered` test.
const EXAMPLES: &[&str] = &[
    "collaborative_editing",
    "composition",
    "delta_replication",
    "fig12_report",
    "kv_store",
    "network_partition",
    "observability",
    "partition_demo",
    "quickstart",
    "shopping_cart",
];

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn cargo() -> Command {
    let mut cmd = Command::new(ral_core::env::cargo());
    cmd.current_dir(manifest_dir());
    cmd
}

/// The `examples/` directory and the registry above must agree exactly.
#[test]
fn all_examples_are_registered() {
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest_dir().join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut registered: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    registered.sort();
    assert_eq!(
        on_disk, registered,
        "examples/ and the EXAMPLES registry in tests/examples_smoke.rs diverged"
    );
}

/// Builds all examples, then runs each and requires exit status 0.
#[test]
fn every_example_builds_and_runs() {
    let build = cargo()
        .args(["build", "--offline", "--examples"])
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        build.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    for example in EXAMPLES {
        let run = cargo()
            .args(["run", "--offline", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("spawn example {example}: {e}"));
        assert!(
            run.status.success(),
            "example {example} exited with {:?}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            run.status.code(),
            String::from_utf8_lossy(&run.stdout),
            String::from_utf8_lossy(&run.stderr),
        );
    }
}
