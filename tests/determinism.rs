//! Determinism regression tests guarding the PRNG swap: driving any
//! scheduler twice with the same seed must produce **byte-identical**
//! histories (compared both structurally and on their full `Debug`
//! rendering). If `ral_core::rng` ever changes its stream — or a scheduler
//! starts consuming randomness in a different order — every recorded
//! failure seed in the repo becomes meaningless, and this suite fails.

use ral_core::rng::Rng;
use ral_crdts::op::or_set::OrSet;
use ral_crdts::op::rga::Rga;
use ral_crdts::state::pn_counter::PnCounter;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{
    drive_multi, drive_op_based, drive_op_based_partitioned, drive_state_based, Partition,
    ScheduleConfig,
};
use ral_runtime::state_based::StateCluster;
// The canonical workload generators — reusing them here means this suite
// also pins *their* randomness consumption, not a drifting copy of it.
use ral_verify::workloads;

/// Runs one op-based OR-Set schedule and returns the `Debug` bytes of its
/// history.
fn op_based_bytes(seed: u64) -> Vec<u8> {
    let mut c = Cluster::new(OrSet::<u8>::new(), 3);
    drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
        Some(workloads::or_set(rng))
    });
    format!("{:?}", c.into_history()).into_bytes()
}

#[test]
fn op_based_same_seed_is_byte_identical() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        // Structural equality…
        let mut a = Cluster::new(OrSet::<u8>::new(), 3);
        let mut b = Cluster::new(OrSet::<u8>::new(), 3);
        drive_op_based(&mut a, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(workloads::or_set(rng))
        });
        drive_op_based(&mut b, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(workloads::or_set(rng))
        });
        assert_eq!(a.history(), b.history(), "seed {seed}");
        // …and byte-for-byte identity of the rendering.
        assert_eq!(op_based_bytes(seed), op_based_bytes(seed), "seed {seed}");
    }
}

#[test]
fn op_based_different_seeds_differ() {
    // With ~40 random invocations per run, two seeds colliding on the
    // exact same history would be astronomically unlikely.
    assert_ne!(op_based_bytes(1), op_based_bytes(2));
}

#[test]
fn multi_object_same_seed_is_byte_identical() {
    let run = |seed: u64| {
        let mut c = MultiCluster::new(Rga::<u16>::new(), 2, 3, TsMode::Shared);
        let mut next: u16 = 0;
        drive_multi(
            &mut c,
            &ScheduleConfig::default(),
            seed,
            |rng, _, _, state| workloads::rga(rng, state, &mut next),
        );
        format!("{:?}", c.into_history()).into_bytes()
    };
    for seed in [3u64, 7, 1 << 40] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
    assert_ne!(run(1), run(2));
}

#[test]
fn state_based_same_seed_is_byte_identical() {
    let run = |seed: u64| {
        let mut c = StateCluster::new(PnCounter, 3);
        drive_state_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
        format!("{:?}", c.history()).into_bytes()
    };
    for seed in [0u64, 11, 99] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
    assert_ne!(run(5), run(6));
}

#[test]
fn partitioned_same_seed_is_byte_identical() {
    let run = |seed: u64| {
        let mut c = Cluster::new(OrSet::<u8>::new(), 4);
        let partition = Partition::new(vec![0, 0, 1, 1]);
        drive_op_based_partitioned(
            &mut c,
            &ScheduleConfig::default(),
            &partition,
            seed,
            |rng, _, _| Some(workloads::or_set(rng)),
        );
        assert!(c.converged());
        format!("{:?}", c.into_history()).into_bytes()
    };
    for seed in [0u64, 8, 1234] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}

/// Observability is inert: recording events must not perturb a scheduler
/// run. Same seed, recording off vs on, byte-identical histories — the
/// load-bearing invariant that lets `RAL_OBS=1` be turned on in
/// production runs without invalidating recorded seeds.
#[test]
fn obs_recording_leaves_histories_byte_identical() {
    let off = op_based_bytes(42);
    ral_obs::reset();
    ral_obs::enable(None);
    let on = op_based_bytes(42);
    ral_obs::disable();
    ral_obs::reset();
    assert_eq!(off, on, "recording changed an op-based scheduler run");
}

#[test]
fn raw_rng_stream_is_stable_within_a_run() {
    // The schedulers above go through closures; this pins the raw stream
    // the same way so a regression is attributable to the generator
    // itself rather than scheduler consumption order.
    let draws = |seed: u64| -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..64).map(|_| rng.next_u64()).collect()
    };
    for seed in [0u64, 1, u64::MAX] {
        assert_eq!(draws(seed), draws(seed));
    }
}
