//! The paper's motivating scenario (Section 1): availability under network
//! partitions.
//!
//! During a partition every side keeps accepting operations (generators
//! never block on remote replicas); the sides diverge; on healing they
//! converge deterministically — and the whole history, partition included,
//! is RA-linearizable.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_core::sessions::check_sessions;
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based_partitioned, Partition, ScheduleConfig};
use ral_spec::rga::{Anchor, RgaSpec};
use ral_spec::set::OrSetSpec;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

#[test]
fn both_sides_stay_available_and_reconcile() {
    // Replicas {0,1} vs {2,3}.
    let partition = Partition::new(vec![0, 0, 1, 1]);
    let mut c = Cluster::new(OrSet::<u8>::new(), 4);
    let cfg = ScheduleConfig {
        steps: 80,
        invoke_weight: 2,
        deliver_weight: 1,
        final_sync: false,
    };
    drive_op_based_partitioned(&mut c, &cfg, &partition, 5, |rng, _, _| {
        Some(match rng.random_range(0..4u8) {
            0 | 1 => OrSetCall::Add(rng.random_range(0..4)),
            2 => OrSetCall::Remove(rng.random_range(0..4)),
            _ => OrSetCall::Read,
        })
    });
    // Every replica performed operations during the partition.
    let ops_per_replica: Vec<usize> = (0..4)
        .map(|i| {
            c.history()
                .iter()
                .filter(|(_, op)| op.replica == r(i))
                .count()
        })
        .collect();
    assert!(
        ops_per_replica.iter().all(|&n| n > 0),
        "all replicas stayed available: {ops_per_replica:?}"
    );
    // Sides have typically diverged.
    let _diverged = c.state(r(0)) != c.state(r(2));
    // Heal and reconcile.
    c.deliver_all();
    assert!(c.converged(), "healing must reconcile the sides");
    let h = c.into_history();
    ra_check(
        &h,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .expect("partitioned OR-Set history is RA-linearizable");
    let plain = h.map(|l| OrSet::plain_label(&l));
    assert!(check_sessions(&plain).all_hold());
}

#[test]
fn partitioned_editing_session_certifies() {
    // Two isolated authors type into the same document; Theorem 4.6 still
    // explains the merged result.
    let partition = Partition::new(vec![0, 1]);
    let mut c = Cluster::new(Rga::<u16>::new(), 2);
    let mut next = 0u16;
    let cfg = ScheduleConfig {
        steps: 60,
        invoke_weight: 3,
        deliver_weight: 1,
        final_sync: false,
    };
    drive_op_based_partitioned(&mut c, &cfg, &partition, 11, |rng, _, state| {
        let visible = state.visible();
        if rng.random_bool(0.7) {
            let anchor = if visible.is_empty() || rng.random_bool(0.3) {
                Anchor::Head
            } else {
                Anchor::Elem(visible[rng.random_range(0..visible.len())])
            };
            next += 1;
            Some(RgaCall::AddAfter(anchor, next))
        } else {
            Some(RgaCall::Read)
        }
    });
    // No cross-partition operation became visible during the partition.
    let h = c.history();
    for b in 0..h.len() {
        for a in h.preds(b) {
            assert!(
                partition.connected(h.op(a).replica, h.op(b).replica),
                "operation {b} saw {a} across the partition"
            );
        }
    }
    c.deliver_all();
    assert!(c.converged());
    let h = c.into_history();
    ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder)
        .expect("partitioned RGA session is RA-linearizable");
}

#[test]
fn partition_groups_api() {
    let p = Partition::new(vec![0, 0, 1]);
    assert!(p.connected(r(0), r(1)));
    assert!(!p.connected(r(0), r(2)));
    assert!(p.connected(r(2), r(2)));
}
