//! Simulator determinism: same seed + same scenario ⇒ byte-identical event
//! traces and histories, for every named scenario in the corpus.
//!
//! This is the contract everything else leans on: a failure seed printed by
//! a scenario-driven property run must replay the exact run that failed —
//! trace, history, RNG consumption, fault schedule and all. The comparison
//! is on rendered bytes, not just structural equality, so even a `Debug`
//! formatting drift (which would invalidate recorded traces) fails here.

use ral_core::ids::ObjId;
use ral_core::rng::Rng;
use ral_crdts::op::counter::OpCounter;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::OrSet;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::pn_counter::PnCounter;
use ral_runtime::delta::DeltaConfig;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_sim::driver::{DeltaDriver, Driver, MultiDriver, OpDriver, StateDriver};
use ral_sim::scenario::{self, Scenario};
use ral_sim::sim;
use ral_verify::workloads;

/// Trace bytes and history bytes of one run.
type RunBytes = (Vec<u8>, Vec<u8>);

fn op_run(sc: &Scenario, seed: u64) -> RunBytes {
    let mut driver = OpDriver::new(
        OrSet::<u8>::new(),
        sc.cfg.n_replicas,
        |rng: &mut Rng, _, _| Some(workloads::or_set(rng)),
    );
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    (
        run.trace.render().into_bytes(),
        format!("{:?}", driver.into_cluster().into_history()).into_bytes(),
    )
}

fn state_run(sc: &Scenario, seed: u64) -> RunBytes {
    let mut driver = StateDriver::new(PnCounter, sc.cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::pn_counter(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    (
        run.trace.render().into_bytes(),
        format!("{:?}", driver.into_cluster().into_history()).into_bytes(),
    )
}

fn delta_run(sc: &Scenario, seed: u64) -> RunBytes {
    // A tight resync horizon so the delta-transport fallback machinery is
    // itself under the determinism contract.
    let mut driver = DeltaDriver::new(
        LwwElementSet::<u8>::new(),
        DeltaConfig { resync_after: 8 },
        sc.cfg.n_replicas,
        |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    (
        run.trace.render().into_bytes(),
        format!("{:?}", driver.into_cluster().into_history()).into_bytes(),
    )
}

fn multi_run_mode(sc: &Scenario, seed: u64, mode: TsMode) -> RunBytes {
    // A TO data type, so the timestamp discipline (the whole point of
    // ⊗ vs ⊗ts) is visible in the recorded history bytes.
    let cluster = MultiCluster::new(LwwRegister::<u8>::new(), 32, sc.cfg.n_replicas, mode);
    let mut driver = MultiDriver::new(cluster, |rng: &mut Rng, _, _obj: ObjId, _| {
        Some(workloads::lww_register(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    (
        run.trace.render().into_bytes(),
        format!("{:?}", driver.into_cluster().into_history()).into_bytes(),
    )
}

fn multi_run(sc: &Scenario, seed: u64) -> RunBytes {
    multi_run_mode(sc, seed, TsMode::Shared)
}

/// The cluster kind each corpus scenario most stresses.
fn runner_for(name: &str) -> fn(&Scenario, u64) -> RunBytes {
    match name {
        // Reliable causal broadcast through geo latency, partitions, and
        // the tight LAN the streaming monitor rides…
        "geo_3dc" | "split_brain_heal" | "lan_tight" => op_run,
        // …lossy gossip through faults, restarts, and the big mesh…
        "flaky_wan" | "rolling_restart" | "gossip_50" => state_run,
        // …the delta transport through its own stress scenario…
        "delta_wan" => delta_run,
        // …and the composed cluster through the 50×32 object mix.
        "multi_mix" => multi_run,
        other => panic!("unknown scenario {other}"),
    }
}

/// Every named scenario, each through the cluster kind it most stresses;
/// byte-identical reruns for several seeds, and distinct seeds distinct.
#[test]
fn every_corpus_scenario_is_byte_deterministic() {
    for sc in scenario::all() {
        let runner = runner_for(sc.name);
        for seed in [0u64, 42] {
            let (trace_a, hist_a) = runner(&sc, seed);
            let (trace_b, hist_b) = runner(&sc, seed);
            assert_eq!(trace_a, trace_b, "{}: trace differs, seed {seed}", sc.name);
            assert_eq!(hist_a, hist_b, "{}: history differs, seed {seed}", sc.name);
            assert!(!trace_a.is_empty(), "{}: empty trace", sc.name);
        }
        let (trace_1, _) = runner(&sc, 1);
        let (trace_2, _) = runner(&sc, 2);
        assert_ne!(
            trace_1, trace_2,
            "{}: different seeds should explore different runs",
            sc.name
        );
    }
}

/// Both cluster kinds over the *same* scenario must be independently
/// deterministic (they consume randomness differently).
#[test]
fn op_and_state_runs_are_independently_deterministic() {
    let sc = scenario::flaky_wan();
    assert_eq!(op_run(&sc, 9).0, op_run(&sc, 9).0);
    assert_eq!(state_run(&sc, 9).0, state_run(&sc, 9).0);
    // The two transports see the same scenario differently: reliable links
    // ignore drop/duplication, so the traces must *not* coincide.
    assert_ne!(op_run(&sc, 9).0, state_run(&sc, 9).0);
}

/// `multi_mix` under the *per-object* timestamp discipline (`⊗`): the
/// other half of the composed-object contract — the corpus loop covers
/// the shared generator (`⊗ts`), this covers independent clocks.
#[test]
fn multi_mix_per_object_mode_is_byte_deterministic() {
    let sc = scenario::by_name("multi_mix").unwrap();
    let (trace_a, hist_a) = multi_run_mode(&sc, 3, TsMode::PerObject);
    let (trace_b, hist_b) = multi_run_mode(&sc, 3, TsMode::PerObject);
    assert_eq!(trace_a, trace_b, "multi_mix ⊗: trace differs");
    assert_eq!(hist_a, hist_b, "multi_mix ⊗: history differs");
    // The timestamp discipline feeds generated timestamps back into the
    // recorded history, so the two modes must not coincide.
    let (_, hist_shared) = multi_run_mode(&sc, 3, TsMode::Shared);
    assert_ne!(hist_a, hist_shared, "⊗ and ⊗ts must differ in histories");
}

/// The composed cluster kind (`⊗ts`) is deterministic under simulation too.
#[test]
fn multi_cluster_scenario_is_byte_deterministic() {
    let run = |seed: u64| -> RunBytes {
        let sc = scenario::split_brain_heal();
        let cluster = MultiCluster::new(OpCounter, 2, sc.cfg.n_replicas, TsMode::Shared);
        let mut driver = MultiDriver::new(cluster, |rng: &mut Rng, _, _obj: ObjId, _| {
            Some(workloads::counter(rng))
        });
        let out = sim::run(&mut driver, &sc.cfg, seed);
        assert!(driver.converged());
        (
            out.trace.render().into_bytes(),
            format!("{:?}", driver.into_cluster().into_history()).into_bytes(),
        )
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

/// Observability is inert under simulation: every corpus scenario
/// replays byte-identically — trace and history — with recording on.
/// This is the obs layer's non-negotiable contract: spans and counters
/// observe the run, they never steer it.
#[test]
fn obs_recording_leaves_every_scenario_byte_identical() {
    for sc in scenario::all() {
        let runner = runner_for(sc.name);
        let off = runner(&sc, 7);
        ral_obs::reset();
        ral_obs::enable(None);
        let on = runner(&sc, 7);
        ral_obs::disable();
        ral_obs::reset();
        assert_eq!(off.0, on.0, "{}: recording changed the trace", sc.name);
        assert_eq!(off.1, on.1, "{}: recording changed the history", sc.name);
    }
}

/// Corpus-registration guard: every `Scenario` constructor `ral-sim`
/// exports is listed in [`scenario::CONSTRUCTOR_NAMES`], reachable by
/// name, present in `all()`, and wired to a runner in this suite. A new
/// constructor that is not registered fails the in-crate scraping test
/// (`every_constructor_is_registered`); one that is registered but has no
/// runner panics here — either way, adding a scenario without putting it
/// under the determinism contract is a CI failure.
#[test]
fn corpus_table_and_runners_cover_every_constructor() {
    let all = scenario::all();
    assert_eq!(
        all.len(),
        scenario::CONSTRUCTOR_NAMES.len(),
        "corpus and constructor table disagree on size"
    );
    for name in scenario::CONSTRUCTOR_NAMES {
        let sc = scenario::by_name(name)
            .unwrap_or_else(|| panic!("{name}: in CONSTRUCTOR_NAMES but not by_name"));
        assert!(
            all.iter().any(|s| s.name == name),
            "{name}: in CONSTRUCTOR_NAMES but not in all()"
        );
        // `runner_for` panics on an unregistered name; one short run proves
        // the pairing actually executes.
        let (trace, history) = runner_for(name)(&sc, 11);
        assert!(!trace.is_empty(), "{name}: empty trace");
        assert!(!history.is_empty(), "{name}: empty history");
    }
}

/// Crash/restart bookkeeping is part of the determinism contract: the
/// rolling restart fires exactly its scheduled crashes, every time.
#[test]
fn rolling_restart_fires_its_schedule() {
    let sc = scenario::rolling_restart();
    let mut driver = StateDriver::new(
        LwwElementSet::<u8>::new(),
        sc.cfg.n_replicas,
        |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    let run = sim::run(&mut driver, &sc.cfg, 3);
    assert!(driver.converged());
    let text = run.trace.render();
    let crashes = text.lines().filter(|l| l.contains("Crash")).count();
    let restarts = text.lines().filter(|l| l.contains("Restart")).count();
    assert_eq!(crashes, 6, "one crash per replica");
    assert_eq!(restarts, 6, "one restart per replica");
}
