//! Experiment E4 — Figure 8: execution-order vs timestamp-order
//! linearizations for RGA.
//!
//! `ℓ2 = addAfter(◦,b)` executes before `ℓ1 = addAfter(◦,a)` in wall-clock
//! order, but `ts_a < ts_b`. A read seeing both returns `b·a`, which the
//! execution-order linearization `ℓ2·ℓ1·…` cannot justify (it would produce
//! `a·b`); the timestamp-order linearization `ℓ1·ℓ2·ℓ4·ℓ3` can. The read's
//! "virtual" timestamp `ts_b` places it before `ℓ3 = addAfter(b,c)`.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, ra_search, Strategy, Violation};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_spec::rga::{Anchor, RgaSpec};

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

/// Builds the Figure 8 execution. Replica r1 (paper's r1) is `ReplicaId(1)`
/// so that the replica order breaks the `counter = 1` tie in favour of `b`:
/// `ts_a = 1@r0 < ts_b = 1@r1`.
fn fig8() -> (
    ral_core::history::History<ral_spec::rga::RgaOp<char>>,
    [usize; 4],
) {
    let mut c = Cluster::new(Rga::<char>::new(), 2);
    // ℓ2 executes first in wall-clock order, at the higher-ordered replica.
    let l2 = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Head, 'b'))
        .unwrap()
        .op;
    let l1 = c
        .invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap()
        .op;
    // ℓ3 = addAfter(b, c) at r1: ts_c = 2@r1 > ts_b.
    let l3 = c
        .invoke(r(1), RgaCall::AddAfter(Anchor::Elem('b'), 'c'))
        .unwrap()
        .op;
    // Deliver only ℓ2's effector to r0 (not ℓ3): the read sees {ℓ1, ℓ2}.
    let ds = c.deliverable(r(0));
    let d_l2 = ds
        .into_iter()
        .find(|&d| c.delivery_op(d) == l2)
        .expect("ℓ2 deliverable at r0");
    c.deliver(r(0), d_l2);
    let l4 = c.invoke(r(0), RgaCall::Read).unwrap();
    assert_eq!(l4.ret, Some(vec!['b', 'a']), "the read returns b·a");
    c.deliver_all();
    assert!(c.converged());
    (c.into_history(), [l1, l2, l3, l4.op])
}

#[test]
fn execution_order_fails() {
    let (h, [_, _, _, l4]) = fig8();
    let err = ra_check(&h, &Identity, &RgaSpec::new(), Strategy::ExecutionOrder)
        .expect_err("execution order must fail on Figure 8");
    // The unjustifiable operation is exactly the read.
    assert_eq!(err, Violation::QueryNotJustified { query: l4 });
}

#[test]
fn timestamp_order_succeeds_with_the_papers_linearization() {
    let (h, [l1, l2, l3, l4]) = fig8();
    let lin = ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder)
        .expect("timestamp order must succeed on Figure 8");
    // ℓ1 (ts_a) < ℓ2 (ts_b) < ℓ4 (virtual ts_b, later generator) < ℓ3 (ts_c).
    assert_eq!(lin.order, vec![l1, l2, l4, l3]);
}

#[test]
fn brute_force_agrees() {
    let (h, _) = fig8();
    assert!(
        ra_search(&h, &Identity, &RgaSpec::new()).is_linearizable(),
        "a witness exists, so the complete search must find one"
    );
}

#[test]
fn virtual_timestamps_follow_visibility() {
    let (h, [l1, l2, l3, l4]) = fig8();
    // The read generates no timestamp; its virtual timestamp is ts_b, the
    // max over {ts_a, ts_b}.
    assert_eq!(h.op(l4).ts, None);
    assert_eq!(h.virtual_ts(l4), h.op(l2).ts);
    assert!(h.virtual_ts(l1) < h.virtual_ts(l2));
    assert!(h.virtual_ts(l2) < h.virtual_ts(l3));
}
