//! Experiment E6 — Figures 10 and 11: composing timestamp-order objects
//! requires a shared timestamp generator.
//!
//! Under the unrestricted composition `⊗` (independent timestamp generators
//! per object), two RGAs produce a history whose per-object linearizations
//! are forced (`o1: a·b`, `o2: c·d·e`) but globally contradictory through
//! the cross-object visibility `e ≺ a` and `b ≺ d`. Under `⊗ts` (Figure 11)
//! the offending timestamp assignment cannot arise and every history is
//! RA-linearizable (Theorem 5.5).

use ral_core::compose::{check_composed, MultiObjRewrite, MultiObjSpec};
use ral_core::history::rewrite_history;
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, ra_search, Strategy};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::schedule::{drive_multi, ScheduleConfig};
use ral_spec::rga::{Anchor, RgaSpec};

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

fn o(i: u32) -> ObjId {
    ObjId(i)
}

/// Builds the Figure 10 execution under the given composition discipline.
///
/// Timestamps under `⊗` (per-object clocks):
/// `ts1(c) = 1@r0 < ts2(d) = 2@r1 < ts3(e) = 3@r0` on `o2`, and
/// `ts'1(a) = 1@r0 < ts'2(b) = 1@r1` on `o1`.
fn fig10(
    mode: TsMode,
) -> ral_core::history::History<ral_core::compose::ObjLabel<ral_spec::rga::RgaOp<char>>> {
    let mut cl = MultiCluster::new(Rga::<char>::new(), 2, 3, mode);
    // r0: o2.addAfter(◦, c).
    let c = cl
        .invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'c'))
        .unwrap()
        .op;
    // r1: o1.addAfter(◦, b) — concurrent with everything so far.
    let b = cl
        .invoke(r(1), o(0), RgaCall::AddAfter(Anchor::Head, 'b'))
        .unwrap()
        .op;
    // r1 receives c, then inserts d: ts2 > ts1, and b ≺ d in visibility.
    let ds = cl.deliverable(r(1));
    let dc = ds.into_iter().find(|&d| cl.delivery_op(d) == c).unwrap();
    cl.deliver(r(1), dc);
    let d = cl
        .invoke(r(1), o(1), RgaCall::AddAfter(Anchor::Head, 'd'))
        .unwrap()
        .op;
    // r0 receives d, then inserts e: ts3 > ts2.
    let ds = cl.deliverable(r(0));
    let dd = ds.into_iter().find(|&x| cl.delivery_op(x) == d).unwrap();
    cl.deliver(r(0), dd);
    let e = cl
        .invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'e'))
        .unwrap()
        .op;
    // r0 inserts a on o1 *after* e: e ≺ a in visibility. Under ⊗ the o1
    // clock at r0 is still fresh, so ts'1 = 1@r0 < ts'2 = 1@r1; under ⊗ts
    // the shared clock forces ts'1 > ts3.
    let a = cl
        .invoke(r(0), o(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap()
        .op;

    // Sanity: the visibility edges of Figure 10.
    let h = cl.history();
    assert!(h.sees(d, b), "b ≺ d");
    assert!(h.sees(a, e), "e ≺ a");
    assert!(h.sees(d, c) && h.sees(e, d));

    // r2 receives everything and reads both objects.
    cl.deliver_all();
    assert!(cl.converged());
    let o2_read = cl.invoke(r(2), o(1), RgaCall::Read).unwrap();
    let o1_read = cl.invoke(r(2), o(0), RgaCall::Read).unwrap();
    match mode {
        TsMode::PerObject => {
            assert_eq!(o2_read.ret, Some(vec!['e', 'd', 'c']));
            assert_eq!(o1_read.ret, Some(vec!['b', 'a']));
        }
        TsMode::Shared => {
            // With the shared generator a's timestamp exceeds b's, so o1
            // reads a·b instead — exactly why the history of Figure 10 is
            // not reproducible under ⊗ts.
            assert_eq!(o1_read.ret, Some(vec!['a', 'b']));
        }
    }
    cl.into_history()
}

#[test]
fn unrestricted_composition_is_not_ra_linearizable() {
    let h = fig10(TsMode::PerObject);
    let spec = MultiObjSpec::new(RgaSpec::new(), 2);
    // Neither guided strategy can validate it…
    assert!(check_composed(&h, &spec, Strategy::TimestampOrder).is_err());
    assert!(ra_check(&h, &Identity, &spec, Strategy::ExecutionOrder).is_err());
    // …and the complete search proves no linearization exists at all.
    assert!(
        ra_search(&h, &Identity, &spec).is_refuted(),
        "Figure 10 must refute RA-linearizability under ⊗"
    );
    // The sharded search agrees, through its fallback: every *shard* of
    // Figure 10 linearizes on its own (that is the point of the figure),
    // so the stitched witness cannot validate and the whole-history
    // engine must deliver the refutation.
    assert!(
        ral_core::ralin::ra_search_sharded(&h, &Identity, &spec).is_refuted(),
        "Figure 10 must stay refuted through the sharded path"
    );
    for shard in ral_core::ralin::shard_history(&h) {
        assert!(
            ral_core::ralin::search(&shard.history, &spec).is_linearizable(),
            "each Figure 10 shard is RA-linearizable in isolation"
        );
    }
    // The memoized engine's refutation agrees with the naive ground truth.
    assert_eq!(
        ral_core::ralin::ra_search_brute(&h, &Identity, &spec),
        ra_search(&h, &Identity, &spec)
    );
}

#[test]
fn shared_timestamp_composition_is_ra_linearizable() {
    let h = fig10(TsMode::Shared);
    let spec = MultiObjSpec::new(RgaSpec::new(), 2);
    check_composed(&h, &spec, Strategy::TimestampOrder)
        .expect("⊗ts must make the composition RA-linearizable (Theorem 5.5)");
}

#[test]
fn random_rga_compositions_under_shared_ts() {
    // Theorem 5.5 at scale: arbitrary two-object RGA workloads under ⊗ts
    // are RA-linearizable via timestamp order.
    for seed in 0..10 {
        let mut cl = MultiCluster::new(Rga::<u16>::new(), 2, 3, TsMode::Shared);
        let mut next: u16 = 0;
        drive_multi(
            &mut cl,
            &ScheduleConfig::default(),
            seed,
            |rng, _, _, state| {
                let roll: u8 = rng.random_range(0..10);
                if roll < 5 {
                    let visible = state.visible();
                    let anchor = if visible.is_empty() || rng.random_bool(0.3) {
                        Anchor::Head
                    } else {
                        Anchor::Elem(visible[rng.random_range(0..visible.len())])
                    };
                    next += 1;
                    Some(RgaCall::AddAfter(anchor, next))
                } else if roll < 7 {
                    Some(RgaCall::Read)
                } else {
                    let visible = state.visible();
                    if visible.is_empty() {
                        None
                    } else {
                        Some(RgaCall::Remove(visible[rng.random_range(0..visible.len())]))
                    }
                }
            },
        );
        assert!(cl.converged());
        let h = cl.into_history();
        let rewritten = rewrite_history(&h, &MultiObjRewrite::new(Identity));
        let spec = MultiObjSpec::new(RgaSpec::new(), 2);
        check_composed(&rewritten.history, &spec, Strategy::TimestampOrder)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}
