//! Helpers shared by the integration-test suites (`mod common;`).

use ral_core::rng::Rng;

/// The compact `(replica, action)` schedule encoding the property suites
/// interpret: a random pair vector whose length is drawn from
/// `0..max_len`. Kept in one place so the encoding cannot silently
/// diverge between suites.
pub fn random_schedule(rng: &mut Rng, max_len: usize) -> Vec<(u8, u8)> {
    let len = rng.random_range(0..max_len);
    (0..len)
        .map(|_| (rng.random_range(0..=u8::MAX), rng.random_range(0..=u8::MAX)))
        .collect()
}
