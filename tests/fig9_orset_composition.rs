//! Experiment E5 — Figure 9: composing OR-Sets.
//!
//! Two OR-Sets `o1`, `o2` on two replicas; `r0` runs `o1.add(d)` then
//! `o2.add(a)`, `r1` runs `o2.add(b)` then `o1.add(c)`, with no deliveries.
//! The per-object linearizations `o1: add(c)·add(d)` and `o2: add(a)·add(b)`
//! cannot be combined into a global one (unlike standard linearizability,
//! RA-linearizability does not compose arbitrary per-object witnesses), yet
//! the composed history *is* RA-linearizable — Theorem 5.3 guarantees it for
//! execution-order objects.

use ral_core::compose::{MultiObjRewrite, MultiObjSpec, ObjLabel};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::ralin::{ra_check, ra_search, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::schedule::{drive_multi, ScheduleConfig};
use ral_spec::set::OrSetSpec;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

fn o(i: u32) -> ObjId {
    ObjId(i)
}

type ComposedHistory =
    ral_core::history::History<ObjLabel<ral_crdts::op::or_set::OrSetLabel<char>>>;

fn fig9() -> (ComposedHistory, [usize; 4]) {
    let mut c = MultiCluster::new(OrSet::<char>::new(), 2, 2, TsMode::PerObject);
    let d = c.invoke(r(0), o(0), OrSetCall::Add('d')).unwrap().op;
    let a = c.invoke(r(0), o(1), OrSetCall::Add('a')).unwrap().op;
    let b = c.invoke(r(1), o(1), OrSetCall::Add('b')).unwrap().op;
    let cc = c.invoke(r(1), o(0), OrSetCall::Add('c')).unwrap().op;
    (c.into_history(), [d, a, b, cc])
}

#[test]
fn per_object_witnesses_do_not_combine() {
    let (h, [d, a, b, cc]) = fig9();
    // Visibility: d ≺ a (r0 program order), b ≺ c (r1 program order) —
    // across objects, because the composed history records global
    // visibility.
    assert!(h.sees(a, d));
    assert!(h.sees(cc, b));
    // No global order can embed the per-object witnesses
    // o1: add(c)·add(d) and o2: add(a)·add(b): it would need c < d ≺ a < b ≺ c.
    let mut found = false;
    let perms = permutations(&[d, a, b, cc]);
    for p in &perms {
        if h.order_consistent(p) {
            let pos = |x: usize| p.iter().position(|&y| y == x).unwrap();
            if pos(cc) < pos(d) && pos(a) < pos(b) {
                found = true;
            }
        }
    }
    assert!(
        !found,
        "the chosen per-object linearizations must not combine globally"
    );
}

#[test]
fn composed_history_is_still_ra_linearizable() {
    let (h, _) = fig9();
    let spec = MultiObjSpec::new(OrSetSpec::new(), 2);
    let rw = MultiObjRewrite::new(OrSetRewrite::new());
    // Theorem 5.3: execution-order objects compose.
    ra_check(&h, &rw, &spec, Strategy::ExecutionOrder)
        .expect("the Figure 9 history is RA-linearizable");
    assert!(ra_search(&h, &rw, &spec).is_linearizable());
    // The sharded compositional search agrees: per-object witnesses
    // stitch into a valid global one.
    assert!(
        ral_core::ralin::ra_search_sharded(&h, &rw, &spec).is_linearizable(),
        "Figure 9 must stay Linearizable through the sharded path"
    );
    // Memoized default and naive ground truth agree, witness included.
    assert_eq!(
        ral_core::ralin::ra_search_brute(&h, &rw, &spec),
        ra_search(&h, &rw, &spec)
    );
}

#[test]
fn random_or_set_compositions_are_ra_linearizable() {
    // Theorem 5.3 at scale: any composition of EO objects stays EO.
    for seed in 0..10 {
        let mut c = MultiCluster::new(OrSet::<u8>::new(), 3, 3, TsMode::PerObject);
        drive_multi(&mut c, &ScheduleConfig::default(), seed, |rng, _, _, _| {
            Some(match rng.random_range(0..4u8) {
                0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
                2 => OrSetCall::Remove(rng.random_range(0..3)),
                _ => OrSetCall::Read,
            })
        });
        assert!(c.converged());
        let h = c.into_history();
        let spec = MultiObjSpec::new(OrSetSpec::new(), 3);
        let rw = MultiObjRewrite::new(OrSetRewrite::new());
        ra_check(&h, &rw, &spec, Strategy::ExecutionOrder)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}
