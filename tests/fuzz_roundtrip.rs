//! Scenario fixture round-trip: generated → rendered → parsed scenarios
//! are identical, and so are their replay traces.
//!
//! This is what makes a shipped counterexample trustworthy: the fixture
//! file *is* the scenario. 100 seeds, every family (shipped and broken,
//! so every CRDT type and transport), both timestamp disciplines.

use ral_core::rng::Rng;
use ral_fuzz::gen;
use ral_fuzz::oracle::replay_trace;
use ral_fuzz::scenario::{Family, FuzzScenario, Transport};
use ral_runtime::multi::TsMode;
use std::collections::BTreeSet;

/// One deterministically generated scenario per seed, cycling through the
/// full family table so coverage is by construction, not by luck.
fn scenario_for_seed(seed: u64) -> FuzzScenario {
    let mut rng = Rng::seed_from_u64(seed);
    let family = Family::ALL[(seed as usize) % Family::ALL.len()];
    gen::generate_for_family(&mut rng, family)
}

/// Render → parse is the identity on scenarios (fields and bytes), across
/// 100 seeds spanning every family and both `TsMode`s.
#[test]
fn rendered_fixtures_parse_back_to_the_same_scenario() {
    let mut families = BTreeSet::new();
    let mut modes = BTreeSet::new();
    for seed in 0..100 {
        let sc = scenario_for_seed(seed);
        families.insert(sc.family.name());
        if sc.family.transport() == Transport::Multi {
            modes.insert(match sc.ts_mode {
                TsMode::Shared => "shared",
                TsMode::PerObject => "per_object",
            });
        }
        let rendered = sc.render();
        let parsed = FuzzScenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("seed {seed}: fixture unparseable: {e}\n{rendered}"));
        assert_eq!(
            parsed, sc,
            "seed {seed}: parse is not the inverse of render"
        );
        assert_eq!(
            parsed.render(),
            rendered,
            "seed {seed}: re-rendering is not byte-stable"
        );
    }
    assert_eq!(
        families.len(),
        Family::ALL.len(),
        "the 100-seed sweep must touch every family: {families:?}"
    );
    assert_eq!(
        modes.len(),
        2,
        "the 100-seed sweep must touch both timestamp disciplines"
    );
}

/// Replaying a parsed fixture produces the byte-identical simulation
/// trace of the original scenario — the fixture loses nothing the
/// simulator can see. (Replay only; the cross-checking oracle is covered
/// by `tests/fuzz_determinism.rs`.)
#[test]
fn parsed_fixtures_replay_to_identical_traces() {
    for seed in 0..100 {
        let sc = scenario_for_seed(seed);
        let parsed = FuzzScenario::parse(&sc.render()).expect("round-trip");
        let original = replay_trace(&sc);
        let replayed = replay_trace(&parsed);
        assert!(!original.is_empty(), "seed {seed}: empty trace");
        assert_eq!(
            original,
            replayed,
            "seed {seed}: the parsed fixture replays a different run ({})",
            sc.family.name()
        );
    }
}
