//! The streaming monitor under fuzz: a full campaign of generated
//! scenario streams, every replay cross-checked by the oracle's monitor
//! arms (batch closure vs memo, end-of-stream streaming verdict vs batch)
//! alongside the established deciders.
//!
//! The shipped CRDT families are correct, so the campaign must end with
//! zero findings — in particular zero `disagreement` verdicts, which is
//! exactly the claim "monitor ≡ memo ≡ sharded" over hundreds of
//! adversarial delivery schedules. `Exhausted` streaming runs and blown
//! budgets count as undecided, never as disagreement, so a wide
//! concurrent window cannot fake a pass *or* a failure here.

use ral_fuzz::{fuzz, FuzzConfig};

#[test]
fn monitor_arms_agree_across_a_200_stream_campaign() {
    let cfg = FuzzConfig {
        seed: 5,
        runs: 240,
        search_budget: 200_000,
        ..Default::default()
    };
    let out = fuzz(&cfg);
    let replayed = out.runs - out.dedup;
    assert!(
        replayed >= 200,
        "campaign replayed only {replayed} distinct streams; raise runs"
    );
    assert_eq!(
        out.verdicts.get("disagreement"),
        None,
        "checkers disagreed: {:?}",
        out.findings
            .first()
            .map(|f| (&f.verdict, f.detail.as_str()))
    );
    assert!(
        out.findings.is_empty(),
        "shipped families produced a finding: {:?}",
        out.findings[0].verdict
    );
}
