//! Seeded negative controls for the fuzzer: campaigns over the two
//! deliberately broken fixtures must *find* the bug within a bounded
//! number of runs, shrink it to a ≤6-element counterexample, and land —
//! byte for byte — on the pinned fixtures under `tests/fixtures/`.
//!
//! The pins are the fuzzer's end-to-end regression net: they freeze the
//! generator stream, the oracle verdict, and the shrinker's fixpoint in
//! one artifact. Regenerate with
//! `cargo run -p ral-fuzz --example regen_fixtures` after any deliberate
//! change to those layers, and review the new bytes before committing.

use ral_fuzz::oracle::{run_scenario, VerdictKind};
use ral_fuzz::scenario::{Family, FuzzScenario};
use ral_fuzz::{fuzz, Finding, FuzzConfig, FuzzOutcome};

/// Must match `crates/fuzz/examples/regen_fixtures.rs` (which prints the
/// seed it settled on).
const SEED: u64 = 1;
const RUNS: u64 = 10;

fn campaign(family: Family) -> FuzzOutcome {
    fuzz(&FuzzConfig {
        seed: SEED,
        runs: RUNS,
        families: vec![family],
        search_budget: 1_000,
        shrink_replays: 400,
    })
}

fn check_finding(out: &FuzzOutcome, family: Family, verdict: VerdictKind, pinned: &str) {
    let f: &Finding = out
        .findings
        .first()
        .unwrap_or_else(|| panic!("{}: nothing found in {RUNS} runs", family.name()));
    assert_eq!(f.verdict, verdict, "{}: wrong verdict", family.name());
    assert_eq!(f.shrunk.family, family);
    assert!(
        f.shrunk.n_elements() <= 6,
        "{}: shrunk to {} elements, expected <= 6:\n{}",
        family.name(),
        f.shrunk.n_elements(),
        f.shrunk.render()
    );
    assert!(
        f.shrunk.n_elements() <= f.original.n_elements(),
        "shrinking never grows a scenario"
    );
    // The byte pin: generator + oracle + shrinker, frozen end to end.
    assert_eq!(
        f.shrunk.render(),
        pinned,
        "{}: shrunk counterexample drifted from the pinned fixture — \
         regenerate with `cargo run -p ral-fuzz --example regen_fixtures` \
         and review the diff",
        family.name()
    );
    // The fixture is replayable on its own: parse the pinned bytes and
    // reproduce the exact verdict without any campaign context.
    let replayed = FuzzScenario::parse(pinned)
        .unwrap_or_else(|e| panic!("{}: pinned fixture unparseable: {e}", family.name()));
    assert_eq!(
        run_scenario(&replayed, 1_000).verdict,
        verdict,
        "{}: pinned fixture no longer reproduces the bug",
        family.name()
    );
}

/// `BrokenCounter` assigns an origin-computed value instead of applying
/// the increment downstream, so concurrent increments diverge. The
/// campaign must catch the divergence and shrink it to the pinned core.
#[test]
fn broken_counter_is_found_and_shrunk_to_the_pinned_fixture() {
    let out = campaign(Family::BrokenCounter);
    check_finding(
        &out,
        Family::BrokenCounter,
        VerdictKind::Diverged,
        include_str!("fixtures/fuzz_broken_counter.txt"),
    );
}

/// `SummingCounter` merges by addition, which is not idempotent, so the
/// lattice laws fail under gossip redelivery. The campaign must catch the
/// broken join and shrink it to the pinned core.
#[test]
fn summing_counter_is_found_and_shrunk_to_the_pinned_fixture() {
    let out = campaign(Family::SummingCounter);
    check_finding(
        &out,
        Family::SummingCounter,
        VerdictKind::LatticeBroken,
        include_str!("fixtures/fuzz_summing_counter.txt"),
    );
}
