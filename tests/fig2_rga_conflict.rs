//! Experiment E1 — Figure 2: RGA conflict resolution.
//!
//! Starting from the list `a·b·c` (timestamps `ta < tc < tb`), two replicas
//! concurrently run `addAfter(c, d)` and `addAfter(c, e)` with `te < td`;
//! after mutual propagation both converge to `a·b·c·d·e`, and a subsequent
//! `remove(d)` yields `a·b·c·e`.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_spec::rga::{Anchor, RgaSpec};

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

fn read(c: &mut Cluster<Rga<char>>, at: ReplicaId) -> Vec<char> {
    c.invoke(at, RgaCall::Read).expect("read").ret.unwrap()
}

#[test]
fn fig2_conflict_resolution() {
    let mut c = Cluster::new(Rga::<char>::new(), 2);

    // Build a·b·c with ta < tc < tb: a first, then c, then b (so b has the
    // largest timestamp among the children of a and is read before c).
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap();
    c.deliver_all();
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'c'))
        .unwrap();
    c.deliver_all();
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'b'))
        .unwrap();
    c.deliver_all();
    assert!(c.converged());
    assert_eq!(read(&mut c, r(0)), vec!['a', 'b', 'c']);
    assert_eq!(read(&mut c, r(1)), vec!['a', 'b', 'c']);

    // Concurrent addAfter(c, e) at r0 and addAfter(c, d) at r1.
    // Timestamps: te = 4@r0 < td = 4@r1.
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('c'), 'e'))
        .unwrap();
    c.invoke(r(1), RgaCall::AddAfter(Anchor::Elem('c'), 'd'))
        .unwrap();

    // Before propagation the replicas disagree (second column of Figure 2).
    assert_eq!(read(&mut c, r(0)), vec!['a', 'b', 'c', 'e']);
    assert_eq!(read(&mut c, r(1)), vec!['a', 'b', 'c', 'd']);

    // Propagation in either direction converges to a·b·c·d·e: d has the
    // higher timestamp, so it is visited before e among the children of c.
    c.deliver_all();
    assert!(c.converged());
    assert_eq!(read(&mut c, r(0)), vec!['a', 'b', 'c', 'd', 'e']);
    assert_eq!(read(&mut c, r(1)), vec!['a', 'b', 'c', 'd', 'e']);

    // remove(d) tombstones d (last column of Figure 2); e stays reachable
    // through the tombstoned node.
    c.invoke(r(1), RgaCall::Remove('d')).unwrap();
    c.deliver_all();
    assert!(c.converged());
    assert_eq!(read(&mut c, r(0)), vec!['a', 'b', 'c', 'e']);

    // The whole execution is RA-linearizable under timestamp order.
    let h = c.into_history();
    let lin = ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder)
        .expect("Figure 2 history must be RA-linearizable");
    assert_eq!(lin.order.len(), h.len());
}

#[test]
fn fig2_delivery_order_is_irrelevant() {
    // Propagate the concurrent effectors in both possible orders at a third
    // replica; commutativity gives the same tree.
    for flip in [false, true] {
        let mut c = Cluster::new(Rga::<char>::new(), 3);
        c.invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
            .unwrap();
        c.deliver_all();
        c.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'e'))
            .unwrap();
        c.invoke(r(1), RgaCall::AddAfter(Anchor::Elem('a'), 'd'))
            .unwrap();
        let mut ds = c.deliverable(r(2));
        assert_eq!(ds.len(), 2);
        if flip {
            ds.reverse();
        }
        for d in ds {
            c.deliver(r(2), d);
        }
        assert_eq!(read(&mut c, r(2)), vec!['a', 'd', 'e']);
    }
}

#[test]
fn fig2_intermediate_reads_are_justified() {
    // The two pre-propagation reads return different lists, yet both are
    // justified by the sub-sequence relaxation (Section 2.1).
    let mut c = Cluster::new(Rga::<char>::new(), 2);
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap();
    c.deliver_all();
    c.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'c'))
        .unwrap();
    c.invoke(r(1), RgaCall::AddAfter(Anchor::Elem('a'), 'b'))
        .unwrap();
    c.invoke(r(0), RgaCall::Read).unwrap();
    c.invoke(r(1), RgaCall::Read).unwrap();
    c.deliver_all();
    let h = c.into_history();
    ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder)
        .expect("divergent reads must be RA-linearizable");
}
