//! Lemma 5.2: for an object admitting execution-order linearizations,
//! *every* linearization consistent with visibility is a valid
//! RA-linearization — not just the one the generators happened to follow.
//!
//! This is the key ingredient of Theorem 5.3 (EO objects compose). We check
//! it by validating many random linear extensions of random OR-Set and
//! counter histories. As a control, the same does *not* hold for
//! timestamp-order objects: for RGA some visibility-consistent orders are
//! invalid (Figure 8's execution-order witness is one).

use ral_core::history::{rewrite_history, History};
use ral_core::label::Identity;
use ral_core::label::SpecLabel;
use ral_core::ralin::{check_linearization, ra_check, Strategy};
use ral_core::rng::Rng;
use ral_core::spec::Spec;
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
use ral_spec::rga::{Anchor, RgaSpec};
use ral_spec::set::OrSetSpec;

/// A uniformly-random linear extension of the visibility relation.
fn random_topological_order<L>(h: &History<L>, rng: &mut Rng) -> Vec<usize> {
    let n = h.len();
    let mut missing: Vec<usize> = (0..n).map(|i| h.preds(i).len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| missing[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.random_range(0..ready.len());
        let x = ready.swap_remove(pick);
        order.push(x);
        for (b, miss) in missing.iter_mut().enumerate() {
            if h.sees(b, x) {
                *miss -= 1;
                if *miss == 0 {
                    ready.push(b);
                }
            }
        }
    }
    assert_eq!(order.len(), n, "visibility must be acyclic");
    order
}

fn assert_all_orders_valid<S: Spec>(h: &History<S::Label>, spec: &S, seed: u64, tries: usize) {
    let mut rng = Rng::seed_from_u64(seed);
    for t in 0..tries {
        let order = random_topological_order(h, &mut rng);
        check_linearization(h, spec, &order)
            .unwrap_or_else(|v| panic!("try {t}: random extension rejected: {v}"));
    }
}

#[test]
fn or_set_accepts_every_consistent_order() {
    for seed in 0..8 {
        let mut c = Cluster::new(OrSet::<u8>::new(), 3);
        drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
            Some(match rng.random_range(0..4u8) {
                0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
                2 => OrSetCall::Remove(rng.random_range(0..3)),
                _ => OrSetCall::Read,
            })
        });
        let h = c.into_history();
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        assert_all_orders_valid(&rewritten.history, &OrSetSpec::new(), seed * 31 + 1, 20);
    }
}

#[test]
fn rga_rejects_some_consistent_orders() {
    // Control: the lemma is specific to EO objects. Hunt for an RGA history
    // and a visibility-consistent order that fails validation (while the
    // timestamp-order witness succeeds).
    let mut found_rejection = false;
    'outer: for seed in 0..40 {
        let mut c = Cluster::new(Rga::<u16>::new(), 3);
        let mut next = 0u16;
        drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, state| {
            let visible = state.visible();
            if rng.random_bool(0.6) {
                let anchor = if visible.is_empty() || rng.random_bool(0.3) {
                    Anchor::Head
                } else {
                    Anchor::Elem(visible[rng.random_range(0..visible.len())])
                };
                next += 1;
                Some(RgaCall::AddAfter(anchor, next))
            } else {
                Some(RgaCall::Read)
            }
        });
        let h = c.into_history();
        ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder)
            .unwrap_or_else(|v| panic!("seed {seed}: TO must hold: {v}"));
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..30 {
            let order = random_topological_order(&h, &mut rng);
            if check_linearization(&h, &RgaSpec::new(), &order).is_err() {
                found_rejection = true;
                break 'outer;
            }
        }
    }
    assert!(
        found_rejection,
        "some visibility-consistent order must fail for a TO object"
    );
}

#[test]
fn footnote10_virtual_timestamps_unique_generator() {
    // Footnote 10: among operations sharing a (virtual) timestamp, exactly
    // one generated it; the rest are timestamp-less observers.
    for seed in 0..8 {
        let mut c = Cluster::new(Rga::<u16>::new(), 3);
        let mut next = 0u16;
        drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, state| {
            let visible = state.visible();
            if rng.random_bool(0.5) {
                next += 1;
                Some(RgaCall::AddAfter(
                    if visible.is_empty() {
                        Anchor::Head
                    } else {
                        Anchor::Elem(visible[rng.random_range(0..visible.len())])
                    },
                    next,
                ))
            } else {
                Some(RgaCall::Read)
            }
        });
        let h = c.into_history();
        for i in 0..h.len() {
            for j in 0..h.len() {
                if i != j && h.op(i).ts.is_some() && h.op(j).ts.is_some() {
                    assert_ne!(h.op(i).ts, h.op(j).ts, "generated timestamps are unique");
                }
            }
            // Non-generating operations inherit the timestamp of exactly one
            // visible generator (or ⊥).
            if h.op(i).ts.is_none() {
                if let Some(vts) = h.virtual_ts(i) {
                    let generators = (0..h.len()).filter(|&g| h.op(g).ts == Some(vts)).count();
                    assert_eq!(generators, 1);
                }
            }
        }
        // Queries are exactly the reads.
        let queries = (0..h.len()).filter(|&i| h.label(i).is_query()).count();
        let reads = (0..h.len())
            .filter(|&i| matches!(h.label(i), ral_spec::rga::RgaOp::Read(_)))
            .count();
        assert_eq!(queries, reads);
    }
}
