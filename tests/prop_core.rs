//! Property-based tests for the core data structures: the bit set against a
//! `BTreeSet` model, and history invariants on randomly generated DAGs.
//!
//! These run on the workspace's own seeded harness
//! ([`ral_core::rng::run_seeded_cases`]) instead of `proptest`: each case is
//! generated from a per-case seed, and a failure prints the seed to re-run
//! (`RAL_PROP_SEED=<seed> cargo test ...`).

use ral_core::bitset::BitSet;
use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_core::rng::{run_seeded_cases, Rng};
use ral_core::timestamp::Ts;
use std::collections::BTreeSet;

/// A random vector whose length is drawn from `0..max_len`.
fn random_vec<T>(rng: &mut Rng, max_len: usize, mut item: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| item(rng)).collect()
}

/// Insert/remove/contains agree with the reference set.
#[test]
fn bitset_matches_btreeset_model() {
    run_seeded_cases("bitset_model", 256, |_, rng| {
        let ops = random_vec(rng, 200, |rng| {
            (rng.random_range(0..300usize), rng.random_bool(0.5))
        });
        let mut bits = BitSet::new();
        let mut model = BTreeSet::new();
        for (value, insert) in ops {
            if insert {
                assert_eq!(bits.insert(value), model.insert(value));
            } else {
                assert_eq!(bits.remove(value), model.remove(&value));
            }
            assert_eq!(bits.len(), model.len());
            assert_eq!(bits.contains(value), model.contains(&value));
        }
        let collected: Vec<usize> = bits.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        assert_eq!(collected, expected);
    });
}

/// Union and subset agree with the reference set.
#[test]
fn bitset_union_subset() {
    run_seeded_cases("bitset_union_subset", 256, |_, rng| {
        let random_set = |rng: &mut Rng| -> BTreeSet<usize> {
            random_vec(rng, 50, |rng| rng.random_range(0..200usize))
                .into_iter()
                .collect()
        };
        let a = random_set(rng);
        let b = random_set(rng);
        let mut ba: BitSet = a.iter().copied().collect();
        let bb: BitSet = b.iter().copied().collect();
        assert_eq!(ba.is_subset(&bb), a.is_subset(&b));
        assert_eq!(ba.is_disjoint(&bb), a.is_disjoint(&b));
        ba.union_with(&bb);
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        assert_eq!(ba.iter().collect::<BTreeSet<_>>(), union);
    });
}

/// Timestamps are totally ordered and `max_ts` is commutative,
/// associative, and idempotent with `None` as identity.
#[test]
fn timestamp_lattice() {
    use ral_core::timestamp::max_ts;
    run_seeded_cases("timestamp_lattice", 256, |_, rng| {
        let tss: Vec<Option<Ts>> = random_vec(rng, 20, |rng| {
            (rng.random_range(0..50u64), rng.random_range(0..4u32))
        })
        .into_iter()
        .map(|(c, r)| Some(Ts::new(c, ReplicaId(r))))
        .collect();
        for &a in &tss {
            assert_eq!(max_ts(a, None), a);
            assert_eq!(max_ts(a, a), a);
            for &b in &tss {
                assert_eq!(max_ts(a, b), max_ts(b, a));
                for &c in &tss {
                    assert_eq!(max_ts(max_ts(a, b), c), max_ts(a, max_ts(b, c)));
                }
            }
        }
    });
}

/// Builds a random history DAG: each op sees a random subset of its
/// predecessors, closed transitively (mimicking causal delivery).
fn random_history(edges: &[(usize, bool)]) -> History<usize> {
    let mut h: History<usize> = History::new();
    for (i, &(window, dense)) in edges.iter().enumerate() {
        let mut preds: Vec<usize> = Vec::new();
        if i > 0 {
            let from = i.saturating_sub(window % (i + 1));
            for p in from..i {
                if dense || p % 2 == 0 {
                    preds.push(p);
                }
            }
        }
        // Transitive closure (single-object discipline).
        let mut closed: BTreeSet<usize> = preds.iter().copied().collect();
        for &p in &preds {
            closed.extend(h.preds(p).iter());
        }
        h.push(OpRecord::new(i, ReplicaId(0)), closed);
    }
    h
}

/// Draws the DAG shape the two invariant tests share: 1..max ops, each
/// with a visibility window and a density flag.
fn random_edges(rng: &mut Rng, max: usize) -> Vec<(usize, bool)> {
    let len = rng.random_range(1..max);
    (0..len)
        .map(|_| (rng.random_range(0..6usize), rng.random_bool(0.5)))
        .collect()
}

/// Insertion order is always a valid linear extension, and transitively
/// closed construction yields a transitive history.
#[test]
fn history_invariants() {
    run_seeded_cases("history_invariants", 256, |_, rng| {
        let h = random_history(&random_edges(rng, 30));
        let order: Vec<usize> = (0..h.len()).collect();
        assert!(h.order_consistent(&order));
        assert!(h.is_transitive());
        // Concurrency is symmetric and irreflexive.
        for a in 0..h.len() {
            assert!(!h.concurrent(a, a));
            for b in 0..h.len() {
                assert_eq!(h.concurrent(a, b), h.concurrent(b, a));
            }
        }
    });
}

/// Virtual timestamps are monotone along visibility.
#[test]
fn virtual_ts_monotone() {
    run_seeded_cases("virtual_ts_monotone", 256, |_, rng| {
        let mut h = random_history(&random_edges(rng, 25));
        // Give every third op a real timestamp, increasing with the index
        // (as a Lamport discipline would).
        let mut stamped: History<usize> = History::new();
        for (i, op) in h.iter() {
            let record = if i % 3 == 0 {
                OpRecord::with_ts(*h.label(i), op.replica, Ts::new(i as u64 + 1, ReplicaId(0)))
            } else {
                OpRecord::new(*h.label(i), op.replica)
            };
            stamped.push_set(record, h.preds(i).clone());
        }
        h = stamped;
        for b in 0..h.len() {
            for a in h.preds(b).iter() {
                assert!(
                    h.virtual_ts(a) <= h.virtual_ts(b),
                    "ts_h must grow along visibility"
                );
            }
        }
    });
}
