//! Property-based tests for the core data structures: the bit set against a
//! `BTreeSet` model, and history invariants on randomly generated DAGs.

use proptest::prelude::*;
use ral_core::bitset::BitSet;
use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_core::timestamp::Ts;
use std::collections::BTreeSet;

proptest! {
    /// Insert/remove/contains agree with the reference set.
    #[test]
    fn bitset_matches_btreeset_model(ops in proptest::collection::vec((0usize..300, any::<bool>()), 0..200)) {
        let mut bits = BitSet::new();
        let mut model = BTreeSet::new();
        for (value, insert) in ops {
            if insert {
                prop_assert_eq!(bits.insert(value), model.insert(value));
            } else {
                prop_assert_eq!(bits.remove(value), model.remove(&value));
            }
            prop_assert_eq!(bits.len(), model.len());
            prop_assert_eq!(bits.contains(value), model.contains(&value));
        }
        let collected: Vec<usize> = bits.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected);
    }

    /// Union and subset agree with the reference set.
    #[test]
    fn bitset_union_subset(
        a in proptest::collection::btree_set(0usize..200, 0..50),
        b in proptest::collection::btree_set(0usize..200, 0..50),
    ) {
        let mut ba: BitSet = a.iter().copied().collect();
        let bb: BitSet = b.iter().copied().collect();
        prop_assert_eq!(ba.is_subset(&bb), a.is_subset(&b));
        prop_assert_eq!(ba.is_disjoint(&bb), a.is_disjoint(&b));
        ba.union_with(&bb);
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(ba.iter().collect::<BTreeSet<_>>(), union);
    }

    /// Timestamps are totally ordered and `max_ts` is commutative,
    /// associative, and idempotent with `None` as identity.
    #[test]
    fn timestamp_lattice(
        raw in proptest::collection::vec((0u64..50, 0u32..4), 0..20),
    ) {
        use ral_core::timestamp::max_ts;
        let tss: Vec<Option<Ts>> = raw
            .iter()
            .map(|&(c, r)| Some(Ts::new(c, ReplicaId(r))))
            .collect();
        for &a in &tss {
            prop_assert_eq!(max_ts(a, None), a);
            prop_assert_eq!(max_ts(a, a), a);
            for &b in &tss {
                prop_assert_eq!(max_ts(a, b), max_ts(b, a));
                for &c in &tss {
                    prop_assert_eq!(max_ts(max_ts(a, b), c), max_ts(a, max_ts(b, c)));
                }
            }
        }
    }
}

/// Builds a random history DAG: each op sees a random subset of its
/// predecessors, closed transitively (mimicking causal delivery).
fn random_history(edges: &[(usize, bool)]) -> History<usize> {
    let mut h: History<usize> = History::new();
    for (i, &(window, dense)) in edges.iter().enumerate() {
        let mut preds: Vec<usize> = Vec::new();
        if i > 0 {
            let from = i.saturating_sub(window % (i + 1));
            for p in from..i {
                if dense || p % 2 == 0 {
                    preds.push(p);
                }
            }
        }
        // Transitive closure (single-object discipline).
        let mut closed: BTreeSet<usize> = preds.iter().copied().collect();
        for &p in &preds {
            closed.extend(h.preds(p).iter());
        }
        h.push(OpRecord::new(i, ReplicaId(0)), closed);
    }
    h
}

proptest! {
    /// Insertion order is always a valid linear extension, and transitively
    /// closed construction yields a transitive history.
    #[test]
    fn history_invariants(edges in proptest::collection::vec((0usize..6, any::<bool>()), 1..30)) {
        let h = random_history(&edges);
        let order: Vec<usize> = (0..h.len()).collect();
        prop_assert!(h.order_consistent(&order));
        prop_assert!(h.is_transitive());
        // Concurrency is symmetric and irreflexive.
        for a in 0..h.len() {
            prop_assert!(!h.concurrent(a, a));
            for b in 0..h.len() {
                prop_assert_eq!(h.concurrent(a, b), h.concurrent(b, a));
            }
        }
    }

    /// Virtual timestamps are monotone along visibility.
    #[test]
    fn virtual_ts_monotone(edges in proptest::collection::vec((0usize..6, any::<bool>()), 1..25)) {
        let mut h = random_history(&edges);
        // Give every third op a real timestamp, increasing with the index
        // (as a Lamport discipline would).
        let mut stamped: History<usize> = History::new();
        for (i, op) in h.iter() {
            let record = if i % 3 == 0 {
                OpRecord::with_ts(*h.label(i), op.replica, Ts::new(i as u64 + 1, ReplicaId(0)))
            } else {
                OpRecord::new(*h.label(i), op.replica)
            };
            stamped.push_set(record, h.preds(i).clone());
        }
        h = stamped;
        for b in 0..h.len() {
            for a in h.preds(b).iter() {
                prop_assert!(
                    h.virtual_ts(a) <= h.virtual_ts(b),
                    "ts_h must grow along visibility"
                );
            }
        }
    }
}
