//! The streaming monitor's bounded-memory and determinism contracts, at
//! the scale the batch checkers cannot touch.
//!
//! * **Bounded memory** — a rolling-partition churn run of ≥100k
//!   operations, monitored continuously: every partition window holds a
//!   handful of operations concurrent, so causal stability must keep the
//!   peak retained configuration set and live window O(window) — five
//!   orders of magnitude below the operation count — while base
//!   compaction recycles settled state throughout.
//! * **Determinism** — the monitor is sequential by construction;
//!   `RAL_CHECK_THREADS` (the batch searches' parallelism knob) must be
//!   unobservable in the verdict stream, the settle points, and every
//!   counter.

use ral_core::history::History;
use ral_core::label::Identity;
use ral_core::ralin::{MonitorFeed, MonitorStats, Verdict};
use ral_core::rng::Rng;
use ral_crdts::op::counter::OpCounter;
use ral_sim::driver::{Driver, OpDriver};
use ral_sim::fault::{FaultPlan, PartitionWindow};
use ral_sim::network::{Latency, LinkFaults, Network, Topology};
use ral_sim::sim::{self, SimConfig};
use ral_sim::time::SimTime;
use ral_sim::MonitoredDriver;
use ral_spec::counter::CounterSpec;
use ral_verify::workloads;

/// Four replicas on a tick-tight LAN, with a 60-tick partition window
/// reopening every `cycle` ticks and rolling through three different
/// 2|2 splits — churn that stalls settlement briefly, over and over,
/// without ever letting the concurrent window grow past a handful of
/// operations per side. (The window length is load-bearing: at ~0.15
/// invokes/tick, 60 ticks hold ~4 ops concurrent; doubling it holds ~9
/// per side, and the complete closure's interleaving count C(18,9) would
/// blow the live-config cap — honestly, as Exhausted.)
fn churn_config(duration: u64, cycle: u64) -> SimConfig {
    let splits = [vec![0u32, 0, 1, 1], vec![0, 1, 0, 1], vec![0, 1, 1, 0]];
    let mut partitions = Vec::new();
    let mut start = 1_000;
    while start + 60 < duration {
        partitions.push(PartitionWindow::new(
            SimTime(start),
            SimTime(start + 60),
            splits[partitions.len() % splits.len()].clone(),
        ));
        start += cycle;
    }
    SimConfig {
        n_replicas: 4,
        duration: SimTime(duration),
        invoke_every: Latency::jittered(25, 30),
        gossip_every: Latency::jittered(20, 25),
        network: Network {
            topology: Topology::Uniform(Latency::jittered(1, 2)),
            faults: LinkFaults::NONE,
            retry: 10,
        },
        faults: FaultPlan {
            partitions,
            crashes: vec![],
        },
        final_sync: true,
    }
}

/// ≥100k operations through rolling partitions, verified live. The run
/// must end accepted and fully settled, with peak retained state bounded
/// by the partition window, and the monitor's obs counters must mirror
/// its own stats exactly.
#[test]
fn monitored_churn_of_100k_ops_retains_only_the_window() {
    let cfg = churn_config(1_050_000, 3_000);
    cfg.validate();
    let inner = OpDriver::new(OpCounter, cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::counter(rng))
    });
    let mut driver = MonitoredDriver::new(inner, Identity, CounterSpec);
    sim::run(&mut driver, &cfg, 0xC0FFEE);
    assert!(driver.converged(), "churn run failed to converge");

    let verdict = driver.verdict();
    let stats = driver.stats().clone();
    let ops = driver.cluster().history().len() as u64;
    assert!(ops >= 100_000, "only {ops} ops invoked; lengthen the run");
    assert_eq!(verdict, Verdict::Ok, "stats: {stats:?}");
    assert_eq!(stats.ops, ops);
    assert_eq!(stats.settled, ops, "final sync must settle everything");
    assert_eq!(stats.live_window, 0, "settled stream, empty window");

    // The bounded-memory claim: peak retained state tracks the partition
    // window (a handful of ops per side), not the 100k-op stream. The
    // bounds below are ~50× looser than typical peaks and ~5 orders of
    // magnitude below O(n) retention, so they fail on a real leak only.
    assert!(
        stats.peak_live_window <= 512,
        "live window grew to {} ops",
        stats.peak_live_window
    );
    assert!(
        stats.peak_live_configs <= 4_096,
        "configuration frontier grew to {}",
        stats.peak_live_configs
    );
    assert!(
        stats.compactions >= 1_000,
        "only {} base compactions across {ops} settled ops",
        stats.compactions
    );

    // The obs surface mirrors the stats it summarizes, field for field.
    ral_obs::reset();
    ral_obs::enable(None);
    driver.emit_obs();
    ral_obs::disable();
    let snap = ral_obs::drain();
    ral_obs::reset();
    assert_eq!(snap.counter_total("monitor.ops"), stats.ops);
    assert_eq!(snap.counter_total("monitor.settled_ops"), stats.settled);
    assert_eq!(snap.counter_total("monitor.compactions"), stats.compactions);
    assert_eq!(
        snap.values("monitor.peak_live_configs"),
        vec![stats.peak_live_configs]
    );
    assert_eq!(
        snap.values("monitor.peak_live_window"),
        vec![stats.peak_live_window]
    );
}

/// Feeds a recorded history through a fresh monitor, event by event,
/// capturing the verdict and settle point after every step — the full
/// observable behavior of a streaming run.
fn replay_stream(
    h: &History<<OpCounter as ral_runtime::op_based::OpBased>::Label>,
    n_replicas: usize,
) -> (Vec<(Verdict, usize)>, MonitorStats) {
    let mut feed = MonitorFeed::new(&Identity, &CounterSpec, n_replicas);
    let mut fronts = vec![0usize; n_replicas];
    let mut steps = Vec::with_capacity(h.len());
    for i in 0..h.len() {
        feed.feed_op(h.label(i), h.preds(i));
        let r = h.op(i).replica;
        let f = &mut fronts[r.0 as usize];
        while *f < h.len() && (*f == i || h.preds(i).contains(*f)) {
            *f += 1;
        }
        feed.observe_frontier(r, *f);
        steps.push((feed.verdict(), feed.monitor().settled()));
    }
    (steps, feed.stats().clone())
}

/// Same seed ⇒ identical verdict stream, settle points, and counters —
/// and `RAL_CHECK_THREADS`, which parallelizes the *batch* searches, must
/// be invisible to the sequential streaming monitor at every setting.
#[test]
fn monitor_stream_is_identical_at_every_thread_count() {
    let cfg = churn_config(20_000, 3_000);
    let mut driver = OpDriver::new(OpCounter, cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::counter(rng))
    });
    sim::run(&mut driver, &cfg, 7);
    let h = driver.into_cluster().into_history();
    assert!(h.len() > 1_000, "churn history unexpectedly small");

    let baseline = replay_stream(&h, cfg.n_replicas);
    assert_eq!(
        baseline.0.last().map(|(v, _)| *v),
        Some(Verdict::Ok),
        "replay must end accepted"
    );
    assert_eq!(
        baseline,
        replay_stream(&h, cfg.n_replicas),
        "same-seed replay diverged"
    );
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAL_CHECK_THREADS", threads);
        let run = replay_stream(&h, cfg.n_replicas);
        std::env::remove_var("RAL_CHECK_THREADS");
        assert_eq!(
            run, baseline,
            "RAL_CHECK_THREADS={threads} leaked into the streaming monitor"
        );
    }
}
