//! Executor equivalence: the sharded replication runtime is **outcome
//! invariant** at every thread count.
//!
//! The determinism contract of `docs/RUNTIME.md`: a replica's drain mutates
//! only its own node while reading the immutable shared record pool, and
//! history is written at invoke time only — so partitioning replicas across
//! worker threads cannot change a single byte of any trace or history. This
//! suite pins that claim over the *whole* scenario corpus, for the
//! synchronous executor, the seeded scheduler at 1/2/8 workers, and the
//! free-running (non-seeded) mode.

use ral_core::ids::{ObjId, ReplicaId};
use ral_core::rng::Rng;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::OrSet;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::pn_counter::PnCounter;
use ral_runtime::delta::DeltaConfig;
use ral_runtime::exec::ExecConfig;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::Cluster;
use ral_sim::driver::{DeltaDriver, Driver, MultiDriver, OpDriver, StateDriver};
use ral_sim::scenario::{self, Scenario};
use ral_sim::sim;
use ral_verify::workloads;

/// Trace bytes, history bytes, and the converged final state rendered per
/// replica — everything a run can possibly disclose.
struct RunOutput {
    trace: Vec<u8>,
    history: Vec<u8>,
    final_states: Vec<String>,
}

fn op_run(sc: &Scenario, seed: u64, exec: ExecConfig) -> RunOutput {
    let mut driver = OpDriver::new(
        OrSet::<u8>::new(),
        sc.cfg.n_replicas,
        |rng: &mut Rng, _, _| Some(workloads::or_set(rng)),
    );
    driver.cluster_mut().set_exec(exec);
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    let cluster = driver.into_cluster();
    RunOutput {
        trace: run.trace.render().into_bytes(),
        final_states: (0..sc.cfg.n_replicas)
            .map(|r| format!("{:?}", cluster.state(ReplicaId(r as u32))))
            .collect(),
        history: format!("{:?}", cluster.into_history()).into_bytes(),
    }
}

fn state_run(sc: &Scenario, seed: u64, exec: ExecConfig) -> RunOutput {
    let mut driver = StateDriver::new(PnCounter, sc.cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::pn_counter(rng))
    });
    driver.cluster_mut().set_exec(exec);
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    let cluster = driver.into_cluster();
    RunOutput {
        trace: run.trace.render().into_bytes(),
        final_states: (0..sc.cfg.n_replicas)
            .map(|r| format!("{:?}", cluster.state(ReplicaId(r as u32))))
            .collect(),
        history: format!("{:?}", cluster.into_history()).into_bytes(),
    }
}

fn delta_run(sc: &Scenario, seed: u64, exec: ExecConfig) -> RunOutput {
    let mut driver = DeltaDriver::new(
        LwwElementSet::<u8>::new(),
        DeltaConfig { resync_after: 8 },
        sc.cfg.n_replicas,
        |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    driver.cluster_mut().set_exec(exec);
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    let cluster = driver.into_cluster();
    RunOutput {
        trace: run.trace.render().into_bytes(),
        final_states: (0..sc.cfg.n_replicas)
            .map(|r| format!("{:?}", cluster.state(ReplicaId(r as u32))))
            .collect(),
        history: format!("{:?}", cluster.into_history()).into_bytes(),
    }
}

fn multi_run(sc: &Scenario, seed: u64, exec: ExecConfig) -> RunOutput {
    let cluster = MultiCluster::with_exec(
        LwwRegister::<u8>::new(),
        32,
        sc.cfg.n_replicas,
        TsMode::Shared,
        exec,
    );
    let mut driver = MultiDriver::new(cluster, |rng: &mut Rng, _, _obj: ObjId, _| {
        Some(workloads::lww_register(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, seed);
    assert!(driver.converged(), "{}: no convergence", sc.name);
    let cluster = driver.into_cluster();
    RunOutput {
        trace: run.trace.render().into_bytes(),
        final_states: (0..sc.cfg.n_replicas)
            .map(|r| format!("{:?}", cluster.state(ReplicaId(r as u32), ObjId(0))))
            .collect(),
        history: format!("{:?}", cluster.into_history()).into_bytes(),
    }
}

fn runner_for(name: &str) -> fn(&Scenario, u64, ExecConfig) -> RunOutput {
    match name {
        "geo_3dc" | "split_brain_heal" | "lan_tight" => op_run,
        "flaky_wan" | "rolling_restart" | "gossip_50" => state_run,
        "delta_wan" => delta_run,
        "multi_mix" => multi_run,
        other => panic!("unknown scenario {other}"),
    }
}

/// Every corpus scenario, synchronous baseline vs the seeded scheduler at
/// 1, 2, and 8 worker threads: traces and histories must be byte-identical.
#[test]
fn seeded_executor_is_byte_identical_across_the_corpus() {
    for sc in scenario::all() {
        let runner = runner_for(sc.name);
        let base = runner(&sc, 42, ExecConfig::sequential());
        for threads in [1, 2, 8] {
            let exec = ExecConfig::seeded(threads, 0xD15C);
            let run = runner(&sc, 42, exec);
            assert_eq!(
                run.trace, base.trace,
                "{}: trace drifted under {exec:?}",
                sc.name
            );
            assert_eq!(
                run.history, base.history,
                "{}: history drifted under {exec:?}",
                sc.name
            );
        }
    }
}

/// Free-running (non-seeded) mode at 8 threads: final states must equal the
/// synchronous baseline's on every scenario — and since the runtime is
/// deterministic by construction, the traces and histories match too.
#[test]
fn free_running_executor_reaches_identical_final_states() {
    for sc in scenario::all() {
        let runner = runner_for(sc.name);
        let base = runner(&sc, 7, ExecConfig::sequential());
        let free = runner(&sc, 7, ExecConfig::free(8));
        assert_eq!(
            free.final_states, base.final_states,
            "{}: free-running final states drifted",
            sc.name
        );
        assert_eq!(free.trace, base.trace, "{}: trace drifted", sc.name);
        assert_eq!(free.history, base.history, "{}: history drifted", sc.name);
    }
}

/// Different scheduler seeds jitter the shard boundaries but may not change
/// outcomes — seed-independence is part of the contract.
#[test]
fn scheduler_seed_never_changes_outcomes() {
    let sc = scenario::by_name("multi_mix").expect("corpus scenario");
    let base = multi_run(&sc, 11, ExecConfig::sequential());
    for seed in [0u64, 1, 0xFEED_FACE] {
        let run = multi_run(&sc, 11, ExecConfig::seeded(4, seed));
        assert_eq!(run.trace, base.trace, "scheduler seed {seed} leaked");
        assert_eq!(run.history, base.history, "scheduler seed {seed} leaked");
    }
}

/// Direct (non-sim) drain equivalence on a raw op-based cluster, crash and
/// holdback included — the smallest reproduction of the contract, kept here
/// as the first thing to bisect with if a corpus scenario ever drifts.
#[test]
fn raw_cluster_drain_is_thread_count_invariant() {
    let run = |exec: ExecConfig| {
        let mut c = Cluster::with_exec(OrSet::<u8>::new(), 6, exec);
        let mut rng = Rng::seed_from_u64(3);
        for i in 0..240u32 {
            let r = ReplicaId(i % 6);
            if i == 60 {
                c.crash(ReplicaId(2));
            }
            if i == 120 {
                c.restart(ReplicaId(2));
            }
            if c.is_up(r) {
                c.invoke(r, workloads::or_set(&mut rng));
            }
            if i % 31 == 17 {
                c.deliver_all();
            }
        }
        c.restart_all();
        c.deliver_all();
        assert!(c.converged());
        format!("{:?}", c.into_history())
    };
    let base = run(ExecConfig::sequential());
    for exec in [
        ExecConfig::free(2),
        ExecConfig::free(8),
        ExecConfig::seeded(3, 99),
    ] {
        assert_eq!(run(exec), base, "drain outcome drifted under {exec:?}");
    }
}
