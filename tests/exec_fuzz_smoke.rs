//! Fixed-seed fuzz campaign under the parallel runtime: the whole campaign
//! — scenario stream, verdict tallies, coverage map, findings — must be
//! identical whether cluster delivery runs synchronously or sharded across
//! worker threads.
//!
//! Lives in its own integration-test binary because it flips the
//! process-global executor thread override; no other test shares the
//! process, so the override cannot race a concurrently running test.

use ral_fuzz::{fuzz, FuzzConfig};
use ral_runtime::exec;

#[test]
fn fuzz_campaign_is_identical_under_the_parallel_runtime() {
    let cfg = FuzzConfig {
        seed: 7,
        runs: 40,
        ..Default::default()
    };
    exec::override_threads(Some(1));
    let base = fuzz(&cfg);
    exec::override_threads(Some(2));
    let parallel = fuzz(&cfg);
    exec::override_threads(None);
    assert_eq!(
        parallel.stream_fnv, base.stream_fnv,
        "scenario stream drifted"
    );
    assert_eq!(parallel.verdicts, base.verdicts, "verdict tallies drifted");
    assert_eq!(parallel.coverage, base.coverage, "coverage map drifted");
    assert_eq!(
        parallel.findings.len(),
        base.findings.len(),
        "finding count drifted"
    );
    assert_eq!(parallel.runs, base.runs);
    assert_eq!(parallel.dedup, base.dedup);
    assert_eq!(parallel.novel, base.novel);
}
