//! Property-based convergence (strong eventual consistency) tests: under
//! arbitrary schedules, once everything is delivered all replicas agree —
//! for every CRDT in the library.
//!
//! RA-linearizability implies convergence (Section 4.1's discussion of
//! nondeterministic specifications): two queries seeing the same updates
//! return the same value. These tests check the state-level consequence
//! directly, including for the *unreliable* state-based network (loss,
//! duplication, reordering).
//!
//! Runs on the workspace's seeded harness
//! ([`ral_core::rng::run_seeded_cases`]); a failing case prints its seed.

use ral_core::ids::ReplicaId;
use ral_core::rng::run_seeded_cases;
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_crdts::op::wooki::{Wooki, WookiCall};
use ral_crdts::state::lww_element_set::{LwwElementSet, LwwSetCall};
use ral_crdts::state::mv_register::{MvCall, MvRegister};
use ral_crdts::state::pn_counter::{PnCall, PnCounter};
use ral_runtime::op_based::Cluster;
use ral_runtime::state_based::{StateBased, StateCluster};
use ral_spec::rga::Anchor;
use ral_spec::wooki::WookiAnchor;

mod common;
use common::random_schedule;

fn replica(raw: u8) -> ReplicaId {
    ReplicaId((raw % 3) as u32)
}

/// RGA converges under arbitrary invocation/delivery interleavings.
#[test]
fn rga_converges() {
    run_seeded_cases("rga_converges", 48, |_, rng| {
        let schedule = random_schedule(rng, 25);
        let mut cluster = Cluster::new(Rga::<u16>::new(), 3);
        let mut next = 0u16;
        for &(raw, action) in &schedule {
            let r = replica(raw);
            if action < 12 {
                let visible = cluster.state(r).visible();
                let call = match action % 3 {
                    0 | 1 => {
                        let anchor = if visible.is_empty() || action % 2 == 0 {
                            Anchor::Head
                        } else {
                            Anchor::Elem(visible[action as usize % visible.len()])
                        };
                        next += 1;
                        RgaCall::AddAfter(anchor, next)
                    }
                    _ => {
                        if visible.is_empty() {
                            continue;
                        }
                        RgaCall::Remove(visible[action as usize % visible.len()])
                    }
                };
                cluster.invoke(r, call);
            } else {
                let ds = cluster.deliverable(r);
                if !ds.is_empty() {
                    cluster.deliver(r, ds[action as usize % ds.len()]);
                }
            }
        }
        cluster.deliver_all();
        assert!(cluster.converged());
        assert!(cluster.history().is_transitive());
    });
}

/// Wooki converges likewise; every element stays between its anchors.
#[test]
fn wooki_converges() {
    run_seeded_cases("wooki_converges", 48, |_, rng| {
        let schedule = random_schedule(rng, 20);
        let mut cluster = Cluster::new(Wooki::<u16>::new(), 3);
        let mut next = 0u16;
        for &(raw, action) in &schedule {
            let r = replica(raw);
            if action < 12 {
                let all = cluster.state(r).all_values();
                let i = if all.is_empty() {
                    0
                } else {
                    action as usize % (all.len() + 1)
                };
                let j = if all.is_empty() {
                    0
                } else {
                    i + (raw as usize % (all.len() + 1 - i))
                };
                let left = if i == 0 {
                    WookiAnchor::Begin
                } else {
                    WookiAnchor::Elem(all[i - 1])
                };
                let right = if j >= all.len() {
                    WookiAnchor::End
                } else {
                    WookiAnchor::Elem(all[j])
                };
                next += 1;
                cluster.invoke(r, WookiCall::AddBetween(left, next, right));
            } else {
                let ds = cluster.deliverable(r);
                if !ds.is_empty() {
                    cluster.deliver(r, ds[action as usize % ds.len()]);
                }
            }
        }
        cluster.deliver_all();
        assert!(cluster.converged());
    });
}

/// State-based CRDTs converge after one synchronization round, whatever
/// messages were lost, duplicated, or reordered before it — and the
/// lattice laws hold throughout.
#[test]
fn state_based_converge_despite_chaos() {
    fn chaos<C: StateBased + Clone>(
        crdt: C,
        schedule: &[(u8, u8)],
        mut call: impl FnMut(u8) -> C::Call,
    ) -> StateCluster<C> {
        let mut cluster = StateCluster::new(crdt, 3);
        for &(raw, action) in schedule {
            let r = replica(raw);
            match action % 4 {
                0 | 1 => {
                    let c = call(action);
                    cluster.invoke(r, c);
                }
                2 => {
                    cluster.send(r);
                }
                _ => {
                    if cluster.n_messages() > 0 {
                        let m = action as usize % cluster.n_messages();
                        cluster.apply(r, m); // duplication & reordering
                    }
                }
            }
        }
        cluster.sync_all();
        cluster
    }

    run_seeded_cases("state_based_converge_despite_chaos", 48, |_, rng| {
        let schedule = random_schedule(rng, 25);

        let pn = chaos(PnCounter, &schedule, |a| match a % 3 {
            0 => PnCall::Inc,
            1 => PnCall::Dec,
            _ => PnCall::Read,
        });
        assert!(pn.converged());
        assert!(pn.check_lattice_laws());

        let mv = chaos(MvRegister::<u8>::new(), &schedule, |a| {
            if a % 2 == 0 {
                MvCall::Write(a % 5)
            } else {
                MvCall::Read
            }
        });
        assert!(mv.converged());
        assert!(mv.check_lattice_laws());

        let lww = chaos(LwwElementSet::<u8>::new(), &schedule, |a| match a % 3 {
            0 => LwwSetCall::Add(a % 4),
            1 => LwwSetCall::Remove(a % 4),
            _ => LwwSetCall::Read,
        });
        assert!(lww.converged());
        assert!(lww.check_lattice_laws());
    });
}
