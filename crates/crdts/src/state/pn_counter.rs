//! The state-based PN-Counter (Listing 9, Appendix E.3).
//!
//! The payload is a pair of vectors `P`, `N` (one slot per replica);
//! `inc`/`dec` bump the origin's slot, the value is `ΣP − ΣN`, and `merge`
//! is the pointwise maximum. Local effectors are **cumulative**
//! (Appendix D.4) and the counter admits **execution-order** linearizations
//! (Figure 12).

use crate::state::local::{EffectorClass, LocalEffector};
use ral_core::ids::ReplicaId;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::delta::DeltaCrdt;
use ral_runtime::gen::GenCtx;
use ral_runtime::state_based::{StateBased, StateOutcome};
use ral_spec::counter::CounterOp;

/// Method invocations of the PN-Counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PnCall {
    /// `inc()`.
    Inc,
    /// `dec()`.
    Dec,
    /// `read()`.
    Read,
}

/// Replica payload: the increment and decrement vectors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnState {
    /// Per-replica increment counts.
    pub p: Vec<u64>,
    /// Per-replica decrement counts.
    pub n: Vec<u64>,
}

impl PnState {
    /// The counter value `ΣP − ΣN`.
    pub fn value(&self) -> i64 {
        self.p.iter().sum::<u64>() as i64 - self.n.iter().sum::<u64>() as i64
    }
}

/// Local-effector argument: which vector to bump, at which replica slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PnArg {
    /// `inc` at this replica.
    Inc(ReplicaId),
    /// `dec` at this replica.
    Dec(ReplicaId),
}

/// The state-based PN-Counter CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::state::pn_counter::{PnCall, PnCounter};
/// use ral_runtime::state_based::StateCluster;
///
/// let mut cluster = StateCluster::new(PnCounter, 2);
/// cluster.invoke(ReplicaId(0), PnCall::Inc);
/// cluster.invoke(ReplicaId(1), PnCall::Dec);
/// cluster.sync_all();
/// let read = cluster.invoke(ReplicaId(0), PnCall::Read).unwrap();
/// assert_eq!(read.ret, Some(0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PnCounter;

impl PnCounter {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// The refinement mapping `abs` onto `Spec(Counter)` states.
    pub fn abs(state: &PnState) -> i64 {
        state.value()
    }
}

impl StateBased for PnCounter {
    type State = PnState;
    type Call = PnCall;
    type Ret = Option<i64>;
    type Label = CounterOp;

    fn initial(&self, n_replicas: usize) -> PnState {
        PnState {
            p: vec![0; n_replicas],
            n: vec![0; n_replicas],
        }
    }

    fn invoke(
        &self,
        state: &PnState,
        call: &PnCall,
        ctx: &mut GenCtx,
    ) -> StateOutcome<Option<i64>, PnState> {
        let g = ctx.replica().0 as usize;
        match call {
            PnCall::Inc => {
                let mut next = state.clone();
                next.p[g] += 1;
                StateOutcome::Done { ret: None, next }
            }
            PnCall::Dec => {
                let mut next = state.clone();
                next.n[g] += 1;
                StateOutcome::Done { ret: None, next }
            }
            PnCall::Read => StateOutcome::Done {
                ret: Some(state.value()),
                next: state.clone(),
            },
        }
    }

    fn merge(&self, a: &PnState, b: &PnState) -> PnState {
        PnState {
            p: a.p.iter().zip(&b.p).map(|(x, y)| *x.max(y)).collect(),
            n: a.n.iter().zip(&b.n).map(|(x, y)| *x.max(y)).collect(),
        }
    }

    fn leq(&self, a: &PnState, b: &PnState) -> bool {
        a.p.iter().zip(&b.p).all(|(x, y)| x <= y) && a.n.iter().zip(&b.n).all(|(x, y)| x <= y)
    }

    fn label(&self, call: &PnCall, ret: &Option<i64>) -> CounterOp {
        match call {
            PnCall::Inc => CounterOp::Inc,
            PnCall::Dec => CounterOp::Dec,
            PnCall::Read => CounterOp::Read(ret.expect("read returns a value")),
        }
    }
}

/// The PN-Counter's join decomposition: only the vector slots a mutation
/// (or batch of mutations) touched, as `(slot, value)` pairs. Joining
/// takes the pointwise maximum into the dense payload — each slot is
/// written only by its owning replica, so the shipped value is
/// authoritative and duplicates are absorbed by `max`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnDelta {
    /// Touched increment slots: `(replica index, new slot value)`.
    pub p: Vec<(u32, u64)>,
    /// Touched decrement slots: `(replica index, new slot value)`.
    pub n: Vec<(u32, u64)>,
}

// Merges `(slot, value)` maps by pointwise maximum, keeping slots sorted.
fn join_slots(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = a.to_vec();
    for &(slot, v) in b {
        match out.binary_search_by_key(&slot, |e| e.0) {
            Ok(i) => out[i].1 = out[i].1.max(v),
            Err(i) => out.insert(i, (slot, v)),
        }
    }
    out
}

// The sparse entries of `post` that exceed `pre` (pointwise).
fn diff_slots(pre: &[u64], post: &[u64]) -> Vec<(u32, u64)> {
    post.iter()
        .enumerate()
        .filter(|&(i, &v)| v > pre.get(i).copied().unwrap_or(0))
        .map(|(i, &v)| (i as u32, v))
        .collect()
}

impl DeltaCrdt for PnCounter {
    type Delta = PnDelta;

    fn diff(&self, pre: &PnState, post: &PnState) -> PnDelta {
        PnDelta {
            p: diff_slots(&pre.p, &post.p),
            n: diff_slots(&pre.n, &post.n),
        }
    }

    fn join(&self, state: &PnState, delta: &PnDelta) -> PnState {
        let mut next = state.clone();
        for &(slot, v) in &delta.p {
            let s = &mut next.p[slot as usize];
            *s = (*s).max(v);
        }
        for &(slot, v) in &delta.n {
            let s = &mut next.n[slot as usize];
            *s = (*s).max(v);
        }
        next
    }

    fn join_deltas(&self, a: &PnDelta, b: &PnDelta) -> PnDelta {
        PnDelta {
            p: join_slots(&a.p, &b.p),
            n: join_slots(&a.n, &b.n),
        }
    }

    fn full_delta(&self, state: &PnState) -> PnDelta {
        PnDelta {
            p: diff_slots(&vec![0; state.p.len()], &state.p),
            n: diff_slots(&vec![0; state.n.len()], &state.n),
        }
    }

    fn delta_bytes(&self, delta: &PnDelta) -> usize {
        // Sparse wire encoding: 4-byte slot + 8-byte value per entry.
        12 * (delta.p.len() + delta.n.len())
    }

    fn state_bytes(&self, state: &PnState) -> usize {
        // Dense wire encoding: 8 bytes per slot, both vectors.
        8 * (state.p.len() + state.n.len())
    }
}

impl LocalEffector for PnCounter {
    type Arg = PnArg;

    fn effector_arg(
        &self,
        label: &CounterOp,
        origin: ReplicaId,
        _ts: Option<ral_core::timestamp::Ts>,
    ) -> Option<PnArg> {
        match label {
            CounterOp::Inc => Some(PnArg::Inc(origin)),
            CounterOp::Dec => Some(PnArg::Dec(origin)),
            CounterOp::Read(_) => None,
        }
    }

    fn apply_arg(&self, state: &mut PnState, arg: &PnArg) {
        match arg {
            PnArg::Inc(r) => state.p[r.0 as usize] += 1,
            PnArg::Dec(r) => state.n[r.0 as usize] += 1,
        }
    }

    fn class(&self) -> EffectorClass {
        EffectorClass::Cumulative
    }

    fn p_pred(&self, state: &PnState, arg: &PnArg) -> bool {
        // P2: no effector with this argument has contributed yet.
        match arg {
            PnArg::Inc(r) => state.p[r.0 as usize] == 0,
            PnArg::Dec(r) => state.n[r.0 as usize] == 0,
        }
    }
}

impl SmallScope for PnCounter {
    type Call = PnCall;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<PnCall> {
        vec![PnCall::Inc, PnCall::Dec]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::schedule::{drive_state_based, ScheduleConfig};
    use ral_runtime::state_based::StateCluster;
    use ral_spec::counter::CounterSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let c = PnCounter;
        let a = PnState {
            p: vec![3, 0],
            n: vec![1, 0],
        };
        let b = PnState {
            p: vec![1, 2],
            n: vec![0, 1],
        };
        let m = c.merge(&a, &b);
        assert_eq!(
            m,
            PnState {
                p: vec![3, 2],
                n: vec![1, 1]
            }
        );
        assert!(c.leq(&a, &m));
        assert!(c.leq(&b, &m));
        assert!(!c.leq(&m, &a));
        assert_eq!(m.value(), 3);
    }

    #[test]
    fn duplicated_messages_do_not_double_count() {
        let mut c = StateCluster::new(PnCounter, 2);
        c.invoke(r(0), PnCall::Inc);
        let m = c.send(r(0));
        c.apply(r(1), m);
        c.apply(r(1), m);
        c.apply(r(1), m);
        let read = c.invoke(r(1), PnCall::Read).unwrap();
        assert_eq!(read.ret, Some(1));
    }

    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        for seed in 0..20 {
            let mut c = StateCluster::new(PnCounter, 3);
            drive_state_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(match rng.random_range(0..3u8) {
                    0 => PnCall::Inc,
                    1 => PnCall::Dec,
                    _ => PnCall::Read,
                })
            });
            assert!(c.converged());
            assert!(c.check_lattice_laws());
            let h = c.into_history();
            ra_check(&h, &Identity, &CounterSpec, PnCounter::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn delta_laws_hold() {
        use ral_runtime::delta::DeltaOutcome;
        let c = PnCounter;
        let pre = PnState {
            p: vec![3, 0],
            n: vec![1, 2],
        };
        // Decomposition: one mutation's delta joined back gives the post
        // state.
        let mut ctx = GenCtx::new(r(0), 0, 0);
        let DeltaOutcome::Done { next, delta, .. } = c.invoke_delta(&pre, &PnCall::Inc, &mut ctx)
        else {
            panic!("inc never refuses")
        };
        let delta = delta.expect("inc is a mutation");
        assert_eq!(
            delta,
            PnDelta {
                p: vec![(0, 4)],
                n: vec![]
            }
        );
        assert_eq!(c.join(&pre, &delta), next);
        // Batching: joining a batch equals joining sequentially.
        let d2 = c.diff(&next, &{
            let mut s = next.clone();
            s.n[0] += 1;
            s
        });
        let other = PnState {
            p: vec![1, 7],
            n: vec![0, 0],
        };
        assert_eq!(
            c.join(&c.join(&other, &delta), &d2),
            c.join(&other, &c.join_deltas(&delta, &d2))
        );
        // Resync: joining the full delta is merging.
        assert_eq!(c.join(&other, &c.full_delta(&pre)), c.merge(&other, &pre));
        // Joins are idempotent.
        let joined = c.join(&other, &delta);
        assert_eq!(c.join(&joined, &delta), joined);
        // A single-mutation delta is cheaper on the wire than the state.
        assert!(c.delta_bytes(&delta) < c.state_bytes(&pre));
        // Queries produce no delta.
        let DeltaOutcome::Done { delta, .. } = c.invoke_delta(&pre, &PnCall::Read, &mut ctx) else {
            panic!("read never refuses")
        };
        assert_eq!(delta, None);
    }

    #[test]
    fn local_effector_reconstructs_state() {
        let c = PnCounter;
        let mut s = c.initial(2);
        c.apply_arg(&mut s, &PnArg::Inc(r(0)));
        c.apply_arg(&mut s, &PnArg::Inc(r(1)));
        c.apply_arg(&mut s, &PnArg::Dec(r(1)));
        assert_eq!(s.value(), 1);
        assert!(!c.p_pred(&s, &PnArg::Inc(r(0))));
        assert!(c.p_pred(&c.initial(2), &PnArg::Inc(r(0))));
    }
}
