//! The state-based Multi-Value Register (Listing 7, Appendix E.1).
//!
//! A write replaces the payload with a single pair `(a, V)` where the
//! version vector `V` dominates everything the origin has seen; `merge`
//! keeps the pairs that are not strictly dominated, so concurrent writes
//! *coexist* and a read may return several values (the Dynamo behaviour).
//! Local effectors are **uniquely identified** by their version vectors
//! (Appendix D.3); the register admits **execution-order** linearizations
//! w.r.t. `Spec(MV-Reg)` (Figure 12).

use crate::state::local::{EffectorClass, LocalEffector};
use ral_core::elem::Elem;
use ral_core::ids::ReplicaId;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::delta::DeltaCrdt;
use ral_runtime::gen::GenCtx;
use ral_runtime::state_based::{StateBased, StateOutcome};
use ral_spec::register::{vv_leq, vv_lt, MvRegOp, VersionVec};
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::mem::size_of;

/// Method invocations of the MV-Register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvCall<E> {
    /// `write(a)`.
    Write(E),
    /// `read()`.
    Read,
}

/// Return values of the MV-Register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvRet<E> {
    /// The version vector minted by a write (needed by the label rewriting).
    Written(VersionVec),
    /// The set of concurrently-latest values.
    Values(BTreeSet<E>),
}

/// Replica payload: the number of replicas (fixing vector width) and the
/// set of undominated pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvState<E> {
    /// Vector width (number of replicas).
    pub width: usize,
    /// Value/version-vector pairs, none strictly dominating another.
    pub pairs: BTreeSet<(E, VersionVec)>,
}

impl<E: Elem> MvState<E> {
    /// The read view: all stored values.
    pub fn values(&self) -> BTreeSet<E> {
        self.pairs.iter().map(|(a, _)| a.clone()).collect()
    }
}

/// The state-based MV-Register CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::state::mv_register::{MvCall, MvRegister, MvRet};
/// use ral_runtime::state_based::StateCluster;
/// use std::collections::BTreeSet;
///
/// let mut cluster = StateCluster::new(MvRegister::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), MvCall::Write('a'));
/// cluster.invoke(ReplicaId(1), MvCall::Write('b'));
/// cluster.sync_all();
/// let read = cluster.invoke(ReplicaId(0), MvCall::Read).unwrap();
/// // Concurrent writes coexist.
/// assert_eq!(read.ret, MvRet::Values(BTreeSet::from(['a', 'b'])));
/// ```
pub struct MvRegister<E> {
    _elem: PhantomData<E>,
}

impl<E> MvRegister<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// Creates the MV-Register descriptor.
    pub fn new() -> Self {
        MvRegister { _elem: PhantomData }
    }
}

impl<E: Elem> MvRegister<E> {
    /// The refinement mapping `abs` onto `Spec(MV-Reg)` states — the pair
    /// set itself.
    pub fn abs(state: &MvState<E>) -> BTreeSet<(E, VersionVec)> {
        state.pairs.clone()
    }
}

impl<E> Clone for MvRegister<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for MvRegister<E> {}

impl<E> Default for MvRegister<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for MvRegister<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MvRegister")
    }
}

impl<E: Elem> StateBased for MvRegister<E> {
    type State = MvState<E>;
    type Call = MvCall<E>;
    type Ret = MvRet<E>;
    type Label = MvRegOp<E>;

    fn initial(&self, n_replicas: usize) -> MvState<E> {
        MvState {
            width: n_replicas,
            pairs: BTreeSet::new(),
        }
    }

    fn invoke(
        &self,
        state: &MvState<E>,
        call: &MvCall<E>,
        ctx: &mut GenCtx,
    ) -> StateOutcome<MvRet<E>, MvState<E>> {
        match call {
            MvCall::Write(a) => {
                let g = ctx.replica().0 as usize;
                let mut v = vec![0; state.width];
                for (_, vv) in &state.pairs {
                    for (slot, x) in v.iter_mut().zip(vv) {
                        *slot = (*slot).max(*x);
                    }
                }
                v[g] += 1;
                let next = MvState {
                    width: state.width,
                    pairs: BTreeSet::from([(a.clone(), v.clone())]),
                };
                StateOutcome::Done {
                    ret: MvRet::Written(v),
                    next,
                }
            }
            MvCall::Read => StateOutcome::Done {
                ret: MvRet::Values(state.values()),
                next: state.clone(),
            },
        }
    }

    fn merge(&self, a: &MvState<E>, b: &MvState<E>) -> MvState<E> {
        let keep = |from: &MvState<E>, other: &MvState<E>| {
            from.pairs
                .iter()
                .filter(|(_, v)| !other.pairs.iter().any(|(_, w)| vv_lt(v, w)))
                .cloned()
                .collect::<BTreeSet<_>>()
        };
        let mut pairs = keep(a, b);
        pairs.extend(keep(b, a));
        MvState {
            width: a.width.max(b.width),
            pairs,
        }
    }

    fn leq(&self, a: &MvState<E>, b: &MvState<E>) -> bool {
        a.pairs
            .iter()
            .all(|(_, v)| b.pairs.iter().any(|(_, w)| vv_leq(v, w)))
    }

    fn label(&self, call: &MvCall<E>, ret: &MvRet<E>) -> MvRegOp<E> {
        match (call, ret) {
            (MvCall::Write(a), MvRet::Written(v)) => MvRegOp::Write(a.clone(), v.clone()),
            (MvCall::Read, MvRet::Values(values)) => MvRegOp::Read(values.clone()),
            _ => unreachable!("mismatched call/return pair"),
        }
    }
}

/// Deltas are state fragments: a write's delta is the singleton pair set
/// `{(a, V)}`. Its fresh vector `V` strictly dominates everything the
/// origin had seen, so `join` (which is `merge`'s dominance pruning)
/// removes the overwritten pairs at every receiver — the delta carries the
/// overwrite without carrying the overwritten pairs.
impl<E: Elem> DeltaCrdt for MvRegister<E> {
    type Delta = MvState<E>;

    fn diff(&self, pre: &MvState<E>, post: &MvState<E>) -> MvState<E> {
        MvState {
            width: post.width,
            pairs: post.pairs.difference(&pre.pairs).cloned().collect(),
        }
    }

    fn join(&self, state: &MvState<E>, delta: &MvState<E>) -> MvState<E> {
        self.merge(state, delta)
    }

    fn join_deltas(&self, a: &MvState<E>, b: &MvState<E>) -> MvState<E> {
        self.merge(a, b)
    }

    fn full_delta(&self, state: &MvState<E>) -> MvState<E> {
        state.clone()
    }

    fn delta_bytes(&self, delta: &MvState<E>) -> usize {
        self.state_bytes(delta)
    }

    fn state_bytes(&self, state: &MvState<E>) -> usize {
        // Length header plus (element + dense version vector) per pair.
        8 + (size_of::<E>() + 8 * state.width) * state.pairs.len()
    }
}

impl<E: Elem> LocalEffector for MvRegister<E> {
    type Arg = (E, VersionVec);

    fn effector_arg(
        &self,
        label: &MvRegOp<E>,
        _origin: ReplicaId,
        _ts: Option<ral_core::timestamp::Ts>,
    ) -> Option<(E, VersionVec)> {
        match label {
            MvRegOp::Write(a, v) => Some((a.clone(), v.clone())),
            MvRegOp::Read(_) => None,
        }
    }

    fn apply_arg(&self, state: &mut MvState<E>, arg: &(E, VersionVec)) {
        state.pairs.retain(|(_, w)| !vv_lt(w, &arg.1));
        state.pairs.insert(arg.clone());
    }

    fn class(&self) -> EffectorClass {
        EffectorClass::UniquelyIdentified
    }

    fn arg_lt(&self, a: &(E, VersionVec), b: &(E, VersionVec)) -> bool {
        vv_lt(&a.1, &b.1)
    }

    fn concurrent_incomparable(&self) -> bool {
        true
    }

    fn p_pred(&self, state: &MvState<E>, arg: &(E, VersionVec)) -> bool {
        // P1: the argument's vector is not below any vector in the state.
        !state.pairs.iter().any(|(_, w)| vv_lt(&arg.1, w))
    }
}

impl<E: Elem + From<u8>> SmallScope for MvRegister<E> {
    type Call = MvCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // One distinct value per op index plus one shared value, so concurrent
    // writes of *equal* values (distinguished only by version vectors) are
    // reachable.
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<MvCall<E>> {
        vec![
            MvCall::Write(E::from(10 + op_index as u8)),
            MvCall::Write(E::from(7)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::schedule::{drive_state_based, ScheduleConfig};
    use ral_runtime::state_based::StateCluster;
    use ral_spec::register::MvRegSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn dominating_write_overwrites() {
        let mut c = StateCluster::new(MvRegister::<char>::new(), 2);
        c.invoke(r(0), MvCall::Write('a'));
        c.sync_all();
        c.invoke(r(1), MvCall::Write('b'));
        c.sync_all();
        let read = c.invoke(r(0), MvCall::Read).unwrap();
        assert_eq!(read.ret, MvRet::Values(BTreeSet::from(['b'])));
    }

    #[test]
    fn concurrent_writes_coexist_until_overwritten() {
        let mut c = StateCluster::new(MvRegister::<char>::new(), 2);
        c.invoke(r(0), MvCall::Write('a'));
        c.invoke(r(1), MvCall::Write('b'));
        c.sync_all();
        assert!(c.converged());
        let read = c.invoke(r(0), MvCall::Read).unwrap();
        assert_eq!(read.ret, MvRet::Values(BTreeSet::from(['a', 'b'])));
        // A new write dominates both.
        c.invoke(r(0), MvCall::Write('c'));
        c.sync_all();
        let read = c.invoke(r(1), MvCall::Read).unwrap();
        assert_eq!(read.ret, MvRet::Values(BTreeSet::from(['c'])));
    }

    #[test]
    fn stale_message_does_not_resurrect() {
        let mut c = StateCluster::new(MvRegister::<char>::new(), 2);
        c.invoke(r(0), MvCall::Write('a'));
        let stale = c.send(r(0));
        c.sync_all();
        c.invoke(r(1), MvCall::Write('b'));
        c.sync_all();
        // Replay the stale snapshot: 'a' is dominated and stays gone.
        c.apply(r(0), stale);
        let read = c.invoke(r(0), MvCall::Read).unwrap();
        assert_eq!(read.ret, MvRet::Values(BTreeSet::from(['b'])));
    }

    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        for seed in 0..20 {
            let mut c = StateCluster::new(MvRegister::<u8>::new(), 3);
            drive_state_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(if rng.random_bool(0.55) {
                    MvCall::Write(rng.random_range(0..5))
                } else {
                    MvCall::Read
                })
            });
            assert!(c.converged());
            assert!(c.check_lattice_laws());
            let h = c.into_history();
            ra_check(&h, &Identity, &MvRegSpec::new(), MvRegister::<u8>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn delta_laws_hold() {
        use ral_runtime::delta::DeltaOutcome;
        let c = MvRegister::<char>::new();
        let pre = MvState {
            width: 2,
            pairs: BTreeSet::from([('a', vec![1, 0]), ('b', vec![0, 1])]),
        };
        let mut ctx = GenCtx::new(r(0), 0, 0);
        let DeltaOutcome::Done { next, delta, .. } =
            c.invoke_delta(&pre, &MvCall::Write('c'), &mut ctx)
        else {
            panic!("write never refuses")
        };
        let delta = delta.expect("write is a mutation");
        // The write's delta is the singleton dominating pair…
        assert_eq!(delta.pairs, BTreeSet::from([('c', vec![2, 1])]));
        // …and joining it anywhere prunes what it overwrote.
        assert_eq!(c.join(&pre, &delta), next);
        assert_eq!(next.pairs, BTreeSet::from([('c', vec![2, 1])]));
        let other = MvState {
            width: 2,
            pairs: BTreeSet::from([('d', vec![0, 3])]),
        };
        let joined = c.join(&other, &delta);
        assert_eq!(joined.values(), BTreeSet::from(['c', 'd']));
        // Resync law and idempotence.
        assert_eq!(c.join(&other, &c.full_delta(&pre)), c.merge(&other, &pre));
        assert_eq!(c.join(&joined, &delta), joined);
        assert!(c.delta_bytes(&delta) < c.state_bytes(&pre));
    }

    #[test]
    fn local_effector_matches_write() {
        let crdt = MvRegister::<char>::new();
        let mut s = crdt.initial(2);
        crdt.apply_arg(&mut s, &('a', vec![1, 0]));
        crdt.apply_arg(&mut s, &('b', vec![0, 1]));
        assert_eq!(s.values(), BTreeSet::from(['a', 'b']));
        crdt.apply_arg(&mut s, &('c', vec![2, 2]));
        assert_eq!(s.values(), BTreeSet::from(['c']));
        assert!(crdt.p_pred(&s, &('d', vec![3, 2])));
        assert!(!crdt.p_pred(&s, &('d', vec![1, 1])));
    }
}
