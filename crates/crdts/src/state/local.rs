//! "Local" effectors — the proof artifact of Appendix D.
//!
//! State-based replicas exchange whole states, so the operation-based proof
//! story (a linearization of effectors reproduces every replica state) does
//! not apply directly. Appendix D recovers it by associating to each update
//! a *local effector* with an argument `arg(ℓ)`, a universal application
//! function `apply(σ, arg(ℓ))`, and a classification of the data type by how
//! arguments interact with `merge`:
//!
//! * **uniquely identified** (Appendix D.3) — arguments are unique and carry
//!   a partial order consistent with visibility (MV-Register,
//!   LWW-Element-Set);
//! * **cumulative** (Appendix D.4) — arguments coincide exactly for
//!   same-method/same-origin repetitions (PN-Counter);
//! * **idempotent** (Appendix D.5) — re-applying an argument is a no-op
//!   (2P-Set).
//!
//! The properties Prop1–Prop6 over `apply`/`merge`/`P1`/`P2` are checked by
//! `ral-verify`.

use ral_core::ids::ReplicaId;
use ral_core::timestamp::Ts;
use ral_runtime::state_based::StateBased;
use std::fmt::Debug;

/// The three classes of Appendix D.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EffectorClass {
    /// Arguments are globally unique and partially ordered consistently with
    /// visibility (Appendix D.3, proved via `P1` and Prop1–Prop5).
    UniquelyIdentified,
    /// Arguments repeat exactly when method, argument, result, *and origin
    /// replica* coincide (Appendix D.4, via `P2` and Prop1'–Prop3').
    Cumulative,
    /// Re-applying the same argument is a no-op (Appendix D.5, additionally
    /// Prop6).
    Idempotent,
}

/// The local-effector interface a state-based CRDT exposes for the
/// Appendix D proofs.
pub trait LocalEffector: StateBased {
    /// Argument domain of the local effectors.
    type Arg: Clone + Debug + PartialEq;

    /// The argument `arg(ℓ)` of an operation's local effector; `None` for
    /// queries. `ts` is the timestamp the history recorded for the
    /// operation (needed by timestamp-tagged payloads like the
    /// LWW-Element-Set).
    fn effector_arg(
        &self,
        label: &Self::Label,
        origin: ReplicaId,
        ts: Option<Ts>,
    ) -> Option<Self::Arg>;

    /// The universal local effector: `apply(σ, arg(ℓ))`.
    fn apply_arg(&self, state: &mut Self::State, arg: &Self::Arg);

    /// Which class the data type falls into.
    fn class(&self) -> EffectorClass;

    /// The partial order on arguments (uniquely-identified class only).
    fn arg_lt(&self, _a: &Self::Arg, _b: &Self::Arg) -> bool {
        false
    }

    /// Whether concurrent operations are guaranteed *incomparable*
    /// arguments (Lemma E.2 — true for the MV-Register's version vectors,
    /// false for totally ordered timestamps).
    fn concurrent_incomparable(&self) -> bool {
        false
    }

    /// The predicate `P1` (uniquely-identified) or `P2` (cumulative /
    /// idempotent): roughly, "no effector with this (or a larger) argument
    /// contributed to `state` yet".
    fn p_pred(&self, state: &Self::State, arg: &Self::Arg) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_distinct() {
        assert_ne!(EffectorClass::UniquelyIdentified, EffectorClass::Cumulative);
        assert_ne!(EffectorClass::Cumulative, EffectorClass::Idempotent);
    }
}
