//! The state-based Two-Phase Set (Listing 10, Appendix E.4).
//!
//! Payload `(A, R)`: added set and removed ("tombstone") set; an element is
//! present iff `a ∈ A \ R`. A value may be added and removed at most once
//! (the paper assumes clients guarantee this; the generator enforces it as
//! a precondition). Local effectors are **idempotent** (Appendix D.5); the
//! type admits **execution-order** linearizations w.r.t. `Spec(Set)`
//! (Figure 12).

use crate::state::local::{EffectorClass, LocalEffector};
use ral_core::elem::Elem;
use ral_core::ids::ReplicaId;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::delta::DeltaCrdt;
use ral_runtime::gen::GenCtx;
use ral_runtime::state_based::{StateBased, StateOutcome};
use ral_spec::set::SetOp;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::mem::size_of;

/// Method invocations of the 2P-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoPCall<E> {
    /// `add(a)`.
    Add(E),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Replica payload: added and removed sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TwoPState<E> {
    /// Elements ever added.
    pub added: BTreeSet<E>,
    /// Elements removed (tombstones).
    pub removed: BTreeSet<E>,
}

impl<E: Elem> TwoPState<E> {
    /// The visible set `A \ R`.
    pub fn view(&self) -> BTreeSet<E> {
        self.added.difference(&self.removed).cloned().collect()
    }
}

/// Local-effector argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoPArg<E> {
    /// Insert into `A`.
    Add(E),
    /// Insert into `R`.
    Remove(E),
}

/// The state-based 2P-Set CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::state::two_phase_set::{TwoPCall, TwoPhaseSet};
/// use ral_runtime::state_based::StateCluster;
/// use std::collections::BTreeSet;
///
/// let mut cluster = StateCluster::new(TwoPhaseSet::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), TwoPCall::Add('a'));
/// cluster.sync_all();
/// cluster.invoke(ReplicaId(1), TwoPCall::Remove('a'));
/// cluster.sync_all();
/// let read = cluster.invoke(ReplicaId(0), TwoPCall::Read).unwrap();
/// assert_eq!(read.ret, Some(BTreeSet::new()));
/// ```
pub struct TwoPhaseSet<E> {
    _elem: PhantomData<E>,
}

impl<E> TwoPhaseSet<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// Creates the 2P-Set descriptor.
    pub fn new() -> Self {
        TwoPhaseSet { _elem: PhantomData }
    }
}

impl<E: Elem> TwoPhaseSet<E> {
    /// The refinement mapping `abs` onto `Spec(Set)` states.
    pub fn abs(state: &TwoPState<E>) -> BTreeSet<E> {
        state.view()
    }
}

impl<E> Clone for TwoPhaseSet<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for TwoPhaseSet<E> {}

impl<E> Default for TwoPhaseSet<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for TwoPhaseSet<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TwoPhaseSet")
    }
}

impl<E: Elem> StateBased for TwoPhaseSet<E> {
    type State = TwoPState<E>;
    type Call = TwoPCall<E>;
    type Ret = Option<BTreeSet<E>>;
    type Label = SetOp<E>;

    fn initial(&self, _n_replicas: usize) -> TwoPState<E> {
        TwoPState {
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    fn invoke(
        &self,
        state: &TwoPState<E>,
        call: &TwoPCall<E>,
        _ctx: &mut GenCtx,
    ) -> StateOutcome<Option<BTreeSet<E>>, TwoPState<E>> {
        match call {
            TwoPCall::Add(a) => {
                // Client obligation: a value is added at most once, and never
                // after its removal.
                if state.added.contains(a) || state.removed.contains(a) {
                    return StateOutcome::Refused;
                }
                let mut next = state.clone();
                next.added.insert(a.clone());
                StateOutcome::Done { ret: None, next }
            }
            TwoPCall::Remove(a) => {
                // Precondition of Listing 10: a ∈ A ∧ a ∉ R.
                if !state.added.contains(a) || state.removed.contains(a) {
                    return StateOutcome::Refused;
                }
                let mut next = state.clone();
                next.removed.insert(a.clone());
                StateOutcome::Done { ret: None, next }
            }
            TwoPCall::Read => StateOutcome::Done {
                ret: Some(state.view()),
                next: state.clone(),
            },
        }
    }

    fn merge(&self, a: &TwoPState<E>, b: &TwoPState<E>) -> TwoPState<E> {
        TwoPState {
            added: a.added.union(&b.added).cloned().collect(),
            removed: a.removed.union(&b.removed).cloned().collect(),
        }
    }

    fn leq(&self, a: &TwoPState<E>, b: &TwoPState<E>) -> bool {
        a.added.is_subset(&b.added) && a.removed.is_subset(&b.removed)
    }

    fn label(&self, call: &TwoPCall<E>, ret: &Option<BTreeSet<E>>) -> SetOp<E> {
        match call {
            TwoPCall::Add(a) => SetOp::Add(a.clone()),
            TwoPCall::Remove(a) => SetOp::Remove(a.clone()),
            TwoPCall::Read => SetOp::Read(ret.clone().expect("read returns the view")),
        }
    }
}

/// Deltas are state fragments (`merge` is plain union, so any sub-state is
/// a join decomposition): a mutation's delta holds just the added element
/// or the new tombstone.
impl<E: Elem> DeltaCrdt for TwoPhaseSet<E> {
    type Delta = TwoPState<E>;

    fn diff(&self, pre: &TwoPState<E>, post: &TwoPState<E>) -> TwoPState<E> {
        TwoPState {
            added: post.added.difference(&pre.added).cloned().collect(),
            removed: post.removed.difference(&pre.removed).cloned().collect(),
        }
    }

    fn join(&self, state: &TwoPState<E>, delta: &TwoPState<E>) -> TwoPState<E> {
        self.merge(state, delta)
    }

    fn join_deltas(&self, a: &TwoPState<E>, b: &TwoPState<E>) -> TwoPState<E> {
        self.merge(a, b)
    }

    fn full_delta(&self, state: &TwoPState<E>) -> TwoPState<E> {
        state.clone()
    }

    fn delta_bytes(&self, delta: &TwoPState<E>) -> usize {
        self.state_bytes(delta)
    }

    fn state_bytes(&self, state: &TwoPState<E>) -> usize {
        // Two length headers plus the raw elements of both sets.
        16 + size_of::<E>() * (state.added.len() + state.removed.len())
    }
}

impl<E: Elem> LocalEffector for TwoPhaseSet<E> {
    type Arg = TwoPArg<E>;

    fn effector_arg(
        &self,
        label: &SetOp<E>,
        _origin: ReplicaId,
        _ts: Option<ral_core::timestamp::Ts>,
    ) -> Option<TwoPArg<E>> {
        match label {
            SetOp::Add(a) => Some(TwoPArg::Add(a.clone())),
            SetOp::Remove(a) => Some(TwoPArg::Remove(a.clone())),
            SetOp::Read(_) => None,
        }
    }

    fn apply_arg(&self, state: &mut TwoPState<E>, arg: &TwoPArg<E>) {
        match arg {
            TwoPArg::Add(a) => {
                state.added.insert(a.clone());
            }
            TwoPArg::Remove(a) => {
                state.removed.insert(a.clone());
            }
        }
    }

    fn class(&self) -> EffectorClass {
        EffectorClass::Idempotent
    }

    fn p_pred(&self, state: &TwoPState<E>, arg: &TwoPArg<E>) -> bool {
        match arg {
            TwoPArg::Add(a) => !state.added.contains(a),
            TwoPArg::Remove(a) => !state.removed.contains(a),
        }
    }
}

impl<E: Elem + From<u8>> SmallScope for TwoPhaseSet<E> {
    type Call = TwoPCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Client obligation (Listing 10): a value is added at most once, so op
    // `i` adds the fresh value `i + 1`; removals target earlier values and
    // are refused wherever the add is not yet visible.
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<TwoPCall<E>> {
        let mut calls = vec![TwoPCall::Add(E::from(op_index as u8 + 1))];
        for j in 1..=op_index {
            calls.push(TwoPCall::Remove(E::from(j as u8)));
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::schedule::{drive_state_based, ScheduleConfig};
    use ral_runtime::state_based::StateCluster;
    use ral_spec::set::SetSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn remove_wins_regardless_of_order() {
        // add at r0, remove at r0; r1 receives the states in any order.
        let mut c = StateCluster::new(TwoPhaseSet::<char>::new(), 2);
        c.invoke(r(0), TwoPCall::Add('a'));
        let m_add = c.send(r(0));
        c.invoke(r(0), TwoPCall::Remove('a'));
        let m_rem = c.send(r(0));
        c.apply(r(1), m_rem);
        c.apply(r(1), m_add);
        let read = c.invoke(r(1), TwoPCall::Read).unwrap();
        assert_eq!(read.ret, Some(BTreeSet::new()));
    }

    #[test]
    fn re_add_is_refused() {
        let mut c = StateCluster::new(TwoPhaseSet::<char>::new(), 1);
        c.invoke(r(0), TwoPCall::Add('a')).unwrap();
        assert!(c.invoke(r(0), TwoPCall::Add('a')).is_none());
        c.invoke(r(0), TwoPCall::Remove('a')).unwrap();
        assert!(c.invoke(r(0), TwoPCall::Add('a')).is_none());
        assert!(c.invoke(r(0), TwoPCall::Remove('a')).is_none());
    }

    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        // The paper assumes clients never add the same value twice anywhere
        // in the execution (Listing 10); the workload mints fresh values.
        for seed in 0..20 {
            let mut c = StateCluster::new(TwoPhaseSet::<u16>::new(), 3);
            let mut next: u16 = 0;
            drive_state_based(
                &mut c,
                &ScheduleConfig::default(),
                seed,
                |rng, _, state| match rng.random_range(0..4u8) {
                    0 | 1 => {
                        next += 1;
                        Some(TwoPCall::Add(next))
                    }
                    2 => {
                        let view: Vec<u16> = state.view().into_iter().collect();
                        if view.is_empty() {
                            None
                        } else {
                            Some(TwoPCall::Remove(view[rng.random_range(0..view.len())]))
                        }
                    }
                    _ => Some(TwoPCall::Read),
                },
            );
            assert!(c.converged());
            assert!(c.check_lattice_laws());
            let h = c.into_history();
            ra_check(&h, &Identity, &SetSpec::new(), TwoPhaseSet::<u16>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn delta_laws_hold() {
        use ral_runtime::delta::DeltaOutcome;
        let c = TwoPhaseSet::<char>::new();
        let pre = TwoPState {
            added: BTreeSet::from(['a', 'b']),
            removed: BTreeSet::from(['b']),
        };
        let mut ctx = GenCtx::new(r(0), 0, 0);
        let DeltaOutcome::Done { next, delta, .. } =
            c.invoke_delta(&pre, &TwoPCall::Add('c'), &mut ctx)
        else {
            panic!("fresh add never refuses")
        };
        let delta = delta.expect("add is a mutation");
        assert_eq!(delta.added, BTreeSet::from(['c']));
        assert!(delta.removed.is_empty());
        // Decomposition, batching, resync.
        assert_eq!(c.join(&pre, &delta), next);
        let d2 = c.diff(&next, &{
            let mut s = next.clone();
            s.removed.insert('a');
            s
        });
        let other = TwoPState {
            added: BTreeSet::from(['z']),
            removed: BTreeSet::new(),
        };
        assert_eq!(
            c.join(&c.join(&other, &delta), &d2),
            c.join(&other, &c.join_deltas(&delta, &d2))
        );
        assert_eq!(c.join(&other, &c.full_delta(&pre)), c.merge(&other, &pre));
        assert!(c.delta_bytes(&delta) < c.state_bytes(&pre));
    }

    #[test]
    fn local_effectors_are_idempotent() {
        let c = TwoPhaseSet::<char>::new();
        let mut s = c.initial(1);
        c.apply_arg(&mut s, &TwoPArg::Add('a'));
        let once = s.clone();
        c.apply_arg(&mut s, &TwoPArg::Add('a'));
        assert_eq!(s, once);
    }
}
