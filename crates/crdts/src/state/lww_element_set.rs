//! The state-based Last-Writer-Wins Element Set (Listing 8, Appendix E.2).
//!
//! The payload keeps every `(element, timestamp)` pair ever added or
//! removed; an element is visible when some add-stamp beats every
//! remove-stamp for it. `merge` is plain union, so the lattice laws are
//! immediate. Conflict resolution is by timestamp, so the set admits
//! **timestamp-order** linearizations w.r.t. `Spec(Set)` (Figure 12); local
//! effectors are **uniquely identified** by their timestamps (Appendix D.3).

use crate::state::local::{EffectorClass, LocalEffector};
use ral_core::elem::Elem;
use ral_core::ids::ReplicaId;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_core::timestamp::Ts;
use ral_runtime::delta::DeltaCrdt;
use ral_runtime::gen::GenCtx;
use ral_runtime::state_based::{StateBased, StateOutcome};
use ral_spec::set::SetOp;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::mem::size_of;

/// Method invocations of the LWW-Element-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LwwSetCall<E> {
    /// `add(a)`.
    Add(E),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Replica payload: timestamped add and remove sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LwwSetState<E> {
    /// `(element, timestamp)` pairs recorded by `add`.
    pub added: BTreeSet<(E, Ts)>,
    /// `(element, timestamp)` pairs recorded by `remove`.
    pub removed: BTreeSet<(E, Ts)>,
}

impl<E: Elem> LwwSetState<E> {
    /// The visible set: elements with an add-stamp above all their
    /// remove-stamps.
    pub fn view(&self) -> BTreeSet<E> {
        self.added
            .iter()
            .filter(|(a, ts)| {
                self.removed
                    .iter()
                    .filter(|(b, _)| b == a)
                    .all(|(_, rts)| rts < ts)
            })
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// The largest timestamp counter stored anywhere in the payload.
    pub fn max_counter(&self) -> u64 {
        self.added
            .iter()
            .chain(self.removed.iter())
            .map(|(_, ts)| ts.counter)
            .max()
            .unwrap_or(0)
    }
}

/// Local-effector argument: the tagged pair plus its polarity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LwwSetArg<E> {
    /// Insert into the add set.
    Add(E, Ts),
    /// Insert into the remove set.
    Remove(E, Ts),
}

impl<E> LwwSetArg<E> {
    fn ts(&self) -> Ts {
        match self {
            LwwSetArg::Add(_, ts) | LwwSetArg::Remove(_, ts) => *ts,
        }
    }
}

/// The state-based LWW-Element-Set CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::state::lww_element_set::{LwwElementSet, LwwSetCall};
/// use ral_runtime::state_based::StateCluster;
/// use std::collections::BTreeSet;
///
/// let mut cluster = StateCluster::new(LwwElementSet::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), LwwSetCall::Add('a'));
/// cluster.sync_all();
/// cluster.invoke(ReplicaId(1), LwwSetCall::Remove('a'));
/// cluster.sync_all();
/// let read = cluster.invoke(ReplicaId(0), LwwSetCall::Read).unwrap();
/// assert_eq!(read.ret, Some(BTreeSet::new()));
/// ```
pub struct LwwElementSet<E> {
    _elem: PhantomData<E>,
}

impl<E> LwwElementSet<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::TimestampOrder;

    /// Creates the LWW-Element-Set descriptor.
    pub fn new() -> Self {
        LwwElementSet { _elem: PhantomData }
    }
}

impl<E: Elem> LwwElementSet<E> {
    /// The refinement mapping `abs` onto `Spec(Set)` states: the visible
    /// view.
    pub fn abs(state: &LwwSetState<E>) -> BTreeSet<E> {
        state.view()
    }

    /// All timestamps stored in the state (for `Refinement_ts`).
    pub fn state_timestamps(state: &LwwSetState<E>) -> Vec<Ts> {
        state
            .added
            .iter()
            .chain(state.removed.iter())
            .map(|(_, ts)| *ts)
            .collect()
    }
}

impl<E> Clone for LwwElementSet<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for LwwElementSet<E> {}

impl<E> Default for LwwElementSet<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for LwwElementSet<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LwwElementSet")
    }
}

impl<E: Elem> StateBased for LwwElementSet<E> {
    type State = LwwSetState<E>;
    type Call = LwwSetCall<E>;
    type Ret = Option<BTreeSet<E>>;
    type Label = SetOp<E>;

    fn initial(&self, _n_replicas: usize) -> LwwSetState<E> {
        LwwSetState {
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    fn invoke(
        &self,
        state: &LwwSetState<E>,
        call: &LwwSetCall<E>,
        ctx: &mut GenCtx,
    ) -> StateOutcome<Option<BTreeSet<E>>, LwwSetState<E>> {
        match call {
            LwwSetCall::Add(a) => {
                let mut next = state.clone();
                next.added.insert((a.clone(), ctx.fresh_ts()));
                StateOutcome::Done { ret: None, next }
            }
            LwwSetCall::Remove(a) => {
                let mut next = state.clone();
                next.removed.insert((a.clone(), ctx.fresh_ts()));
                StateOutcome::Done { ret: None, next }
            }
            LwwSetCall::Read => StateOutcome::Done {
                ret: Some(state.view()),
                next: state.clone(),
            },
        }
    }

    fn merge(&self, a: &LwwSetState<E>, b: &LwwSetState<E>) -> LwwSetState<E> {
        LwwSetState {
            added: a.added.union(&b.added).cloned().collect(),
            removed: a.removed.union(&b.removed).cloned().collect(),
        }
    }

    fn leq(&self, a: &LwwSetState<E>, b: &LwwSetState<E>) -> bool {
        a.added.is_subset(&b.added) && a.removed.is_subset(&b.removed)
    }

    fn label(&self, call: &LwwSetCall<E>, ret: &Option<BTreeSet<E>>) -> SetOp<E> {
        match call {
            LwwSetCall::Add(a) => SetOp::Add(a.clone()),
            LwwSetCall::Remove(a) => SetOp::Remove(a.clone()),
            LwwSetCall::Read => SetOp::Read(ret.clone().expect("read returns the view")),
        }
    }

    fn clock_floor(&self, state: &LwwSetState<E>) -> u64 {
        state.max_counter()
    }
}

/// Deltas are state fragments (`merge` is plain union of the timestamped
/// pair sets): a mutation's delta holds exactly the one freshly stamped
/// pair — the big win, since full snapshots carry every pair ever written.
impl<E: Elem> DeltaCrdt for LwwElementSet<E> {
    type Delta = LwwSetState<E>;

    fn diff(&self, pre: &LwwSetState<E>, post: &LwwSetState<E>) -> LwwSetState<E> {
        LwwSetState {
            added: post.added.difference(&pre.added).cloned().collect(),
            removed: post.removed.difference(&pre.removed).cloned().collect(),
        }
    }

    fn join(&self, state: &LwwSetState<E>, delta: &LwwSetState<E>) -> LwwSetState<E> {
        self.merge(state, delta)
    }

    fn join_deltas(&self, a: &LwwSetState<E>, b: &LwwSetState<E>) -> LwwSetState<E> {
        self.merge(a, b)
    }

    fn full_delta(&self, state: &LwwSetState<E>) -> LwwSetState<E> {
        state.clone()
    }

    fn delta_bytes(&self, delta: &LwwSetState<E>) -> usize {
        self.state_bytes(delta)
    }

    fn state_bytes(&self, state: &LwwSetState<E>) -> usize {
        // Two length headers plus (element + 12-byte Lamport timestamp)
        // per pair in either set.
        16 + (size_of::<E>() + 12) * (state.added.len() + state.removed.len())
    }
}

impl<E: Elem> LocalEffector for LwwElementSet<E> {
    type Arg = LwwSetArg<E>;

    fn effector_arg(
        &self,
        label: &SetOp<E>,
        _origin: ReplicaId,
        ts: Option<Ts>,
    ) -> Option<LwwSetArg<E>> {
        match label {
            SetOp::Add(a) => Some(LwwSetArg::Add(
                a.clone(),
                ts.expect("updates carry timestamps"),
            )),
            SetOp::Remove(a) => Some(LwwSetArg::Remove(
                a.clone(),
                ts.expect("updates carry timestamps"),
            )),
            SetOp::Read(_) => None,
        }
    }

    fn apply_arg(&self, state: &mut LwwSetState<E>, arg: &LwwSetArg<E>) {
        match arg {
            LwwSetArg::Add(a, ts) => {
                state.added.insert((a.clone(), *ts));
            }
            LwwSetArg::Remove(a, ts) => {
                state.removed.insert((a.clone(), *ts));
            }
        }
    }

    fn class(&self) -> EffectorClass {
        EffectorClass::UniquelyIdentified
    }

    fn arg_lt(&self, a: &LwwSetArg<E>, b: &LwwSetArg<E>) -> bool {
        a.ts() < b.ts()
    }

    fn p_pred(&self, state: &LwwSetState<E>, arg: &LwwSetArg<E>) -> bool {
        // P1: the argument's timestamp is not below any stored timestamp.
        let ts = arg.ts();
        !Self::state_timestamps(state).iter().any(|t| ts < *t)
    }
}

impl<E: Elem + From<u8>> SmallScope for LwwElementSet<E> {
    type Call = LwwSetCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Two values cover both the same-element add/remove timestamp race and
    // independent elements.
    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<LwwSetCall<E>> {
        vec![
            LwwSetCall::Add(E::from(1)),
            LwwSetCall::Add(E::from(2)),
            LwwSetCall::Remove(E::from(1)),
            LwwSetCall::Remove(E::from(2)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::schedule::{drive_state_based, ScheduleConfig};
    use ral_runtime::state_based::StateCluster;
    use ral_spec::set::SetSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn later_add_beats_earlier_remove() {
        let mut c = StateCluster::new(LwwElementSet::<char>::new(), 2);
        c.invoke(r(0), LwwSetCall::Remove('a'));
        c.sync_all();
        c.invoke(r(1), LwwSetCall::Add('a'));
        c.sync_all();
        let read = c.invoke(r(0), LwwSetCall::Read).unwrap();
        assert_eq!(read.ret, Some(BTreeSet::from(['a'])));
    }

    #[test]
    fn later_remove_wins() {
        let mut c = StateCluster::new(LwwElementSet::<char>::new(), 2);
        c.invoke(r(0), LwwSetCall::Add('a'));
        c.sync_all();
        c.invoke(r(1), LwwSetCall::Remove('a'));
        c.sync_all();
        assert!(c.converged());
        let read = c.invoke(r(0), LwwSetCall::Read).unwrap();
        assert_eq!(read.ret, Some(BTreeSet::new()));
    }

    #[test]
    fn concurrent_add_remove_resolved_by_timestamp_everywhere() {
        let mut c = StateCluster::new(LwwElementSet::<char>::new(), 2);
        // Both replicas act concurrently; replica order breaks the tie
        // between equal counters, so r1's remove (1@r1) beats r0's add
        // (1@r0).
        c.invoke(r(0), LwwSetCall::Add('a'));
        c.invoke(r(1), LwwSetCall::Remove('a'));
        c.sync_all();
        assert!(c.converged());
        let read = c.invoke(r(0), LwwSetCall::Read).unwrap();
        assert_eq!(read.ret, Some(BTreeSet::new()));
    }

    #[test]
    fn random_histories_are_ra_linearizable_to() {
        for seed in 0..20 {
            let mut c = StateCluster::new(LwwElementSet::<u8>::new(), 3);
            drive_state_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(match rng.random_range(0..4u8) {
                    0 | 1 => LwwSetCall::Add(rng.random_range(0..4)),
                    2 => LwwSetCall::Remove(rng.random_range(0..4)),
                    _ => LwwSetCall::Read,
                })
            });
            assert!(c.converged());
            assert!(c.check_lattice_laws());
            let h = c.into_history();
            ra_check(
                &h,
                &Identity,
                &SetSpec::new(),
                LwwElementSet::<u8>::STRATEGY,
            )
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn delta_laws_hold() {
        use ral_runtime::delta::DeltaOutcome;
        let c = LwwElementSet::<char>::new();
        let mut pre = LwwSetState::<char>::default();
        pre.added.insert(('a', Ts::new(1, r(0))));
        pre.removed.insert(('b', Ts::new(2, r(1))));
        let mut ctx = GenCtx::new(r(0), 2, 0);
        let DeltaOutcome::Done { next, delta, .. } =
            c.invoke_delta(&pre, &LwwSetCall::Add('c'), &mut ctx)
        else {
            panic!("add never refuses")
        };
        let delta = delta.expect("add is a mutation");
        // The delta is exactly the one freshly stamped pair.
        assert_eq!(delta.added, BTreeSet::from([('c', Ts::new(3, r(0)))]));
        assert!(delta.removed.is_empty());
        assert_eq!(c.join(&pre, &delta), next);
        // Batching and resync.
        let mut post2 = next.clone();
        post2.removed.insert(('a', Ts::new(4, r(0))));
        let d2 = c.diff(&next, &post2);
        let other = c.initial(2);
        assert_eq!(
            c.join(&c.join(&other, &delta), &d2),
            c.join(&other, &c.join_deltas(&delta, &d2))
        );
        assert_eq!(c.join(&other, &c.full_delta(&pre)), c.merge(&other, &pre));
        // One pair beats the whole history on the wire.
        assert!(c.delta_bytes(&delta) < c.state_bytes(&pre));
    }

    #[test]
    fn view_requires_add_above_all_removes() {
        let mut s = LwwSetState::<char>::default();
        s.added.insert(('a', Ts::new(1, r(0))));
        s.removed.insert(('a', Ts::new(2, r(0))));
        assert_eq!(s.view(), BTreeSet::new());
        s.added.insert(('a', Ts::new(3, r(1))));
        assert_eq!(s.view(), BTreeSet::from(['a']));
        assert_eq!(s.max_counter(), 3);
    }
}
