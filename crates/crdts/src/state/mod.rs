//! State-based CRDT implementations (Appendices D and E).
//!
//! Every type here implements both [`ral_runtime::StateBased`] (full-state
//! merge propagation, Appendix D.2) and [`ral_runtime::DeltaCrdt`]
//! (delta-returning mutators for the bandwidth-proportional delta
//! transport), plus the [`local::LocalEffector`] decomposition the
//! Prop1–Prop6 obligations reason about.

pub mod local;
pub mod lww_element_set;
pub mod mv_register;
pub mod pn_counter;
pub mod two_phase_set;
