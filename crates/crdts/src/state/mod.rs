//! State-based CRDT implementations (Appendices D and E).

pub mod local;
pub mod lww_element_set;
pub mod mv_register;
pub mod pn_counter;
pub mod two_phase_set;
