//! Operation-based CRDT implementations (Section 2 and Appendix B).

pub mod counter;
pub mod lww_register;
pub mod or_set;
pub mod rga;
pub mod rga_addat;
pub mod wooki;
