//! RGA with an index-based `addAt(a, k)` interface (Appendix C).
//!
//! Both variants run on the RGA timestamp tree: the generator translates the
//! index `k` into an `addAfter` anchor against its *local* visible list.
//!
//! * [`RgaAddAtSilent`] (Appendix C.1) returns nothing from mutators; its
//!   histories are checked against `Spec(addAt1)`/`Spec(addAt2)`, which
//!   Lemma C.1 refutes (reproduced from Figure 14 in
//!   `tests/fig14_addat.rs`).
//! * [`RgaAddAt`] (Appendix C.4) returns the updated local list from every
//!   mutator; Lemma C.2 shows it RA-linearizable w.r.t. the "local view"
//!   specification `Spec(addAt3)` under timestamp order.

use crate::op::rga::{Rga, RgaCall, RgaEff, RgaState};
use ral_core::elem::Elem;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::addat::{AddAtOp, AddAtRetOp};
use ral_spec::rga::Anchor;
use std::marker::PhantomData;

/// Method invocations of the `addAt` interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AddAtCall<E> {
    /// `addAt(a, k)` — insert `a` at index `k` of the local visible list
    /// (clamped to the tail).
    AddAt(E, usize),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Translates an index into the `addAfter` anchor the generator uses
/// (Appendix C.1/C.4): `◦` for an empty view or `k = 0`, the `k-1`-st
/// visible element if the view is long enough, the last element otherwise.
fn anchor_for_index<E: Elem>(visible: &[E], k: usize) -> Anchor<E> {
    if visible.is_empty() || k == 0 {
        Anchor::Head
    } else if k <= visible.len() {
        Anchor::Elem(visible[k - 1].clone())
    } else {
        Anchor::Elem(visible[visible.len() - 1].clone())
    }
}

fn add_at_generator<E: Elem>(
    state: &RgaState<E>,
    a: &E,
    k: usize,
    ctx: &mut GenCtx,
) -> Option<(RgaEff<E>, Vec<E>)> {
    if state.contains(a) {
        return None; // value must be fresh
    }
    let visible = state.visible();
    let parent = anchor_for_index(&visible, k);
    let eff = RgaEff::Insert {
        parent,
        ts: ctx.fresh_ts(),
        elem: a.clone(),
    };
    // The mutator's return value is the view *after* applying the effector
    // locally; simulate it on a copy.
    let mut next = state.clone();
    Rga::new().apply(&mut next, &eff);
    Some((eff, next.visible()))
}

fn remove_generator<E: Elem>(state: &RgaState<E>, a: &E) -> Option<(RgaEff<E>, Vec<E>)> {
    if !state.contains(a) || state.is_tombstoned(a) {
        return None;
    }
    let eff = RgaEff::Tomb(a.clone());
    let view: Vec<E> = state.visible().into_iter().filter(|x| x != a).collect();
    Some((eff, view))
}

/// The returning `addAt` variant (Appendix C.4): mutators return the updated
/// local list.
pub struct RgaAddAt<E> {
    _elem: PhantomData<E>,
}

impl<E> RgaAddAt<E> {
    /// The linearization class established by Lemma C.2.
    pub const STRATEGY: Strategy = Strategy::TimestampOrder;

    /// Creates the descriptor.
    pub fn new() -> Self {
        RgaAddAt { _elem: PhantomData }
    }
}

impl<E> Clone for RgaAddAt<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for RgaAddAt<E> {}

impl<E> Default for RgaAddAt<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for RgaAddAt<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RgaAddAt")
    }
}

impl<E: Elem> OpBased for RgaAddAt<E> {
    type State = RgaState<E>;
    type Call = AddAtCall<E>;
    type Ret = Vec<E>;
    type Eff = RgaEff<E>;
    type Label = AddAtRetOp<E>;

    fn initial(&self) -> RgaState<E> {
        Rga::new().initial()
    }

    fn generator(
        &self,
        state: &RgaState<E>,
        call: &AddAtCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Vec<E>, RgaEff<E>> {
        match call {
            AddAtCall::AddAt(a, k) => match add_at_generator(state, a, *k, ctx) {
                Some((eff, view)) => GenOutcome::update(view, eff),
                None => GenOutcome::Refused,
            },
            AddAtCall::Remove(a) => match remove_generator(state, a) {
                Some((eff, view)) => GenOutcome::update(view, eff),
                None => GenOutcome::Refused,
            },
            AddAtCall::Read => GenOutcome::query(state.visible()),
        }
    }

    fn apply(&self, state: &mut RgaState<E>, eff: &RgaEff<E>) {
        Rga::new().apply(state, eff);
    }

    fn label(&self, call: &AddAtCall<E>, ret: &Vec<E>) -> AddAtRetOp<E> {
        match call {
            AddAtCall::AddAt(a, k) => AddAtRetOp::AddAt(a.clone(), *k, ret.clone()),
            AddAtCall::Remove(a) => AddAtRetOp::Remove(a.clone(), ret.clone()),
            AddAtCall::Read => AddAtRetOp::Read(ret.clone()),
        }
    }
}

/// The return-free `addAt` variant (Appendix C.1), whose histories are the
/// subject of Lemma C.1 (not RA-linearizable w.r.t. `Spec(addAt1)` or
/// `Spec(addAt2)`).
pub struct RgaAddAtSilent<E> {
    _elem: PhantomData<E>,
}

impl<E> RgaAddAtSilent<E> {
    /// Creates the descriptor.
    pub fn new() -> Self {
        RgaAddAtSilent { _elem: PhantomData }
    }
}

impl<E> Clone for RgaAddAtSilent<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for RgaAddAtSilent<E> {}

impl<E> Default for RgaAddAtSilent<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for RgaAddAtSilent<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RgaAddAtSilent")
    }
}

impl<E: Elem> OpBased for RgaAddAtSilent<E> {
    type State = RgaState<E>;
    type Call = AddAtCall<E>;
    type Ret = Option<Vec<E>>;
    type Eff = RgaEff<E>;
    type Label = AddAtOp<E>;

    fn initial(&self) -> RgaState<E> {
        Rga::new().initial()
    }

    fn generator(
        &self,
        state: &RgaState<E>,
        call: &AddAtCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Option<Vec<E>>, RgaEff<E>> {
        match call {
            AddAtCall::AddAt(a, k) => match add_at_generator(state, a, *k, ctx) {
                Some((eff, _)) => GenOutcome::update(None, eff),
                None => GenOutcome::Refused,
            },
            AddAtCall::Remove(a) => match remove_generator(state, a) {
                Some((eff, _)) => GenOutcome::update(None, eff),
                None => GenOutcome::Refused,
            },
            AddAtCall::Read => GenOutcome::query(Some(state.visible())),
        }
    }

    fn apply(&self, state: &mut RgaState<E>, eff: &RgaEff<E>) {
        Rga::new().apply(state, eff);
    }

    fn label(&self, call: &AddAtCall<E>, ret: &Option<Vec<E>>) -> AddAtOp<E> {
        match call {
            AddAtCall::AddAt(a, k) => AddAtOp::AddAt(a.clone(), *k),
            AddAtCall::Remove(a) => AddAtOp::Remove(a.clone()),
            AddAtCall::Read => AddAtOp::Read(ret.clone().expect("read returns the list")),
        }
    }
}

/// Re-export of the underlying `addAfter` call type, handy when mixing both
/// interfaces in tests.
pub type UnderlyingRgaCall<E> = RgaCall<E>;

impl<E: Elem + From<u8>> SmallScope for RgaAddAt<E> {
    type Call = AddAtCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Same freshness discipline as [`Rga`]; indices `0..=op_index` cover
    // every position of the longest possible local view (out-of-range
    // indices clamp to the tail, so larger ones add nothing).
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<AddAtCall<E>> {
        let fresh = E::from(op_index as u8 + 1);
        let mut calls: Vec<AddAtCall<E>> = (0..=op_index)
            .map(|at| AddAtCall::AddAt(fresh.clone(), at))
            .collect();
        for j in 1..=op_index {
            calls.push(AddAtCall::Remove(E::from(j as u8)));
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::op_based::Cluster;
    use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
    use ral_spec::addat::AddAt3Spec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn anchor_selection_matches_appendix_c() {
        let empty: Vec<char> = vec![];
        assert_eq!(anchor_for_index(&empty, 3), Anchor::Head);
        let v = vec!['a', 'b'];
        assert_eq!(anchor_for_index(&v, 0), Anchor::<char>::Head);
        assert_eq!(anchor_for_index(&v, 1), Anchor::Elem('a'));
        assert_eq!(anchor_for_index(&v, 2), Anchor::Elem('b'));
        assert_eq!(anchor_for_index(&v, 9), Anchor::Elem('b'));
    }

    #[test]
    fn add_at_returns_updated_view() {
        let mut c = Cluster::new(RgaAddAt::<char>::new(), 1);
        let a = c.invoke(r(0), AddAtCall::AddAt('a', 0)).unwrap();
        assert_eq!(a.ret, vec!['a']);
        let b = c.invoke(r(0), AddAtCall::AddAt('b', 1)).unwrap();
        assert_eq!(b.ret, vec!['a', 'b']);
        let x = c.invoke(r(0), AddAtCall::AddAt('x', 1)).unwrap();
        assert_eq!(x.ret, vec!['a', 'x', 'b']);
        let rem = c.invoke(r(0), AddAtCall::Remove('a')).unwrap();
        assert_eq!(rem.ret, vec!['x', 'b']);
    }

    #[test]
    fn silent_variant_converges() {
        let mut c = Cluster::new(RgaAddAtSilent::<char>::new(), 2);
        c.invoke(r(0), AddAtCall::AddAt('a', 0)).unwrap();
        c.invoke(r(1), AddAtCall::AddAt('b', 0)).unwrap();
        c.deliver_all();
        assert!(c.converged());
    }

    #[test]
    fn random_histories_are_ra_linearizable_addat3() {
        // Lemma C.2: the returning variant is RA-linearizable w.r.t.
        // Spec(addAt3) under timestamp order.
        for seed in 0..20 {
            let mut c = Cluster::new(RgaAddAt::<u16>::new(), 3);
            let mut next: u16 = 0;
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, state| {
                let roll: u8 = rng.random_range(0..10);
                if roll < 5 {
                    next += 1;
                    Some(AddAtCall::AddAt(next, rng.random_range(0..5)))
                } else if roll < 7 {
                    let visible = state.visible();
                    if visible.is_empty() {
                        None
                    } else {
                        Some(AddAtCall::Remove(
                            visible[rng.random_range(0..visible.len())],
                        ))
                    }
                } else {
                    Some(AddAtCall::Read)
                }
            });
            assert!(c.converged(), "seed {seed} did not converge");
            let h = c.into_history();
            ra_check(&h, &Identity, &AddAt3Spec::new(), RgaAddAt::<u16>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }
}
