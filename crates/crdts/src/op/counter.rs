//! The operation-based Counter (Listing 3, Appendix B.1).
//!
//! `inc`/`dec` are plain updates (their effectors ignore the origin state)
//! and `read` is a query, so the counter needs no query-update rewriting and
//! admits **execution-order** linearizations (Figure 12).

use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::counter::CounterOp;

/// Method invocations of the counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterCall {
    /// `inc()`.
    Inc,
    /// `dec()`.
    Dec,
    /// `read()`.
    Read,
}

/// Effector payloads of the counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterEff {
    /// Add one.
    Inc,
    /// Subtract one.
    Dec,
}

/// The operation-based counter CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::op::counter::{CounterCall, OpCounter};
/// use ral_runtime::op_based::Cluster;
///
/// let mut cluster = Cluster::new(OpCounter, 2);
/// cluster.invoke(ReplicaId(0), CounterCall::Inc);
/// cluster.invoke(ReplicaId(1), CounterCall::Dec);
/// cluster.deliver_all();
/// let read = cluster.invoke(ReplicaId(0), CounterCall::Read).unwrap();
/// assert_eq!(read.ret, Some(0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounter;

impl OpCounter {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// The refinement mapping `abs` onto `Spec(Counter)` states.
    pub fn abs(state: &i64) -> i64 {
        *state
    }
}

impl OpBased for OpCounter {
    type State = i64;
    type Call = CounterCall;
    type Ret = Option<i64>;
    type Eff = CounterEff;
    type Label = CounterOp;

    fn initial(&self) -> i64 {
        0
    }

    fn generator(
        &self,
        state: &i64,
        call: &CounterCall,
        _ctx: &mut GenCtx,
    ) -> GenOutcome<Option<i64>, CounterEff> {
        match call {
            CounterCall::Inc => GenOutcome::update(None, CounterEff::Inc),
            CounterCall::Dec => GenOutcome::update(None, CounterEff::Dec),
            CounterCall::Read => GenOutcome::query(Some(*state)),
        }
    }

    fn apply(&self, state: &mut i64, eff: &CounterEff) {
        match eff {
            CounterEff::Inc => *state += 1,
            CounterEff::Dec => *state -= 1,
        }
    }

    fn label(&self, call: &CounterCall, ret: &Option<i64>) -> CounterOp {
        match call {
            CounterCall::Inc => CounterOp::Inc,
            CounterCall::Dec => CounterOp::Dec,
            CounterCall::Read => CounterOp::Read(ret.expect("read always returns a value")),
        }
    }
}

impl SmallScope for OpCounter {
    type Call = CounterCall;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // `read` is a query (identity effector), so only the two updates are
    // enumerated; two suffice because `inc`/`dec` effectors are distinct.
    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<CounterCall> {
        vec![CounterCall::Inc, CounterCall::Dec]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::op_based::Cluster;
    use ral_spec::counter::CounterSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn concurrent_increments_converge() {
        let mut c = Cluster::new(OpCounter, 3);
        c.invoke(r(0), CounterCall::Inc);
        c.invoke(r(1), CounterCall::Inc);
        c.invoke(r(2), CounterCall::Dec);
        c.deliver_all();
        assert!(c.converged());
        assert_eq!(c.state(r(0)), &1);
    }

    #[test]
    fn stale_reads_reflect_partial_delivery() {
        let mut c = Cluster::new(OpCounter, 2);
        c.invoke(r(0), CounterCall::Inc);
        let stale = c.invoke(r(1), CounterCall::Read).unwrap();
        assert_eq!(stale.ret, Some(0));
    }

    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
        for seed in 0..20 {
            let mut c = Cluster::new(OpCounter, 3);
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(match rng.random_range(0..3u8) {
                    0 => CounterCall::Inc,
                    1 => CounterCall::Dec,
                    _ => CounterCall::Read,
                })
            });
            assert!(c.converged());
            let h = c.into_history();
            ra_check(&h, &Identity, &CounterSpec, OpCounter::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn labels_record_return_values() {
        let mut c = Cluster::new(OpCounter, 1);
        c.invoke(r(0), CounterCall::Inc);
        c.invoke(r(0), CounterCall::Read);
        let h = c.history();
        assert_eq!(h.label(0), &CounterOp::Inc);
        assert_eq!(h.label(1), &CounterOp::Read(1));
    }
}
