//! The Wooki list CRDT (Listing 5, Appendix B.3), an optimized Woot.
//!
//! Every element is a *W-character* `(id, value, degree, flag)`; the replica
//! state is a W-string framed by virtual `◦begin`/`◦end` sentinels.
//! `addBetween(a, b, c)` inserts `b` somewhere strictly between `a` and `c`,
//! the exact slot chosen by the recursive `integrateIns` routine: it narrows
//! the gap through the characters of minimal *degree* and breaks ties by
//! identifier (timestamp) order, which makes concurrent effectors commute.
//! Because the specification `Spec(Wooki)` is nondeterministic about the
//! slot, Wooki admits **execution-order** linearizations (Figure 12).

use ral_core::elem::Elem;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_core::timestamp::Ts;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::wooki::{WookiAnchor, WookiOp};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// A W-character: identifier (timestamp), value, degree, and visibility
/// flag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WChar<E> {
    /// Unique identifier; Wooki uses the generator's timestamp.
    pub id: Ts,
    /// The stored value.
    pub value: E,
    /// Insertion degree: one more than the larger of the anchors' degrees.
    pub degree: u32,
    /// `false` once removed (tombstoned in place).
    pub visible: bool,
}

/// Replica state: the W-string without its sentinels.
///
/// Extended positions run from `0` (the `◦begin` sentinel) through
/// `chars.len() + 1` (the `◦end` sentinel); character `i` sits at extended
/// position `i + 1`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WookiState<E> {
    chars: Vec<WChar<E>>,
}

impl<E: Elem> WookiState<E> {
    /// Extended position of an anchor, if it denotes an existing character.
    fn ext_pos(&self, anchor: &WookiAnchor<E>) -> Option<usize> {
        match anchor {
            WookiAnchor::Begin => Some(0),
            WookiAnchor::End => Some(self.chars.len() + 1),
            WookiAnchor::Elem(x) => self.chars.iter().position(|w| &w.value == x).map(|i| i + 1),
        }
    }

    fn degree_at(&self, ext: usize) -> u32 {
        if ext == 0 || ext == self.chars.len() + 1 {
            0
        } else {
            self.chars[ext - 1].degree
        }
    }

    /// Returns `true` if a W-character with this value exists (visible or
    /// not).
    pub fn contains(&self, value: &E) -> bool {
        self.chars.iter().any(|w| &w.value == value)
    }

    /// The visible values, in list order (the `read()` result).
    pub fn visible(&self) -> Vec<E> {
        self.chars
            .iter()
            .filter(|w| w.visible)
            .map(|w| w.value.clone())
            .collect()
    }

    /// All values in list order, including removed ones (the abstract `l`).
    pub fn all_values(&self) -> Vec<E> {
        self.chars.iter().map(|w| w.value.clone()).collect()
    }

    /// The removed values (the abstract tombstone set `T`).
    pub fn tombstones(&self) -> BTreeSet<E> {
        self.chars
            .iter()
            .filter(|w| !w.visible)
            .map(|w| w.value.clone())
            .collect()
    }

    /// The W-characters, for inspection.
    pub fn chars(&self) -> &[WChar<E>] {
        &self.chars
    }

    /// The `integrateIns` routine of Listing 5, iteratively: narrows the
    /// `(wp, wn)` gap (extended positions) until the sub-sequence between
    /// the anchors is empty, then inserts.
    fn integrate_ins(&mut self, mut wp: usize, w: WChar<E>, mut wn: usize) {
        loop {
            debug_assert!(wp < wn, "anchors must be ordered");
            // S' = characters strictly between wp and wn: indices wp..wn-1.
            if wp + 1 == wn {
                self.chars.insert(wn - 1, w);
                return;
            }
            let between = wp..wn - 1;
            let dmin = between
                .clone()
                .map(|i| self.chars[i].degree)
                .min()
                .expect("non-empty gap");
            let f: Vec<usize> = between.filter(|&i| self.chars[i].degree == dmin).collect();
            if w.id < self.chars[f[0]].id {
                wn = f[0] + 1;
                continue;
            }
            let mut i = 0;
            while i < f.len() - 1 && self.chars[f[i]].id < w.id {
                i += 1;
            }
            if i == f.len() - 1 && self.chars[f[i]].id < w.id {
                wp = f[i] + 1;
            } else {
                debug_assert!(i >= 1, "w.id ≥ F[0].id here");
                wp = f[i - 1] + 1;
                wn = f[i] + 1;
            }
        }
    }
}

/// Method invocations of Wooki.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WookiCall<E> {
    /// `addBetween(a, b, c)`.
    AddBetween(WookiAnchor<E>, E, WookiAnchor<E>),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Effector payloads of Wooki.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WookiEff<E> {
    /// Run `integrateIns(prev, w, next)` at the receiving replica.
    Insert {
        /// The new W-character.
        w: WChar<E>,
        /// The left anchor observed at the origin.
        prev: WookiAnchor<E>,
        /// The right anchor observed at the origin.
        next: WookiAnchor<E>,
    },
    /// Clear the visibility flag of the character holding this value.
    Hide(E),
}

/// The Wooki CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::op::wooki::{Wooki, WookiCall};
/// use ral_spec::wooki::WookiAnchor;
/// use ral_runtime::op_based::Cluster;
///
/// let mut cluster = Cluster::new(Wooki::<char>::new(), 2);
/// cluster
///     .invoke(ReplicaId(0), WookiCall::AddBetween(WookiAnchor::Begin, 'x', WookiAnchor::End))
///     .unwrap();
/// cluster.deliver_all();
/// assert!(cluster.converged());
/// ```
pub struct Wooki<E> {
    _elem: PhantomData<E>,
}

impl<E> Wooki<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// Creates the Wooki descriptor.
    pub fn new() -> Self {
        Wooki { _elem: PhantomData }
    }
}

impl<E: Elem> Wooki<E> {
    /// The refinement mapping `abs` onto `Spec(Wooki)` states.
    pub fn abs(state: &WookiState<E>) -> (Vec<E>, BTreeSet<E>) {
        (state.all_values(), state.tombstones())
    }

    /// All timestamps stored in the state.
    pub fn state_timestamps(state: &WookiState<E>) -> Vec<Ts> {
        state.chars.iter().map(|w| w.id).collect()
    }
}

impl<E> Clone for Wooki<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for Wooki<E> {}

impl<E> Default for Wooki<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Wooki<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Wooki")
    }
}

impl<E: Elem> OpBased for Wooki<E> {
    type State = WookiState<E>;
    type Call = WookiCall<E>;
    type Ret = Option<Vec<E>>;
    type Eff = WookiEff<E>;
    type Label = WookiOp<E>;

    fn initial(&self) -> WookiState<E> {
        WookiState { chars: Vec::new() }
    }

    fn generator(
        &self,
        state: &WookiState<E>,
        call: &WookiCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Option<Vec<E>>, WookiEff<E>> {
        match call {
            WookiCall::AddBetween(a, b, c) => {
                if matches!(a, WookiAnchor::End) || matches!(c, WookiAnchor::Begin) {
                    return GenOutcome::Refused;
                }
                if state.contains(b) {
                    return GenOutcome::Refused;
                }
                let (Some(pa), Some(pc)) = (state.ext_pos(a), state.ext_pos(c)) else {
                    return GenOutcome::Refused;
                };
                if pa >= pc {
                    return GenOutcome::Refused;
                }
                let degree = state.degree_at(pa).max(state.degree_at(pc)) + 1;
                let w = WChar {
                    id: ctx.fresh_ts(),
                    value: b.clone(),
                    degree,
                    visible: true,
                };
                GenOutcome::update(
                    None,
                    WookiEff::Insert {
                        w,
                        prev: a.clone(),
                        next: c.clone(),
                    },
                )
            }
            WookiCall::Remove(a) => {
                if !state.contains(a) {
                    return GenOutcome::Refused;
                }
                GenOutcome::update(None, WookiEff::Hide(a.clone()))
            }
            WookiCall::Read => GenOutcome::query(Some(state.visible())),
        }
    }

    fn apply(&self, state: &mut WookiState<E>, eff: &WookiEff<E>) {
        match eff {
            WookiEff::Insert { w, prev, next } => {
                let wp = state
                    .ext_pos(prev)
                    .expect("causal delivery guarantees the left anchor");
                let wn = state
                    .ext_pos(next)
                    .expect("causal delivery guarantees the right anchor");
                state.integrate_ins(wp, w.clone(), wn);
            }
            WookiEff::Hide(a) => {
                if let Some(w) = state.chars.iter_mut().find(|w| &w.value == a) {
                    w.visible = false;
                }
            }
        }
    }

    fn label(&self, call: &WookiCall<E>, ret: &Option<Vec<E>>) -> WookiOp<E> {
        match call {
            WookiCall::AddBetween(a, b, c) => WookiOp::AddBetween(a.clone(), b.clone(), c.clone()),
            WookiCall::Remove(a) => WookiOp::Remove(a.clone()),
            WookiCall::Read => WookiOp::Read(ret.clone().expect("read returns the list")),
        }
    }
}

impl<E: Elem + From<u8>> SmallScope for Wooki<E> {
    type Call = WookiCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Fresh value per index; anchor pairs range over `Begin`/`End` and the
    // values of earlier indices (one side at a time — `Elem`/`Elem` pairs
    // are reachable only in orders the generator accepts anyway, and the
    // one-sided pools already reach every insertion position).
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<WookiCall<E>> {
        let fresh = E::from(op_index as u8 + 1);
        let mut calls = vec![WookiCall::AddBetween(
            WookiAnchor::Begin,
            fresh.clone(),
            WookiAnchor::End,
        )];
        for j in 1..=op_index {
            let elem = E::from(j as u8);
            calls.push(WookiCall::AddBetween(
                WookiAnchor::Begin,
                fresh.clone(),
                WookiAnchor::Elem(elem.clone()),
            ));
            calls.push(WookiCall::AddBetween(
                WookiAnchor::Elem(elem.clone()),
                fresh.clone(),
                WookiAnchor::End,
            ));
            calls.push(WookiCall::Remove(elem));
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_runtime::op_based::Cluster;
    use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
    use ral_spec::wooki::WookiSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn begin() -> WookiAnchor<char> {
        WookiAnchor::Begin
    }

    fn end() -> WookiAnchor<char> {
        WookiAnchor::End
    }

    fn el(c: char) -> WookiAnchor<char> {
        WookiAnchor::Elem(c)
    }

    #[test]
    fn sequential_inserts() {
        let mut c = Cluster::new(Wooki::<char>::new(), 1);
        c.invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .unwrap();
        c.invoke(r(0), WookiCall::AddBetween(el('a'), 'c', end()))
            .unwrap();
        c.invoke(r(0), WookiCall::AddBetween(el('a'), 'b', el('c')))
            .unwrap();
        let read = c.invoke(r(0), WookiCall::Read).unwrap();
        assert_eq!(read.ret, Some(vec!['a', 'b', 'c']));
    }

    #[test]
    fn concurrent_inserts_converge() {
        let mut c = Cluster::new(Wooki::<char>::new(), 3);
        c.invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .unwrap();
        c.invoke(r(1), WookiCall::AddBetween(begin(), 'b', end()))
            .unwrap();
        c.invoke(r(2), WookiCall::AddBetween(begin(), 'c', end()))
            .unwrap();
        c.deliver_all();
        assert!(c.converged());
        // Everyone agrees on some order containing all three.
        let read = c.invoke(r(0), WookiCall::Read).unwrap().ret.unwrap();
        assert_eq!(read.len(), 3);
    }

    #[test]
    fn insert_between_concurrent_bounds_stays_bounded() {
        let mut c = Cluster::new(Wooki::<char>::new(), 2);
        c.invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .unwrap();
        c.invoke(r(0), WookiCall::AddBetween(el('a'), 'z', end()))
            .unwrap();
        c.deliver_all();
        // Concurrently insert between a and z at both replicas.
        c.invoke(r(0), WookiCall::AddBetween(el('a'), 'm', el('z')))
            .unwrap();
        c.invoke(r(1), WookiCall::AddBetween(el('a'), 'n', el('z')))
            .unwrap();
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(0), WookiCall::Read).unwrap().ret.unwrap();
        assert_eq!(read.first(), Some(&'a'));
        assert_eq!(read.last(), Some(&'z'));
        assert_eq!(read.len(), 4);
    }

    #[test]
    fn remove_hides_but_keeps_anchor() {
        let mut c = Cluster::new(Wooki::<char>::new(), 2);
        c.invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .unwrap();
        c.deliver_all();
        c.invoke(r(0), WookiCall::Remove('a')).unwrap();
        // Concurrent insert anchored at the removed element still works.
        c.invoke(r(1), WookiCall::AddBetween(el('a'), 'b', end()))
            .unwrap();
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(0), WookiCall::Read).unwrap();
        assert_eq!(read.ret, Some(vec!['b']));
    }

    #[test]
    fn preconditions_refuse_bad_calls() {
        let mut c = Cluster::new(Wooki::<char>::new(), 1);
        assert!(c
            .invoke(r(0), WookiCall::AddBetween(end(), 'a', end()))
            .is_none());
        assert!(c
            .invoke(r(0), WookiCall::AddBetween(begin(), 'a', begin()))
            .is_none());
        assert!(c.invoke(r(0), WookiCall::Remove('z')).is_none());
        c.invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .unwrap();
        assert!(c
            .invoke(r(0), WookiCall::AddBetween(begin(), 'a', end()))
            .is_none());
        c.invoke(r(0), WookiCall::AddBetween(el('a'), 'b', end()))
            .unwrap();
        // anchors out of order
        assert!(c
            .invoke(r(0), WookiCall::AddBetween(el('b'), 'x', el('a')))
            .is_none());
    }

    /// Small random runs (the nondeterministic specification makes checking
    /// exponential in the number of concurrent inserts).
    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        for seed in 0..15 {
            let mut c = Cluster::new(Wooki::<u16>::new(), 3);
            let mut next: u16 = 0;
            let cfg = ScheduleConfig {
                steps: 24,
                invoke_weight: 1,
                deliver_weight: 2,
                final_sync: true,
            };
            drive_op_based(&mut c, &cfg, seed, |rng, _, state| {
                let roll: u8 = rng.random_range(0..10);
                if roll < 4 && next < 8 {
                    let all = state.all_values();
                    let (a, b) = if all.is_empty() {
                        (WookiAnchor::Begin, WookiAnchor::End)
                    } else {
                        let i = rng.random_range(0..=all.len());
                        let j = rng.random_range(i..=all.len());
                        let left = if i == 0 {
                            WookiAnchor::Begin
                        } else {
                            WookiAnchor::Elem(all[i - 1])
                        };
                        let right = if j == all.len() {
                            WookiAnchor::End
                        } else {
                            WookiAnchor::Elem(all[j])
                        };
                        (left, right)
                    };
                    next += 1;
                    Some(WookiCall::AddBetween(a, next, b))
                } else if roll < 6 {
                    let vis = state.visible();
                    if vis.is_empty() {
                        None
                    } else {
                        Some(WookiCall::Remove(vis[rng.random_range(0..vis.len())]))
                    }
                } else {
                    Some(WookiCall::Read)
                }
            });
            assert!(c.converged(), "seed {seed} did not converge");
            let h = c.into_history();
            ra_check(&h, &Identity, &WookiSpec::new(), Wooki::<u16>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }
}
