//! The operation-based Last-Writer-Wins Register (Listing 4, Appendix B.2).
//!
//! `write` samples a timestamp and the effector keeps the greater-timestamped
//! value, so conflicting writes resolve identically everywhere. Because the
//! winning write can be the one whose generator ran *first*, the register
//! admits **timestamp-order**, not execution-order, linearizations
//! (Figure 12).

use ral_core::elem::Elem;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_core::timestamp::Ts;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::register::RegOp;
use std::marker::PhantomData;

/// Method invocations of the register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegCall<E> {
    /// `write(a)`.
    Write(E),
    /// `read()`.
    Read,
}

/// Replica state: the current value and the timestamp that installed it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LwwState<E> {
    /// Last written value (`None` before any write).
    pub value: Option<E>,
    /// Timestamp of the installed write (`None` initially).
    pub ts: Option<Ts>,
}

/// The operation-based LWW register CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::op::lww_register::{LwwRegister, RegCall};
/// use ral_runtime::op_based::Cluster;
///
/// let mut cluster = Cluster::new(LwwRegister::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), RegCall::Write('x'));
/// cluster.invoke(ReplicaId(1), RegCall::Write('y'));
/// cluster.deliver_all();
/// assert!(cluster.converged());
/// ```
pub struct LwwRegister<E> {
    _elem: PhantomData<E>,
}

impl<E> LwwRegister<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::TimestampOrder;

    /// Creates the register descriptor.
    pub fn new() -> Self {
        LwwRegister { _elem: PhantomData }
    }
}

impl<E: Elem> LwwRegister<E> {
    /// The refinement mapping `abs` onto `Spec(Reg)` states.
    pub fn abs(state: &LwwState<E>) -> Option<E> {
        state.value.clone()
    }

    /// All timestamps stored in the state (for `Refinement_ts`).
    pub fn state_timestamps(state: &LwwState<E>) -> Vec<Ts> {
        state.ts.into_iter().collect()
    }
}

impl<E> Clone for LwwRegister<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for LwwRegister<E> {}

impl<E> Default for LwwRegister<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for LwwRegister<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LwwRegister")
    }
}

impl<E: Elem> OpBased for LwwRegister<E> {
    type State = LwwState<E>;
    type Call = RegCall<E>;
    type Ret = Option<E>;
    type Eff = (E, Ts);
    type Label = RegOp<E>;

    fn initial(&self) -> LwwState<E> {
        LwwState {
            value: None,
            ts: None,
        }
    }

    fn generator(
        &self,
        state: &LwwState<E>,
        call: &RegCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Option<E>, (E, Ts)> {
        match call {
            RegCall::Write(a) => GenOutcome::update(None, (a.clone(), ctx.fresh_ts())),
            RegCall::Read => GenOutcome::query(state.value.clone()),
        }
    }

    fn apply(&self, state: &mut LwwState<E>, eff: &(E, Ts)) {
        if state.ts < Some(eff.1) {
            state.value = Some(eff.0.clone());
            state.ts = Some(eff.1);
        }
    }

    fn label(&self, call: &RegCall<E>, ret: &Option<E>) -> RegOp<E> {
        match call {
            RegCall::Write(a) => RegOp::Write(a.clone()),
            RegCall::Read => RegOp::Read(ret.clone()),
        }
    }
}

impl<E: Elem + From<u8>> SmallScope for LwwRegister<E> {
    type Call = RegCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // One distinct value per op index plus one value shared by every index:
    // the shared value makes concurrent *equal* writes reachable, where only
    // the timestamp distinguishes the effectors.
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<RegCall<E>> {
        vec![
            RegCall::Write(E::from(10 + op_index as u8)),
            RegCall::Write(E::from(7)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::label::Identity;
    use ral_core::ralin::{ra_check, Strategy};
    use ral_runtime::op_based::Cluster;
    use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
    use ral_spec::register::RegSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn later_timestamp_wins_both_orders() {
        // r0 writes then r1 writes concurrently; r1's clock is also 1, so
        // the replica order breaks the tie: r1 wins.
        let mut c = Cluster::new(LwwRegister::<u32>::new(), 2);
        c.invoke(r(0), RegCall::Write(10));
        c.invoke(r(1), RegCall::Write(20));
        c.deliver_all();
        assert!(c.converged());
        assert_eq!(c.state(r(0)).value, Some(20));
    }

    #[test]
    fn causally_later_write_wins() {
        let mut c = Cluster::new(LwwRegister::<u32>::new(), 2);
        c.invoke(r(1), RegCall::Write(20));
        c.deliver_all();
        c.invoke(r(0), RegCall::Write(10));
        c.deliver_all();
        assert_eq!(c.state(r(1)).value, Some(10));
    }

    #[test]
    fn stale_effector_is_ignored() {
        let mut c = Cluster::new(LwwRegister::<u32>::new(), 2);
        c.invoke(r(0), RegCall::Write(1)); // ts 1@r0
        c.invoke(r(1), RegCall::Write(2)); // ts 1@r1 > 1@r0

        // Deliver r1's write to r0 first, then r0's old write to r1.
        let at_r0 = c.deliverable(r(0));
        c.deliver(r(0), at_r0[0]);
        let at_r1 = c.deliverable(r(1));
        c.deliver(r(1), at_r1[0]);
        assert!(c.converged());
        assert_eq!(c.state(r(0)).value, Some(2));
    }

    #[test]
    fn random_histories_are_ra_linearizable_to() {
        for seed in 0..20 {
            let mut c = Cluster::new(LwwRegister::<u8>::new(), 3);
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(if rng.random_bool(0.5) {
                    RegCall::Write(rng.random_range(0..4))
                } else {
                    RegCall::Read
                })
            });
            assert!(c.converged());
            let h = c.into_history();
            ra_check(&h, &Identity, &RegSpec::new(), LwwRegister::<u8>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn execution_order_can_fail() {
        // The Figure 8 phenomenon, register flavour: find a seed whose
        // history refutes the execution-order strategy while timestamp order
        // succeeds.
        let mut failed_eo = false;
        for seed in 0..200 {
            let mut c = Cluster::new(LwwRegister::<u8>::new(), 3);
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(if rng.random_bool(0.5) {
                    RegCall::Write(rng.random_range(0..4))
                } else {
                    RegCall::Read
                })
            });
            let h = c.into_history();
            if ra_check(&h, &Identity, &RegSpec::new(), Strategy::ExecutionOrder).is_err() {
                failed_eo = true;
                break;
            }
        }
        assert!(failed_eo, "expected some history to refute execution order");
    }
}
