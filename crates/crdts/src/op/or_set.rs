//! The Observed-Remove Set (Listing 2, Section 2.2).
//!
//! `add(a)` tags the element with a fresh unique identifier; `remove(a)` is a
//! **query-update**: its generator observes the identifiers currently paired
//! with `a` at the origin and its effector removes exactly those pairs. The
//! query-update rewriting `γ` (Example 3.6, Figure 5b) splits each
//! `remove(a) ⇒ R` into `readIds(a) ⇒ R · remove(R)`; after rewriting the
//! OR-Set admits **execution-order** linearizations w.r.t. `Spec(OR-Set)`
//! (Figure 12).

use ral_core::elem::Elem;
use ral_core::ids::Uid;
use ral_core::label::{Rewrite, Rewritten};
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::set::{OrSetOp, SetOp};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Method invocations of the OR-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrSetCall<E> {
    /// `add(a)`.
    Add(E),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Return values of the OR-Set (the paper gives `add`/`remove` return values
/// "for technical reasons": they are what the rewriting needs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrSetRet<E> {
    /// The identifier minted by `add`.
    Added(Uid),
    /// The element/identifier pairs observed (and removed) by `remove`.
    Removed(BTreeSet<(E, Uid)>),
    /// The element view returned by `read`.
    Values(BTreeSet<E>),
}

/// Effector payloads of the OR-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrSetEff<E> {
    /// Insert the pair `(a, k)`.
    Add(E, Uid),
    /// Erase exactly the observed pairs.
    Remove(BTreeSet<(E, Uid)>),
}

/// Implementation labels `m(a) ⇒ b` of the OR-Set (before rewriting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrSetLabel<E> {
    /// `add(a) ⇒ k`.
    Add(E, Uid),
    /// `remove(a) ⇒ R`.
    Remove(E, BTreeSet<(E, Uid)>),
    /// `read() ⇒ A`.
    Read(BTreeSet<E>),
}

/// The query-update rewriting `γ` of Example 3.6.
pub struct OrSetRewrite<E> {
    _elem: PhantomData<E>,
}

impl<E> OrSetRewrite<E> {
    /// Creates the rewriting.
    pub fn new() -> Self {
        OrSetRewrite { _elem: PhantomData }
    }
}

impl<E> Default for OrSetRewrite<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for OrSetRewrite<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OrSetRewrite")
    }
}

impl<E: Elem> Rewrite<OrSetLabel<E>> for OrSetRewrite<E> {
    type Out = OrSetOp<E>;

    fn rewrite(&self, label: &OrSetLabel<E>) -> Rewritten<OrSetOp<E>> {
        match label {
            OrSetLabel::Add(a, k) => Rewritten::One(OrSetOp::Add(a.clone(), *k)),
            OrSetLabel::Read(values) => Rewritten::One(OrSetOp::Read(values.clone())),
            OrSetLabel::Remove(a, observed) => Rewritten::Split {
                query: OrSetOp::ReadIds(a.clone(), observed.clone()),
                update: OrSetOp::Remove(observed.clone()),
            },
        }
    }
}

/// The OR-Set CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRet};
/// use ral_runtime::op_based::Cluster;
/// use std::collections::BTreeSet;
///
/// let mut cluster = Cluster::new(OrSet::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), OrSetCall::Add('a'));
/// cluster.deliver_all();
/// let read = cluster.invoke(ReplicaId(1), OrSetCall::Read).unwrap();
/// assert_eq!(read.ret, OrSetRet::Values(BTreeSet::from(['a'])));
/// ```
pub struct OrSet<E> {
    _elem: PhantomData<E>,
}

impl<E> OrSet<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::ExecutionOrder;

    /// Creates the OR-Set descriptor.
    pub fn new() -> Self {
        OrSet { _elem: PhantomData }
    }
}

impl<E: Elem> OrSet<E> {
    /// The refinement mapping `abs` onto `Spec(OR-Set)` states — the
    /// identity (Example 4.3).
    pub fn abs(state: &BTreeSet<(E, Uid)>) -> BTreeSet<(E, Uid)> {
        state.clone()
    }

    /// Projects an implementation label onto the *plain* `Spec(Set)` label
    /// vocabulary (dropping identifiers), as used to show the Figure 5a
    /// execution is not linearizable against the naive specification.
    pub fn plain_label(label: &OrSetLabel<E>) -> SetOp<E> {
        match label {
            OrSetLabel::Add(a, _) => SetOp::Add(a.clone()),
            OrSetLabel::Remove(a, _) => SetOp::Remove(a.clone()),
            OrSetLabel::Read(values) => SetOp::Read(values.clone()),
        }
    }
}

impl<E> Clone for OrSet<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for OrSet<E> {}

impl<E> Default for OrSet<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for OrSet<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OrSet")
    }
}

impl<E: Elem> OpBased for OrSet<E> {
    type State = BTreeSet<(E, Uid)>;
    type Call = OrSetCall<E>;
    type Ret = OrSetRet<E>;
    type Eff = OrSetEff<E>;
    type Label = OrSetLabel<E>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn generator(
        &self,
        state: &Self::State,
        call: &OrSetCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<OrSetRet<E>, OrSetEff<E>> {
        match call {
            OrSetCall::Add(a) => {
                let k = ctx.fresh_uid();
                GenOutcome::update(OrSetRet::Added(k), OrSetEff::Add(a.clone(), k))
            }
            OrSetCall::Remove(a) => {
                let observed: BTreeSet<(E, Uid)> =
                    state.iter().filter(|(e, _)| e == a).cloned().collect();
                GenOutcome::update(
                    OrSetRet::Removed(observed.clone()),
                    OrSetEff::Remove(observed),
                )
            }
            OrSetCall::Read => {
                let values: BTreeSet<E> = state.iter().map(|(e, _)| e.clone()).collect();
                GenOutcome::query(OrSetRet::Values(values))
            }
        }
    }

    fn apply(&self, state: &mut Self::State, eff: &OrSetEff<E>) {
        match eff {
            OrSetEff::Add(a, k) => {
                state.insert((a.clone(), *k));
            }
            OrSetEff::Remove(observed) => {
                for pair in observed {
                    state.remove(pair);
                }
            }
        }
    }

    fn label(&self, call: &OrSetCall<E>, ret: &OrSetRet<E>) -> OrSetLabel<E> {
        match (call, ret) {
            (OrSetCall::Add(a), OrSetRet::Added(k)) => OrSetLabel::Add(a.clone(), *k),
            (OrSetCall::Remove(a), OrSetRet::Removed(observed)) => {
                OrSetLabel::Remove(a.clone(), observed.clone())
            }
            (OrSetCall::Read, OrSetRet::Values(values)) => OrSetLabel::Read(values.clone()),
            _ => unreachable!("mismatched call/return pair"),
        }
    }
}

impl<E: Elem + From<u8>> SmallScope for OrSet<E> {
    type Call = OrSetCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Two values suffice: add/remove of the same value concurrently (the
    // Figure 5a add/remove race) and of different values. Unique tags come
    // from the generator, not the pool.
    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<OrSetCall<E>> {
        vec![
            OrSetCall::Add(E::from(1)),
            OrSetCall::Add(E::from(2)),
            OrSetCall::Remove(E::from(1)),
            OrSetCall::Remove(E::from(2)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::ralin::ra_check;
    use ral_runtime::op_based::Cluster;
    use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
    use ral_spec::set::OrSetSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn add_wins_over_concurrent_remove() {
        // r0: add(a); sync; r0: remove(a) || r1: add(a) — the concurrent add
        // survives because its identifier was not observed by the remove.
        let mut c = Cluster::new(OrSet::<char>::new(), 2);
        c.invoke(r(0), OrSetCall::Add('a'));
        c.deliver_all();
        c.invoke(r(0), OrSetCall::Remove('a'));
        c.invoke(r(1), OrSetCall::Add('a'));
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(0), OrSetCall::Read).unwrap();
        assert_eq!(read.ret, OrSetRet::Values(BTreeSet::from(['a'])));
    }

    #[test]
    fn observed_remove_erases_everything_seen() {
        let mut c = Cluster::new(OrSet::<char>::new(), 2);
        c.invoke(r(0), OrSetCall::Add('a'));
        c.invoke(r(1), OrSetCall::Add('a'));
        c.deliver_all();
        c.invoke(r(0), OrSetCall::Remove('a'));
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(1), OrSetCall::Read).unwrap();
        assert_eq!(read.ret, OrSetRet::Values(BTreeSet::new()));
    }

    #[test]
    fn remove_of_absent_element_is_harmless() {
        let mut c = Cluster::new(OrSet::<char>::new(), 2);
        let rem = c.invoke(r(0), OrSetCall::Remove('z')).unwrap();
        assert_eq!(rem.ret, OrSetRet::Removed(BTreeSet::new()));
    }

    #[test]
    fn random_histories_are_ra_linearizable_eo() {
        for seed in 0..20 {
            let mut c = Cluster::new(OrSet::<u8>::new(), 3);
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(match rng.random_range(0..4u8) {
                    0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
                    2 => OrSetCall::Remove(rng.random_range(0..3)),
                    _ => OrSetCall::Read,
                })
            });
            assert!(c.converged());
            let h = c.into_history();
            ra_check(
                &h,
                &OrSetRewrite::new(),
                &OrSetSpec::new(),
                OrSet::<u8>::STRATEGY,
            )
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn plain_projection_strips_ids() {
        let label = OrSetLabel::Add('a', Uid(7));
        assert_eq!(OrSet::plain_label(&label), SetOp::Add('a'));
        let label = OrSetLabel::Remove('a', BTreeSet::from([('a', Uid(7))]));
        assert_eq!(OrSet::plain_label(&label), SetOp::Remove('a'));
    }
}
