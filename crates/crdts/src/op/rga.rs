//! The Replicated Growable Array (Listing 1, Section 2.1).
//!
//! Each replica keeps a *timestamp tree* (`Ti-Tree`): every inserted element
//! is a child of the element it was added after, tagged with the timestamp
//! its generator sampled. Reading traverses the tree in pre-order with
//! siblings ordered by **descending** timestamp; removal only marks elements
//! in a tombstone set, so a concurrent `addAfter` under a removed element
//! still finds its parent. Conflicting sibling insertions are resolved by
//! timestamp, which is why RGA admits **timestamp-order** (not
//! execution-order) linearizations (Figure 8, Figure 12).

use ral_core::elem::Elem;
use ral_core::ralin::Strategy;
use ral_core::scope::SmallScope;
use ral_core::timestamp::Ts;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_spec::rga::{Anchor, RgaOp};
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;

/// Method invocations of RGA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RgaCall<E> {
    /// `addAfter(a, b)` — insert `b` right after `a` (`Anchor::Head` is `◦`).
    AddAfter(Anchor<E>, E),
    /// `remove(a)`.
    Remove(E),
    /// `read()`.
    Read,
}

/// Effector payloads of RGA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RgaEff<E> {
    /// Add `(parent, ts, elem)` to the timestamp tree.
    Insert {
        /// Parent node (the `addAfter` anchor).
        parent: Anchor<E>,
        /// Timestamp sampled by the generator.
        ts: Ts,
        /// The inserted element.
        elem: E,
    },
    /// Add `elem` to the tombstone set.
    Tomb(E),
}

/// Replica state: the timestamp tree plus the tombstone set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RgaState<E: Elem> {
    /// Children of each node, sorted by descending timestamp.
    children: BTreeMap<Anchor<E>, Vec<(Ts, E)>>,
    /// Every element in the tree with its timestamp.
    present: BTreeMap<E, Ts>,
    /// Tombstoned (conceptually erased) elements.
    tomb: BTreeSet<E>,
}

impl<E: Elem> RgaState<E> {
    fn new() -> Self {
        RgaState {
            children: BTreeMap::new(),
            present: BTreeMap::new(),
            tomb: BTreeSet::new(),
        }
    }

    /// Returns `true` if `elem` is in the timestamp tree (tombstoned or not).
    pub fn contains(&self, elem: &E) -> bool {
        self.present.contains_key(elem)
    }

    /// Returns `true` if `elem` has been tombstoned.
    pub fn is_tombstoned(&self, elem: &E) -> bool {
        self.tomb.contains(elem)
    }

    /// The timestamp of `elem`, if present.
    pub fn timestamp_of(&self, elem: &E) -> Option<Ts> {
        self.present.get(elem).copied()
    }

    /// The tombstone set.
    pub fn tombstones(&self) -> &BTreeSet<E> {
        &self.tomb
    }

    fn walk(&self, node: &Anchor<E>, include_tombstoned: bool, out: &mut Vec<E>) {
        if let Some(kids) = self.children.get(node) {
            for (_, elem) in kids {
                if include_tombstoned || !self.tomb.contains(elem) {
                    out.push(elem.clone());
                }
                self.walk(&Anchor::Elem(elem.clone()), include_tombstoned, out);
            }
        }
    }

    /// Pre-order traversal skipping tombstones — the `read()` result.
    pub fn visible(&self) -> Vec<E> {
        let mut out = Vec::new();
        self.walk(&Anchor::Head, false, &mut out);
        out
    }

    /// Pre-order traversal including tombstoned elements — the sequence `l`
    /// of the abstract state.
    pub fn all_elements(&self) -> Vec<E> {
        let mut out = Vec::new();
        self.walk(&Anchor::Head, true, &mut out);
        out
    }
}

/// The RGA CRDT.
///
/// # Examples
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_crdts::op::rga::{Rga, RgaCall};
/// use ral_spec::rga::Anchor;
/// use ral_runtime::op_based::Cluster;
///
/// let mut cluster = Cluster::new(Rga::<char>::new(), 2);
/// cluster.invoke(ReplicaId(0), RgaCall::AddAfter(Anchor::Head, 'a')).unwrap();
/// cluster.deliver_all();
/// cluster.invoke(ReplicaId(1), RgaCall::AddAfter(Anchor::Elem('a'), 'b')).unwrap();
/// cluster.deliver_all();
/// let read = cluster.invoke(ReplicaId(0), RgaCall::Read).unwrap();
/// assert_eq!(read.ret, Some(vec!['a', 'b']));
/// ```
pub struct Rga<E> {
    _elem: PhantomData<E>,
}

impl<E> Rga<E> {
    /// The linearization class of Figure 12.
    pub const STRATEGY: Strategy = Strategy::TimestampOrder;

    /// Creates the RGA descriptor.
    pub fn new() -> Self {
        Rga { _elem: PhantomData }
    }
}

impl<E: Elem> Rga<E> {
    /// The refinement mapping `abs` of Example 4.5: the pre-order traversal
    /// (ignoring tombstones for membership in `l`) plus the tombstone set.
    pub fn abs(state: &RgaState<E>) -> (Vec<E>, BTreeSet<E>) {
        (state.all_elements(), state.tomb.clone())
    }

    /// All timestamps stored in the state (for `Refinement_ts`).
    pub fn state_timestamps(state: &RgaState<E>) -> Vec<Ts> {
        state.present.values().copied().collect()
    }
}

impl<E> Clone for Rga<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for Rga<E> {}

impl<E> Default for Rga<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Rga<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Rga")
    }
}

impl<E: Elem> OpBased for Rga<E> {
    type State = RgaState<E>;
    type Call = RgaCall<E>;
    type Ret = Option<Vec<E>>;
    type Eff = RgaEff<E>;
    type Label = RgaOp<E>;

    fn initial(&self) -> RgaState<E> {
        RgaState::new()
    }

    fn generator(
        &self,
        state: &RgaState<E>,
        call: &RgaCall<E>,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Option<Vec<E>>, RgaEff<E>> {
        match call {
            RgaCall::AddAfter(a, b) => {
                let anchor_ok = match a {
                    Anchor::Head => true,
                    Anchor::Elem(x) => state.contains(x) && !state.is_tombstoned(x),
                };
                if !anchor_ok || state.contains(b) {
                    return GenOutcome::Refused;
                }
                GenOutcome::update(
                    None,
                    RgaEff::Insert {
                        parent: a.clone(),
                        ts: ctx.fresh_ts(),
                        elem: b.clone(),
                    },
                )
            }
            RgaCall::Remove(a) => {
                if !state.contains(a) || state.is_tombstoned(a) {
                    return GenOutcome::Refused;
                }
                GenOutcome::update(None, RgaEff::Tomb(a.clone()))
            }
            RgaCall::Read => GenOutcome::query(Some(state.visible())),
        }
    }

    fn apply(&self, state: &mut RgaState<E>, eff: &RgaEff<E>) {
        match eff {
            RgaEff::Insert { parent, ts, elem } => {
                let kids = state.children.entry(parent.clone()).or_default();
                // Siblings are kept in descending timestamp order.
                let at = kids.partition_point(|(t, _)| *t > *ts);
                kids.insert(at, (*ts, elem.clone()));
                state.present.insert(elem.clone(), *ts);
            }
            RgaEff::Tomb(elem) => {
                state.tomb.insert(elem.clone());
            }
        }
    }

    fn label(&self, call: &RgaCall<E>, ret: &Option<Vec<E>>) -> RgaOp<E> {
        match call {
            RgaCall::AddAfter(a, b) => RgaOp::AddAfter(a.clone(), b.clone()),
            RgaCall::Remove(a) => RgaOp::Remove(a.clone()),
            RgaCall::Read => RgaOp::Read(ret.clone().expect("read returns the list")),
        }
    }
}

impl<E: Elem + From<u8>> SmallScope for Rga<E> {
    type Call = RgaCall<E>;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    // Client obligation (Section 3.2): inserted values are globally fresh,
    // so op `i` introduces value `i + 1` and may only anchor on or remove
    // values introduced by earlier indices. Anchors not yet visible at a
    // replica are refused by the generator and pruned by the search.
    fn scope_calls(&self, op_index: usize, _k: usize) -> Vec<RgaCall<E>> {
        let fresh = E::from(op_index as u8 + 1);
        let mut calls = vec![RgaCall::AddAfter(Anchor::Head, fresh.clone())];
        for j in 1..=op_index {
            let elem = E::from(j as u8);
            calls.push(RgaCall::AddAfter(Anchor::Elem(elem.clone()), fresh.clone()));
            calls.push(RgaCall::Remove(elem));
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_core::label::Identity;
    use ral_core::ralin::{ra_check, Strategy};
    use ral_runtime::op_based::Cluster;
    use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
    use ral_spec::rga::RgaSpec;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn head() -> Anchor<char> {
        Anchor::Head
    }

    fn after(c: char) -> Anchor<char> {
        Anchor::Elem(c)
    }

    #[test]
    fn sequential_inserts_read_in_order() {
        let mut c = Cluster::new(Rga::<char>::new(), 1);
        c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).unwrap();
        c.invoke(r(0), RgaCall::AddAfter(after('a'), 'b')).unwrap();
        c.invoke(r(0), RgaCall::AddAfter(after('b'), 'c')).unwrap();
        let read = c.invoke(r(0), RgaCall::Read).unwrap();
        assert_eq!(read.ret, Some(vec!['a', 'b', 'c']));
    }

    #[test]
    fn concurrent_siblings_resolve_by_timestamp() {
        // Two replicas insert after the same parent; the higher timestamp
        // is read first (Section 2.1).
        let mut c = Cluster::new(Rga::<char>::new(), 2);
        c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).unwrap();
        c.deliver_all();
        c.invoke(r(0), RgaCall::AddAfter(after('a'), 'b')).unwrap(); // ts 2@r0
        c.invoke(r(1), RgaCall::AddAfter(after('a'), 'c')).unwrap(); // ts 2@r1
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(0), RgaCall::Read).unwrap();
        // 2@r1 > 2@r0, so c comes first among the siblings.
        assert_eq!(read.ret, Some(vec!['a', 'c', 'b']));
    }

    #[test]
    fn remove_keeps_subtree_reachable() {
        // A concurrent addAfter under a removed element still lands.
        let mut c = Cluster::new(Rga::<char>::new(), 2);
        c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).unwrap();
        c.deliver_all();
        c.invoke(r(0), RgaCall::Remove('a')).unwrap();
        c.invoke(r(1), RgaCall::AddAfter(after('a'), 'b')).unwrap();
        c.deliver_all();
        assert!(c.converged());
        let read = c.invoke(r(1), RgaCall::Read).unwrap();
        assert_eq!(read.ret, Some(vec!['b']));
    }

    #[test]
    fn preconditions_refuse_bad_calls() {
        let mut c = Cluster::new(Rga::<char>::new(), 1);
        assert!(c.invoke(r(0), RgaCall::AddAfter(after('z'), 'a')).is_none());
        assert!(c.invoke(r(0), RgaCall::Remove('z')).is_none());
        c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).unwrap();
        // duplicate element refused
        assert!(c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).is_none());
        // removing twice refused
        c.invoke(r(0), RgaCall::Remove('a')).unwrap();
        assert!(c.invoke(r(0), RgaCall::Remove('a')).is_none());
        // adding after a tombstoned element refused at the generator
        assert!(c.invoke(r(0), RgaCall::AddAfter(after('a'), 'b')).is_none());
    }

    fn random_rga_run(seed: u64) -> ral_core::history::History<RgaOp<u16>> {
        let mut c = Cluster::new(Rga::<u16>::new(), 3);
        let mut next: u16 = 0;
        drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, state| {
            let roll: u8 = rng.random_range(0..10);
            if roll < 5 {
                let visible = state.visible();
                let anchor = if visible.is_empty() || rng.random_bool(0.3) {
                    Anchor::Head
                } else {
                    Anchor::Elem(visible[rng.random_range(0..visible.len())])
                };
                next += 1;
                Some(RgaCall::AddAfter(anchor, next))
            } else if roll < 7 {
                let visible = state.visible();
                if visible.is_empty() {
                    None
                } else {
                    Some(RgaCall::Remove(visible[rng.random_range(0..visible.len())]))
                }
            } else {
                Some(RgaCall::Read)
            }
        });
        assert!(c.converged(), "seed {seed} did not converge");
        c.into_history()
    }

    #[test]
    fn random_histories_are_ra_linearizable_to() {
        for seed in 0..20 {
            let h = random_rga_run(seed);
            ra_check(&h, &Identity, &RgaSpec::new(), Rga::<u16>::STRATEGY)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn execution_order_can_fail() {
        // Figure 8: some RGA history refutes the execution-order strategy.
        let mut failed_eo = false;
        for seed in 0..300 {
            let h = random_rga_run(seed);
            if ra_check(&h, &Identity, &RgaSpec::new(), Strategy::ExecutionOrder).is_err() {
                failed_eo = true;
                break;
            }
        }
        assert!(failed_eo, "expected some history to refute execution order");
    }

    #[test]
    fn abs_projects_tree_to_sequence() {
        let mut c = Cluster::new(Rga::<char>::new(), 1);
        c.invoke(r(0), RgaCall::AddAfter(head(), 'a')).unwrap();
        c.invoke(r(0), RgaCall::AddAfter(after('a'), 'b')).unwrap();
        c.invoke(r(0), RgaCall::Remove('a')).unwrap();
        let (l, t) = Rga::abs(c.state(r(0)));
        assert_eq!(l, vec!['a', 'b']);
        assert_eq!(t, BTreeSet::from(['a']));
        assert_eq!(c.state(r(0)).visible(), vec!['b']);
    }
}
