#![warn(missing_docs)]
//! CRDT implementations from the RA-linearizability paper — the nine data
//! types of Figure 12 plus the `addAt` variants of Appendix C.
//!
//! Operation-based ([`op`]) and state-based ([`state`]) implementations each
//! bundle:
//!
//! * the replicated implementation ([`ral_runtime::OpBased`] /
//!   [`ral_runtime::StateBased`]);
//! * the query-update rewriting `γ` onto the label types of `ral-spec`
//!   (identity where the paper needs none);
//! * the refinement mapping `abs` used in the Refinement proofs
//!   (Section 4);
//! * the linearization class (`EO` / `TO`) claimed by Figure 12.
//!
//! The four state-based types additionally implement
//! [`ral_runtime::DeltaCrdt`]: delta-returning mutators whose join
//! decompositions feed the bandwidth-proportional delta transport
//! ([`ral_runtime::DeltaCluster`]) instead of whole-state snapshots.
//!
//! | Type | Module | Paper | Style | Lin |
//! |---|---|---|---|---|
//! | Counter | [`op::counter`] | Listing 3 | op-based | EO |
//! | LWW-Register | [`op::lww_register`] | Listing 4 | op-based | TO |
//! | OR-Set | [`op::or_set`] | Listing 2 | op-based | EO |
//! | RGA | [`op::rga`] | Listing 1 | op-based | TO |
//! | RGA-addAt | [`op::rga_addat`] | Appendix C | op-based | TO |
//! | Wooki | [`op::wooki`] | Listing 5 | op-based | EO |
//! | PN-Counter | [`state::pn_counter`] | Listing 9 | state-based | EO |
//! | MV-Register | [`state::mv_register`] | Listing 7 | state-based | EO |
//! | LWW-Element-Set | [`state::lww_element_set`] | Listing 8 | state-based | TO |
//! | 2P-Set | [`state::two_phase_set`] | Listing 10 | state-based | EO |

pub mod op;
pub mod state;

pub use op::counter::OpCounter;
pub use op::lww_register::LwwRegister;
pub use op::or_set::OrSet;
pub use op::rga::Rga;
pub use op::rga_addat::{RgaAddAt, RgaAddAtSilent};
pub use op::wooki::Wooki;
pub use state::local::{EffectorClass, LocalEffector};
pub use state::lww_element_set::LwwElementSet;
pub use state::mv_register::MvRegister;
pub use state::pn_counter::PnCounter;
pub use state::two_phase_set::TwoPhaseSet;
