//! The paper's headline artifact: **Figure 12** — the table of CRDTs proved
//! RA-linearizable, each with its implementation style (operation-based /
//! state-based) and the class of linearizations used (execution-order /
//! timestamp-order).
//!
//! For every row we (a) discharge the proof obligations of Sections 4 and
//! Appendix D on random reachable configurations (Commutativity +
//! Refinement(/ts) for op-based types; Prop1–Prop6 and the lattice laws for
//! state-based ones), and (b) model-check RA-linearizability itself on
//! seeded random histories with the claimed linearization strategy.

use crate::commutativity;
use crate::convergence;
use crate::refinement::{self, Mode};
use crate::report::Report;
use crate::state_props;
use crate::workloads;
use ral_core::compose::{compose_disjoint, MultiObjRewrite, MultiObjSpec};
use ral_core::history::History;
use ral_core::label::{Identity, Rewrite};
use ral_core::ralin::{ra_check, ra_search_sharded_with_budget, ra_search_with_budget, Strategy};
use ral_core::spec::Spec;
use ral_crdts::op::counter::OpCounter;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::{OrSet, OrSetRewrite};
use ral_crdts::op::rga::Rga;
use ral_crdts::op::wooki::Wooki;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::mv_register::MvRegister;
use ral_crdts::state::pn_counter::PnCounter;
use ral_crdts::state::two_phase_set::TwoPhaseSet;
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, drive_state_based, ScheduleConfig};
use ral_runtime::state_based::StateCluster;
use ral_spec::counter::CounterSpec;
use ral_spec::register::{MvRegSpec, RegSpec};
use ral_spec::rga::RgaSpec;
use ral_spec::set::{OrSetSpec, SetSpec};
use ral_spec::wooki::WookiSpec;

/// One row of Figure 12.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Data type name as printed in the paper.
    pub name: &'static str,
    /// Citation shorthand from the paper's table.
    pub source: &'static str,
    /// Implementation style: `"OB"` (operation-based) or `"SB"`
    /// (state-based).
    pub imp: &'static str,
    /// Linearization class: `"EO"` or `"TO"`.
    pub lin: &'static str,
    /// Proof-obligation reports (Commutativity, Refinement, Props…).
    pub obligations: Vec<Report>,
    /// Number of random histories model-checked RA-linearizable with the
    /// guided strategy.
    pub histories: u64,
    /// Failures among those histories (must be zero).
    pub history_failures: u64,
    /// Number of random histories additionally *decided* by the complete
    /// memoized search ([`ra_search_with_budget`]) — sizes the naive
    /// seed-era enumeration could not touch.
    pub searched: u64,
    /// Failures among the searched histories: refutations or exhausted
    /// budgets (must be zero — every Figure 12 type is RA-linearizable).
    pub search_failures: u64,
    /// Number of *composed* histories ([`SHARD_OBJECTS`] disjoint
    /// instances of the row's data type, interleaved) decided by the
    /// sharded compositional search ([`ra_search_sharded_with_budget`]).
    pub sharded: u64,
    /// Failures among the sharded histories (must be zero: Theorem 5.3 /
    /// 5.5 — compositions of Figure 12 types stay RA-linearizable).
    pub sharded_failures: u64,
}

impl Fig12Row {
    /// Returns `true` if every obligation and every history check passed.
    pub fn verified(&self) -> bool {
        self.history_failures == 0
            && self.histories > 0
            && self.search_failures == 0
            && self.searched > 0
            && self.sharded_failures == 0
            && self.sharded > 0
            && self.obligations.iter().all(Report::ok)
    }
}

const N_REPLICAS: usize = 3;
const STEPS: usize = 40;
/// Scheduler steps for the complete-search histories: ~3× the largest
/// histories the naive brute search could decide (the `checker_scaling`
/// bench capped the naive engine at 12 steps ≈ 10 operations; 36 steps
/// yield ~25).
const SEARCH_STEPS: usize = 36;
/// Node budget for one complete-search decision; with the memoized
/// engine the scheduler-generated histories finish orders of magnitude
/// below this.
const SEARCH_BUDGET: u64 = 5_000_000;
const OBLIGATION_SEEDS: std::ops::Range<u64> = 0..5;
/// Seed offset separating the search histories from the guided ones.
const SEARCH_SEED_OFFSET: u64 = 0x5EA7C4;
/// Objects per composed history in the sharded-search column.
pub const SHARD_OBJECTS: usize = 3;
/// Seed offset separating the sharded-search histories from the others.
const SHARD_SEED_OFFSET: u64 = 0x5A4DED;

/// Schedule for the complete-search histories.
fn search_cfg() -> ScheduleConfig {
    ScheduleConfig {
        steps: SEARCH_STEPS,
        ..ScheduleConfig::default()
    }
}

fn check_histories<L, R, S>(
    histories: impl Iterator<Item = History<L>>,
    rw: &R,
    spec: &S,
    strategy: Strategy,
) -> (u64, u64)
where
    R: Rewrite<L, Out = S::Label>,
    S: Spec,
{
    let mut total = 0;
    let mut failures = 0;
    for h in histories {
        total += 1;
        if ra_check(&h, rw, spec, strategy).is_err() {
            failures += 1;
        }
    }
    (total, failures)
}

/// Builds `histories` composed histories — [`SHARD_OBJECTS`] independent
/// single-object runs of the row's generator, interleaved with
/// [`compose_disjoint`] — and decides each outright with the sharded
/// compositional search. A refutation or an exhausted budget counts as a
/// failure: free compositions of RA-linearizable types must stay
/// RA-linearizable (Theorems 5.3/5.5).
fn sharded_search_histories<L, R, S>(
    histories: u64,
    mk: impl Fn(u64) -> History<L>,
    rw: R,
    spec: S,
) -> (u64, u64)
where
    L: Clone + std::fmt::Debug,
    R: Rewrite<L, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mrw = MultiObjRewrite::new(rw);
    let mspec = MultiObjSpec::new(spec, SHARD_OBJECTS);
    let mut total = 0;
    let mut failures = 0;
    for i in 0..histories {
        let parts: Vec<History<L>> = (0..SHARD_OBJECTS as u64)
            .map(|o| mk(SHARD_SEED_OFFSET + i * SHARD_OBJECTS as u64 + o))
            .collect();
        let composed = compose_disjoint(&parts);
        total += 1;
        if !ra_search_sharded_with_budget(&composed, &mrw, &mspec, SEARCH_BUDGET).is_linearizable()
        {
            failures += 1;
        }
    }
    (total, failures)
}

/// Decides each history outright with the complete memoized search; a
/// refutation or an exhausted budget counts as a failure.
fn search_histories<L, R, S>(
    histories: impl Iterator<Item = History<L>>,
    rw: &R,
    spec: &S,
) -> (u64, u64)
where
    R: Rewrite<L, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mut total = 0;
    let mut failures = 0;
    for h in histories {
        total += 1;
        if !ra_search_with_budget(&h, rw, spec, SEARCH_BUDGET).is_linearizable() {
            failures += 1;
        }
    }
    (total, failures)
}

/// Counter (Shapiro et al. 2011) — OB, EO.
pub fn counter_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        commutativity::check_op_based(
            OpCounter,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::counter(rng)),
        ),
        refinement::check_op_based(
            OpCounter,
            &CounterSpec,
            &Identity,
            Mode::Plain,
            OpCounter::abs,
            |_| vec![],
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::counter(rng)),
        ),
        convergence::check_op_based(
            OpCounter,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::counter(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = Cluster::new(OpCounter, N_REPLICAS);
        drive_op_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::counter(rng)),
        );
        c.into_history()
    });
    // One generator serves both complete-search columns: Searched draws
    // seeds at SEARCH_SEED_OFFSET, Sharded at SHARD_SEED_OFFSET (applied
    // inside sharded_search_histories), so the two columns measure the
    // same workload by construction.
    let search_history = |seed: u64| {
        let mut c = Cluster::new(OpCounter, N_REPLICAS);
        drive_op_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::counter(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &CounterSpec,
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        CounterSpec,
    );
    let (histories, history_failures) =
        check_histories(runs, &Identity, &CounterSpec, OpCounter::STRATEGY);
    Fig12Row {
        name: "Counter",
        source: "[Shapiro et al. 2011]",
        imp: "OB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// PN-Counter (Shapiro et al. 2011) — SB, EO.
pub fn pn_counter_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        state_props::check_state_based(
            PnCounter,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::pn_counter(rng)),
        ),
        convergence::check_state_based(
            PnCounter,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::pn_counter(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = StateCluster::new(PnCounter, N_REPLICAS);
        drive_state_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::pn_counter(rng)),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = StateCluster::new(PnCounter, N_REPLICAS);
        drive_state_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &CounterSpec,
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        CounterSpec,
    );
    let (histories, history_failures) =
        check_histories(runs, &Identity, &CounterSpec, PnCounter::STRATEGY);
    Fig12Row {
        name: "PN-Counter",
        source: "[Shapiro et al. 2011]",
        imp: "SB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// LWW-Register (Johnson and Thomas 1975) — OB, TO.
pub fn lww_register_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        commutativity::check_op_based(
            LwwRegister::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::lww_register(rng)),
        ),
        refinement::check_op_based(
            LwwRegister::<u8>::new(),
            &RegSpec::new(),
            &Identity,
            Mode::Timestamped,
            LwwRegister::<u8>::abs,
            LwwRegister::<u8>::state_timestamps,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::lww_register(rng)),
        ),
        convergence::check_op_based(
            LwwRegister::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::lww_register(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = Cluster::new(LwwRegister::<u8>::new(), N_REPLICAS);
        drive_op_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::lww_register(rng)),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = Cluster::new(LwwRegister::<u8>::new(), N_REPLICAS);
        drive_op_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::lww_register(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &RegSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        RegSpec::new(),
    );
    let (histories, history_failures) = check_histories(
        runs,
        &Identity,
        &RegSpec::new(),
        LwwRegister::<u8>::STRATEGY,
    );
    Fig12Row {
        name: "LWW-Register",
        source: "[Johnson and Thomas 1975]",
        imp: "OB",
        lin: "TO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// Multi-Value Register (DeCandia et al. 2007) — SB, EO.
pub fn mv_register_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        state_props::check_state_based(
            MvRegister::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::mv_register(rng)),
        ),
        convergence::check_state_based(
            MvRegister::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::mv_register(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = StateCluster::new(MvRegister::<u8>::new(), N_REPLICAS);
        drive_state_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::mv_register(rng)),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = StateCluster::new(MvRegister::<u8>::new(), N_REPLICAS);
        drive_state_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::mv_register(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &MvRegSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        MvRegSpec::new(),
    );
    let (histories, history_failures) = check_histories(
        runs,
        &Identity,
        &MvRegSpec::new(),
        MvRegister::<u8>::STRATEGY,
    );
    Fig12Row {
        name: "Multi-Value Reg.",
        source: "[DeCandia et al. 2007]",
        imp: "SB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// LWW-Element-Set (Shapiro et al. 2011) — SB, TO.
pub fn lww_element_set_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        state_props::check_state_based(
            LwwElementSet::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        ),
        convergence::check_state_based(
            LwwElementSet::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = StateCluster::new(LwwElementSet::<u8>::new(), N_REPLICAS);
        drive_state_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = StateCluster::new(LwwElementSet::<u8>::new(), N_REPLICAS);
        drive_state_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::lww_element_set(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &SetSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        SetSpec::new(),
    );
    let (histories, history_failures) = check_histories(
        runs,
        &Identity,
        &SetSpec::new(),
        LwwElementSet::<u8>::STRATEGY,
    );
    Fig12Row {
        name: "LWW-Element Set",
        source: "[Shapiro et al. 2011]",
        imp: "SB",
        lin: "TO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// 2P-Set (Shapiro et al. 2011) — SB, EO.
pub fn two_phase_set_row(histories: u64, seed0: u64) -> Fig12Row {
    let mut next = 0;
    let mut next_sec = 0;
    let obligations = vec![
        state_props::check_state_based(
            TwoPhaseSet::<u16>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            move |rng, _, st| workloads::two_phase_set(rng, st, &mut next),
        ),
        convergence::check_state_based(
            TwoPhaseSet::<u16>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            move |rng, _, st| workloads::two_phase_set(rng, st, &mut next_sec),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = StateCluster::new(TwoPhaseSet::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        drive_state_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, st| workloads::two_phase_set(rng, st, &mut next),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = StateCluster::new(TwoPhaseSet::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        drive_state_based(&mut c, &search_cfg(), seed, |rng, _, st| {
            workloads::two_phase_set(rng, st, &mut next)
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &SetSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        SetSpec::new(),
    );
    let (histories, history_failures) = check_histories(
        runs,
        &Identity,
        &SetSpec::new(),
        TwoPhaseSet::<u16>::STRATEGY,
    );
    Fig12Row {
        name: "2P-Set",
        source: "[Shapiro et al. 2011]",
        imp: "SB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// OR-Set (Shapiro et al. 2011) — OB, EO (with the query-update rewriting).
pub fn or_set_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        commutativity::check_op_based(
            OrSet::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::or_set(rng)),
        ),
        refinement::check_op_based(
            OrSet::<u8>::new(),
            &OrSetSpec::new(),
            &OrSetRewrite::new(),
            Mode::Plain,
            OrSet::<u8>::abs,
            |_| vec![],
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::or_set(rng)),
        ),
        convergence::check_op_based(
            OrSet::<u8>::new(),
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            |rng, _, _| Some(workloads::or_set(rng)),
        ),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = Cluster::new(OrSet::<u8>::new(), N_REPLICAS);
        drive_op_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, _| Some(workloads::or_set(rng)),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = Cluster::new(OrSet::<u8>::new(), N_REPLICAS);
        drive_op_based(&mut c, &search_cfg(), seed, |rng, _, _| {
            Some(workloads::or_set(rng))
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        OrSetRewrite::new(),
        OrSetSpec::new(),
    );
    let (histories, history_failures) = check_histories(
        runs,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        OrSet::<u8>::STRATEGY,
    );
    Fig12Row {
        name: "OR-Set",
        source: "[Shapiro et al. 2011]",
        imp: "OB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// RGA (Roh et al. 2011) — OB, TO.
pub fn rga_row(histories: u64, seed0: u64) -> Fig12Row {
    let obligations = vec![
        commutativity::check_op_based(Rga::<u16>::new(), N_REPLICAS, STEPS, OBLIGATION_SEEDS, {
            let mut next = 0;
            move |rng, _, st| workloads::rga(rng, st, &mut next)
        }),
        refinement::check_op_based(
            Rga::<u16>::new(),
            &RgaSpec::new(),
            &Identity,
            Mode::Timestamped,
            Rga::<u16>::abs,
            Rga::<u16>::state_timestamps,
            N_REPLICAS,
            STEPS,
            OBLIGATION_SEEDS,
            {
                let mut next = 0;
                move |rng, _, st| workloads::rga(rng, st, &mut next)
            },
        ),
        convergence::check_op_based(Rga::<u16>::new(), N_REPLICAS, STEPS, OBLIGATION_SEEDS, {
            let mut next = 0;
            move |rng, _, st| workloads::rga(rng, st, &mut next)
        }),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = Cluster::new(Rga::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        drive_op_based(
            &mut c,
            &ScheduleConfig::default(),
            seed0 + i,
            |rng, _, st| workloads::rga(rng, st, &mut next),
        );
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = Cluster::new(Rga::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        drive_op_based(&mut c, &search_cfg(), seed, |rng, _, st| {
            workloads::rga(rng, st, &mut next)
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &RgaSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        RgaSpec::new(),
    );
    let (histories, history_failures) =
        check_histories(runs, &Identity, &RgaSpec::new(), Rga::<u16>::STRATEGY);
    Fig12Row {
        name: "RGA",
        source: "[Roh et al. 2011]",
        imp: "OB",
        lin: "TO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// Wooki (Weiss et al. 2007) — OB, EO. Histories are kept small: the
/// nondeterministic specification makes checking exponential in the number
/// of concurrent inserts.
pub fn wooki_row(histories: u64, seed0: u64) -> Fig12Row {
    let wooki_cfg = ScheduleConfig {
        steps: 24,
        invoke_weight: 1,
        deliver_weight: 2,
        final_sync: true,
    };
    let obligations = vec![
        commutativity::check_op_based(Wooki::<u16>::new(), N_REPLICAS, 24, OBLIGATION_SEEDS, {
            let mut next = 0;
            move |rng, _, st| workloads::wooki(rng, st, &mut next, 10)
        }),
        refinement::check_op_based(
            Wooki::<u16>::new(),
            &WookiSpec::new(),
            &Identity,
            Mode::Plain,
            Wooki::<u16>::abs,
            |_| vec![],
            N_REPLICAS,
            24,
            OBLIGATION_SEEDS,
            {
                let mut next = 0;
                move |rng, _, st| workloads::wooki(rng, st, &mut next, 10)
            },
        ),
        convergence::check_op_based(Wooki::<u16>::new(), N_REPLICAS, 24, OBLIGATION_SEEDS, {
            let mut next = 0;
            move |rng, _, st| workloads::wooki(rng, st, &mut next, 10)
        }),
    ];
    let runs = (0..histories).map(|i| {
        let mut c = Cluster::new(Wooki::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        drive_op_based(&mut c, &wooki_cfg, seed0 + i, |rng, _, st| {
            workloads::wooki(rng, st, &mut next, 8)
        });
        c.into_history()
    });
    let search_history = |seed: u64| {
        let mut c = Cluster::new(Wooki::<u16>::new(), N_REPLICAS);
        let mut next = 0;
        // Wooki's nondeterministic specification makes even the memoized
        // search (and per-shard searches) exponential in concurrent
        // inserts: keep these mid-size.
        let cfg = ScheduleConfig {
            steps: 14,
            invoke_weight: 1,
            deliver_weight: 2,
            final_sync: true,
        };
        drive_op_based(&mut c, &cfg, seed, |rng, _, st| {
            workloads::wooki(rng, st, &mut next, 5)
        });
        c.into_history()
    };
    let (searched, search_failures) = search_histories(
        (0..histories).map(|i| search_history(seed0 + SEARCH_SEED_OFFSET + i)),
        &Identity,
        &WookiSpec::new(),
    );
    let (sharded, sharded_failures) = sharded_search_histories(
        histories,
        |seed| search_history(seed0 + seed),
        Identity,
        WookiSpec::new(),
    );
    let (histories, history_failures) =
        check_histories(runs, &Identity, &WookiSpec::new(), Wooki::<u16>::STRATEGY);
    Fig12Row {
        name: "Wooki",
        source: "[Weiss et al. 2007]",
        imp: "OB",
        lin: "EO",
        obligations,
        histories,
        history_failures,
        searched,
        search_failures,
        sharded,
        sharded_failures,
    }
}

/// Produces all nine rows of Figure 12, in the paper's order.
pub fn fig12_rows(histories_per_type: u64, seed0: u64) -> Vec<Fig12Row> {
    vec![
        counter_row(histories_per_type, seed0),
        pn_counter_row(histories_per_type, seed0),
        lww_register_row(histories_per_type, seed0),
        mv_register_row(histories_per_type, seed0),
        lww_element_set_row(histories_per_type, seed0),
        two_phase_set_row(histories_per_type, seed0),
        or_set_row(histories_per_type, seed0),
        rga_row(histories_per_type, seed0),
        wooki_row(histories_per_type, seed0),
    ]
}

/// Renders the rows in the layout of Figure 12, with verification columns
/// appended.
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "CRDT               | Source                      | Imp | Lin | Obligations | Histories | Searched | Sharded | Verdict\n",
    );
    out.push_str(
        "-------------------+-----------------------------+-----+-----+-------------+-----------+----------+---------+--------\n",
    );
    for row in rows {
        let checks: u64 = row.obligations.iter().map(|o| o.checks).sum();
        let verdict = if row.verified() { "OK" } else { "FAIL" };
        out.push_str(&format!(
            "{:<18} | {:<27} | {:<3} | {:<3} | {:>11} | {:>9} | {:>8} | {:>7} | {}\n",
            row.name,
            row.source,
            row.imp,
            row.lin,
            checks,
            row.histories,
            row.searched,
            row.sharded,
            verdict
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_verify_quickly() {
        let rows = fig12_rows(3, 1000);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.verified(),
                "{} failed: {:?}",
                row.name,
                row.obligations
                    .iter()
                    .filter(|o| !o.ok())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn render_matches_paper_classification() {
        let rows = fig12_rows(1, 2000);
        let table = render_fig12(&rows);
        // The paper's Figure 12 classification, row by row.
        for expected in [
            "Counter",
            "PN-Counter",
            "LWW-Register",
            "Multi-Value Reg.",
            "LWW-Element Set",
            "2P-Set",
            "OR-Set",
            "RGA",
            "Wooki",
        ] {
            assert!(table.contains(expected), "missing row {expected}");
        }
        let classes: Vec<(&str, &str, &str)> = vec![
            ("Counter", "OB", "EO"),
            ("PN-Counter", "SB", "EO"),
            ("LWW-Register", "OB", "TO"),
            ("Multi-Value Reg.", "SB", "EO"),
            ("LWW-Element Set", "SB", "TO"),
            ("2P-Set", "SB", "EO"),
            ("OR-Set", "OB", "EO"),
            ("RGA", "OB", "TO"),
            ("Wooki", "OB", "EO"),
        ];
        for (row, (name, imp, lin)) in rows.iter().zip(classes) {
            assert_eq!(row.name, name);
            assert_eq!(row.imp, imp);
            assert_eq!(row.lin, lin);
        }
    }
}
