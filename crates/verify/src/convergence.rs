//! Strong eventual consistency (SEC) as a checkable obligation.
//!
//! Section 7: RA-linearizability implies a unique total order of updates,
//! hence "if at some point all updates are visible to all replicas, all
//! subsequent query operations at any replica will return the same value" —
//! observably strong eventual consistency. At the state level this is
//! Lemma 4.2's consequence: replicas that have applied the *same set* of
//! operations are in the *same state*, not just after full delivery but at
//! every intermediate instant.

use crate::report::Report;
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_runtime::op_based::{Cluster, OpBased};
use ral_runtime::state_based::{StateBased, StateCluster};
use std::ops::Range;

/// Checks SEC for an operation-based CRDT: along random executions, any two
/// replicas with equal applied sets hold equal states, and full delivery
/// converges.
pub fn check_op_based<C, F>(
    crdt: C,
    n_replicas: usize,
    steps: usize,
    seeds: Range<u64>,
    mut call_gen: F,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut report = Report::new("StrongEventualConsistency");
    for seed in seeds {
        let mut cluster = Cluster::new(crdt.clone(), n_replicas);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..steps {
            let r = ReplicaId(rng.random_range(0..n_replicas) as u32);
            if rng.random_bool(0.6) {
                if let Some(call) = call_gen(&mut rng, r, cluster.state(r)) {
                    cluster.invoke(r, call);
                }
            } else {
                let ds = cluster.deliverable(r);
                if !ds.is_empty() {
                    let d = ds[rng.random_range(0..ds.len())];
                    cluster.deliver(r, d);
                }
            }
            check_equal_views_equal_states(&cluster, &mut report);
        }
        cluster.deliver_all();
        if cluster.converged() {
            report.pass();
        } else {
            report.fail(format!("seed {seed}: no convergence after full delivery"));
        }
    }
    report
}

fn check_equal_views_equal_states<C: OpBased>(cluster: &Cluster<C>, report: &mut Report) {
    for a in 0..cluster.n_replicas() {
        for b in a + 1..cluster.n_replicas() {
            let (ra, rb) = (ReplicaId(a as u32), ReplicaId(b as u32));
            if cluster.seen(ra) == cluster.seen(rb) {
                if cluster.state(ra) == cluster.state(rb) {
                    report.pass();
                } else {
                    report.fail(format!(
                        "replicas {ra} and {rb} saw the same operations but diverged"
                    ));
                }
            }
        }
    }
}

/// Checks SEC for a state-based CRDT under the unreliable network: one full
/// synchronization round converges whatever loss/duplication/reordering
/// preceded it.
pub fn check_state_based<C, F>(
    crdt: C,
    n_replicas: usize,
    steps: usize,
    seeds: Range<u64>,
    mut call_gen: F,
) -> Report
where
    C: StateBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut report = Report::new("StrongEventualConsistency");
    for seed in seeds {
        let mut cluster = StateCluster::new(crdt.clone(), n_replicas);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..steps {
            let r = ReplicaId(rng.random_range(0..n_replicas) as u32);
            match rng.random_range(0..4u8) {
                0 | 1 => {
                    if let Some(call) = call_gen(&mut rng, r, cluster.state(r)) {
                        cluster.invoke(r, call);
                    }
                }
                2 => {
                    cluster.send(r);
                }
                _ => {
                    if cluster.n_messages() > 0 {
                        let m = rng.random_range(0..cluster.n_messages());
                        cluster.apply(r, m);
                    }
                }
            }
        }
        if !cluster.check_lattice_laws() {
            report.fail(format!("seed {seed}: lattice laws violated"));
        } else {
            report.pass();
        }
        cluster.sync_all();
        if cluster.converged() {
            report.pass();
        } else {
            report.fail(format!("seed {seed}: no convergence after sync round"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use ral_crdts::op::or_set::OrSet;
    use ral_crdts::state::pn_counter::PnCounter;
    use ral_runtime::gen::{GenCtx, GenOutcome};

    #[test]
    fn or_set_satisfies_sec() {
        let report = check_op_based(OrSet::<u8>::new(), 3, 40, 0..5, |rng, _, _| {
            Some(workloads::or_set(rng))
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn pn_counter_satisfies_sec() {
        let report = check_state_based(PnCounter, 3, 40, 0..5, |rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
        assert!(report.ok(), "{report}");
    }

    /// A CRDT whose effector depends on arrival order: SEC must fail.
    #[derive(Clone)]
    struct LastArrival;

    impl OpBased for LastArrival {
        type State = i64;
        type Call = i64;
        type Ret = ();
        type Eff = i64;
        type Label = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, _st: &i64, call: &i64, _ctx: &mut GenCtx) -> GenOutcome<(), i64> {
            GenOutcome::update((), *call)
        }
        fn apply(&self, st: &mut i64, eff: &i64) {
            *st = *eff;
        }
        fn label(&self, call: &i64, _ret: &()) -> i64 {
            *call
        }
    }

    #[test]
    fn arrival_order_dependence_is_caught() {
        let report = check_op_based(LastArrival, 3, 40, 0..10, |rng, _, _| {
            Some(rng.random_range(0..100))
        });
        assert!(!report.ok(), "order-dependent effectors must fail SEC");
    }
}
