//! The **Commutativity** obligation (Section 4.1): effectors of concurrent
//! operations commute.
//!
//! The paper's Boogie proofs encode two effectors as one procedure run on
//! two copies of a symbolic replica state, with preconditions capturing
//! concurrency (e.g. the OR-Set `remove` argument not containing the
//! concurrent `add`'s identifier — Example 4.1). Here the obligation is
//! checked on *reachable* configurations: whenever two pending effectors of
//! concurrent operations are simultaneously deliverable at a replica, both
//! application orders must yield the same state.

use crate::report::Report;
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_runtime::op_based::{Cluster, OpBased};
use std::ops::Range;

/// Checks Commutativity for an operation-based CRDT over seeded random
/// executions.
///
/// At every scheduler step and every replica, each pair of simultaneously
/// deliverable effectors (necessarily of concurrent operations, by causal
/// delivery) is applied to a copy of the replica state in both orders.
pub fn check_op_based<C, F>(
    crdt: C,
    n_replicas: usize,
    steps: usize,
    seeds: Range<u64>,
    mut call_gen: F,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut report = Report::new("Commutativity");
    for seed in seeds {
        let mut cluster = Cluster::new(crdt.clone(), n_replicas);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..steps {
            let r = ReplicaId(rng.random_range(0..n_replicas) as u32);
            if rng.random_bool(0.6) {
                if let Some(call) = call_gen(&mut rng, r, cluster.state(r)) {
                    cluster.invoke(r, call);
                }
            } else {
                let ds = cluster.deliverable(r);
                if !ds.is_empty() {
                    let d = ds[rng.random_range(0..ds.len())];
                    cluster.deliver(r, d);
                }
            }
            check_pending_pairs(&cluster, &mut report);
        }
        cluster.deliver_all();
        if !cluster.converged() {
            report.fail(format!("seed {seed}: replicas did not converge"));
        } else {
            report.pass();
        }
    }
    report
}

fn check_pending_pairs<C: OpBased>(cluster: &Cluster<C>, report: &mut Report) {
    let h = cluster.history();
    for r in 0..cluster.n_replicas() {
        let r = ReplicaId(r as u32);
        let ds = cluster.deliverable(r);
        for (i, &d1) in ds.iter().enumerate() {
            for &d2 in &ds[i + 1..] {
                let (op1, op2) = (cluster.delivery_op(d1), cluster.delivery_op(d2));
                debug_assert!(
                    h.concurrent(op1, op2),
                    "simultaneously deliverable effectors must be concurrent"
                );
                let (Some(e1), Some(e2)) = (cluster.delivery_eff(d1), cluster.delivery_eff(d2))
                else {
                    continue; // identity effectors trivially commute
                };
                let crdt = cluster.crdt();
                let mut one_two = cluster.state(r).clone();
                crdt.apply(&mut one_two, e1);
                crdt.apply(&mut one_two, e2);
                let mut two_one = cluster.state(r).clone();
                crdt.apply(&mut two_one, e2);
                crdt.apply(&mut two_one, e1);
                if one_two == two_one {
                    report.pass();
                } else {
                    report.fail(format!(
                        "effectors of operations {op1} and {op2} do not commute at {r}: \
                         {one_two:?} vs {two_one:?}"
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_runtime::gen::{GenCtx, GenOutcome};

    /// A broken "set last writer" CRDT whose effectors do NOT commute.
    #[derive(Clone)]
    struct Broken;

    impl OpBased for Broken {
        type State = i64;
        type Call = i64;
        type Ret = ();
        type Eff = i64;
        type Label = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, _st: &i64, call: &i64, _ctx: &mut GenCtx) -> GenOutcome<(), i64> {
            GenOutcome::update((), *call)
        }
        fn apply(&self, st: &mut i64, eff: &i64) {
            *st = *eff; // last writer wins by arrival order: not commutative
        }
        fn label(&self, call: &i64, _ret: &()) -> i64 {
            *call
        }
    }

    /// A max-register whose effectors DO commute.
    #[derive(Clone)]
    struct MaxReg;

    impl OpBased for MaxReg {
        type State = i64;
        type Call = i64;
        type Ret = ();
        type Eff = i64;
        type Label = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, _st: &i64, call: &i64, _ctx: &mut GenCtx) -> GenOutcome<(), i64> {
            GenOutcome::update((), *call)
        }
        fn apply(&self, st: &mut i64, eff: &i64) {
            *st = (*st).max(*eff);
        }
        fn label(&self, call: &i64, _ret: &()) -> i64 {
            *call
        }
    }

    #[test]
    fn detects_non_commutative_effectors() {
        let report = check_op_based(Broken, 3, 30, 0..5, |rng, _, _| {
            Some(rng.random_range(0..100))
        });
        assert!(!report.ok(), "the broken CRDT must be refuted");
    }

    #[test]
    fn accepts_commutative_effectors() {
        let report = check_op_based(MaxReg, 3, 30, 0..5, |rng, _, _| {
            Some(rng.random_range(0..100))
        });
        assert!(report.ok(), "{report}");
        assert!(report.checks > 50, "enough pairs must be exercised");
    }
}
