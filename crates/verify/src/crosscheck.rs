//! Checker cross-check oracles: one history, several independent deciders,
//! one combined verdict.
//!
//! The fuzzer (and anything else generating adversarial histories) does not
//! just want "is this linearizable?" — it wants to know when the *checkers
//! themselves* disagree. A complete memoized search refuting a history that
//! the brute-force reference accepts (or a sharded compositional verdict
//! diverging from the whole-history search) is a checker bug worth a shrunk
//! counterexample every bit as much as a genuine RA-linearizability
//! violation. These helpers run the deciders side by side and fold their
//! outcomes into one [`HistoryVerdict`].

use ral_core::compose::ComposedLabel;
use ral_core::history::{rewrite_history, History};
use ral_core::label::Rewrite;
use ral_core::ralin::{
    monitor_history, ra_check, ra_search_brute, ra_search_sharded_with_budget,
    ra_search_with_budget, search_with_budget, SearchOutcome, ShardableSpec, Strategy, Verdict,
};
use ral_core::spec::Spec;

/// Histories at or below this many operations also get the factorial
/// brute-force reference check (8! orders is still instant; 9! is not).
pub const BRUTE_CAP: usize = 8;

/// The combined verdict of all deciders on one history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryVerdict {
    /// Every decider that finished agrees the history is RA-linearizable.
    Linearizable,
    /// The complete search found a linearization but the guided strategy
    /// missed it — not a soundness bug (the strategies are heuristics), but
    /// worth counting: it maps the strategies' blind spots.
    StrategyMiss,
    /// The complete search proved no RA-linearization exists.
    Refuted {
        /// Human-readable account of which decider refuted and why.
        detail: String,
    },
    /// Two deciders reached *contradictory* definite verdicts — a checker
    /// bug, the most valuable find a fuzzer can make.
    Disagreement {
        /// Which deciders disagreed and how.
        detail: String,
    },
    /// Every complete decider ran out of budget before deciding.
    Undecided,
}

fn outcome_name(o: &SearchOutcome) -> &'static str {
    match o {
        SearchOutcome::Linearizable(_) => "linearizable",
        SearchOutcome::NotLinearizable => "not-linearizable",
        SearchOutcome::BudgetExhausted => "budget-exhausted",
    }
}

/// Cross-checks a single-object history: guided strategy vs the complete
/// memoized search, plus the brute-force reference on histories small
/// enough ([`BRUTE_CAP`]).
pub fn op_oracle<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
    strategy: Strategy,
    budget: u64,
) -> HistoryVerdict
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let guided_ok = ra_check(h, rw, spec, strategy).is_ok();
    let searched = ra_search_with_budget(h, rw, spec, budget);
    let memo = search_with_budget(&rewrite_history(h, rw).history, spec, budget);
    if definite_disagreement(&searched, &memo) {
        return HistoryVerdict::Disagreement {
            detail: format!(
                "monitor batch closure says {} but memo search says {} on {} ops",
                outcome_name(&searched),
                outcome_name(&memo),
                h.len()
            ),
        };
    }
    let (streamed, _) = monitor_history(h, rw, spec);
    if let Some(detail) = streaming_disagreement(streamed, &searched, h.len()) {
        return HistoryVerdict::Disagreement { detail };
    }
    if h.len() <= BRUTE_CAP {
        let brute = ra_search_brute(h, rw, spec);
        if definite_disagreement(&searched, &brute) {
            return HistoryVerdict::Disagreement {
                detail: format!(
                    "memo search says {} but brute-force reference says {} on {} ops",
                    outcome_name(&searched),
                    outcome_name(&brute),
                    h.len()
                ),
            };
        }
    }
    match searched {
        SearchOutcome::Linearizable(_) if guided_ok => HistoryVerdict::Linearizable,
        SearchOutcome::Linearizable(_) => HistoryVerdict::StrategyMiss,
        SearchOutcome::NotLinearizable if guided_ok => HistoryVerdict::Disagreement {
            detail: format!(
                "guided {strategy:?} validated a witness but the complete search \
                 refutes the {}-op history",
                h.len()
            ),
        },
        SearchOutcome::NotLinearizable => HistoryVerdict::Refuted {
            detail: format!("no RA-linearization of the {}-op history exists", h.len()),
        },
        SearchOutcome::BudgetExhausted => HistoryVerdict::Undecided,
    }
}

/// Cross-checks a composed (multi-object) history: the sharded
/// compositional search (§5 soundness route) against the whole-history
/// memoized search. Both are complete, so any definite split verdict is a
/// checker bug.
pub fn composed_oracle<In, R, S>(h: &History<In>, rw: &R, spec: &S, budget: u64) -> HistoryVerdict
where
    R: Rewrite<In, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let sharded = ra_search_sharded_with_budget(h, rw, spec, budget);
    let memo = ra_search_with_budget(h, rw, spec, budget);
    if definite_disagreement(&sharded, &memo) {
        return HistoryVerdict::Disagreement {
            detail: format!(
                "sharded search says {} but whole-history search says {} on {} ops",
                outcome_name(&sharded),
                outcome_name(&memo),
                h.len()
            ),
        };
    }
    let (streamed, _) = monitor_history(h, rw, spec);
    if let Some(detail) = streaming_disagreement(streamed, &memo, h.len()) {
        return HistoryVerdict::Disagreement { detail };
    }
    match (sharded, memo) {
        (SearchOutcome::Linearizable(_), _) | (_, SearchOutcome::Linearizable(_)) => {
            HistoryVerdict::Linearizable
        }
        (SearchOutcome::NotLinearizable, _) | (_, SearchOutcome::NotLinearizable) => {
            HistoryVerdict::Refuted {
                detail: format!(
                    "no RA-linearization of the {}-op composed history exists",
                    h.len()
                ),
            }
        }
        (SearchOutcome::BudgetExhausted, SearchOutcome::BudgetExhausted) => {
            HistoryVerdict::Undecided
        }
    }
}

/// A definite end-of-stream monitor verdict contradicting a definite batch
/// outcome. After the whole history has streamed through, the monitor's
/// eager closure is complete, so [`Verdict::Ok`] means a linearization
/// exists and [`Verdict::Deferred`] / [`Verdict::Violated`] mean none does;
/// [`Verdict::Exhausted`] (the streaming live-config cap) is not a verdict
/// and never disagrees — like batch budget exhaustion, it only counts as
/// undecided.
fn streaming_disagreement(v: Verdict, batch: &SearchOutcome, n: usize) -> Option<String> {
    match (v, batch) {
        (Verdict::Ok, SearchOutcome::NotLinearizable) => Some(format!(
            "streaming monitor accepts the {n}-op history but the batch search refutes it"
        )),
        (Verdict::Deferred | Verdict::Violated, SearchOutcome::Linearizable(_)) => Some(format!(
            "streaming monitor says {v:?} but the batch search found a witness on {n} ops"
        )),
        _ => None,
    }
}

/// Two definite outcomes that contradict each other (budget exhaustion is
/// not a verdict, so it never disagrees with anything).
fn definite_disagreement(a: &SearchOutcome, b: &SearchOutcome) -> bool {
    matches!(
        (a, b),
        (
            SearchOutcome::Linearizable(_),
            SearchOutcome::NotLinearizable
        ) | (
            SearchOutcome::NotLinearizable,
            SearchOutcome::Linearizable(_)
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use ral_core::compose::{MultiObjRewrite, MultiObjSpec};
    use ral_core::ids::{ObjId, ReplicaId};
    use ral_core::label::Identity;
    use ral_core::rng::Rng;
    use ral_crdts::op::counter::OpCounter;
    use ral_crdts::op::lww_register::LwwRegister;
    use ral_runtime::multi::{MultiCluster, TsMode};
    use ral_sim::driver::{Driver, OpDriver};
    use ral_sim::{scenario, sim};
    use ral_spec::counter::CounterSpec;
    use ral_spec::register::RegSpec;

    #[test]
    fn healthy_scenario_history_is_linearizable() {
        let sc = scenario::split_brain_heal();
        let mut driver = OpDriver::new(OpCounter, sc.cfg.n_replicas, |rng: &mut Rng, _, _| {
            Some(workloads::counter(rng))
        });
        sim::run(&mut driver, &sc.cfg, 0);
        assert!(driver.converged());
        let h = driver.into_cluster().into_history();
        let verdict = op_oracle(
            &h,
            &Identity,
            &CounterSpec,
            Strategy::ExecutionOrder,
            2_000_000,
        );
        assert_eq!(verdict, HistoryVerdict::Linearizable);
    }

    #[test]
    fn composed_oracle_agrees_on_healthy_history() {
        let mut cluster = MultiCluster::new(LwwRegister::<u8>::new(), 3, 2, TsMode::Shared);
        let mut rng = Rng::seed_from_u64(9);
        for step in 0..10u32 {
            let r = ReplicaId(step % 2);
            let obj = ObjId(step % 3);
            cluster
                .invoke(r, obj, workloads::lww_register(&mut rng))
                .unwrap();
        }
        cluster.deliver_all();
        let h = cluster.into_history();
        let verdict = composed_oracle(
            &h,
            &MultiObjRewrite::new(Identity),
            &MultiObjSpec::new(RegSpec::new(), 3),
            2_000_000,
        );
        assert_eq!(verdict, HistoryVerdict::Linearizable);
    }
}
