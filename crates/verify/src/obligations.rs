//! The Figure-12-style **obligation table**: one row per (data type ×
//! proof obligation × scope bound), with the verdict of the
//! bounded-exhaustive analyzer.
//!
//! Figure 12 of the paper summarizes, per CRDT, which obligations its
//! RA-linearizability proof discharges. `ral-analyze` re-discharges those
//! obligations exhaustively over every configuration reachable within a
//! small scope; this module renders its results in the same tabular shape
//! so the two artifacts can be read side by side. The renderer lives here
//! (not in `ral-analyze`) so `ral-verify` remains the one crate that owns
//! the paper's presentation artifacts — the analyzer depends on it, never
//! the other way around.

use std::fmt::Write as _;

/// The verdict of one obligation row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every configuration within the scope bound satisfies the obligation.
    Discharged,
    /// A counterexample was found (and shrunk) — the gate fails.
    Refuted,
    /// A counterexample was found on a *negative fixture*, where finding
    /// one is the expected outcome — the gate passes.
    RefutedExpected,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Discharged => "discharged",
            Verdict::Refuted => "REFUTED",
            Verdict::RefutedExpected => "refuted (expected)",
        }
    }
}

/// One row of the obligation table.
#[derive(Clone, Debug)]
pub struct ObligationRow {
    /// Data type (or composition) the row is about.
    pub type_name: String,
    /// Replication style: `"op"`, `"state"`, or `"composed"`.
    pub style: String,
    /// Obligation identifier (e.g. `effector-commutativity`,
    /// `prop4-lattice`, `ts-shared-discipline`).
    pub obligation: String,
    /// The scope bound `k` (max update operations) of the search.
    pub scope: usize,
    /// Number of individual checks performed for this obligation.
    pub checks: u64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Renders rows as an aligned text table, Figure-12 style.
pub fn render_obligation_table(rows: &[ObligationRow]) -> String {
    let headers = ["Type", "Style", "Obligation", "Scope", "Checks", "Verdict"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    let cells: Vec<[String; 6]> = rows
        .iter()
        .map(|r| {
            [
                r.type_name.clone(),
                r.style.clone(),
                r.obligation.clone(),
                r.scope.to_string(),
                r.checks.to_string(),
                r.verdict.as_str().to_string(),
            ]
        })
        .collect();
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cols: &[&str]| {
        for (i, (col, w)) in cols.iter().zip(&widths).enumerate() {
            let pad = w - col.chars().count();
            let _ = write!(
                out,
                "{}{}{}",
                if i > 0 { "  " } else { "" },
                col,
                " ".repeat(pad)
            );
        }
        // Trailing spaces trimmed per line.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, &headers);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(
        &mut out,
        &rule.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut prev_type = "";
    for (row, r) in cells.iter().zip(rows) {
        // Repeat the type name only on its first row, Figure-12 style.
        let type_col = if r.type_name == prev_type {
            ""
        } else {
            &row[0]
        };
        prev_type = &r.type_name;
        write_row(
            &mut out,
            &[type_col, &row[1], &row[2], &row[3], &row[4], &row[5]],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ty: &str, ob: &str, verdict: Verdict) -> ObligationRow {
        ObligationRow {
            type_name: ty.to_string(),
            style: "op".to_string(),
            obligation: ob.to_string(),
            scope: 3,
            checks: 42,
            verdict,
        }
    }

    #[test]
    fn table_aligns_and_groups_by_type() {
        let rows = vec![
            row("OpCounter", "effector-commutativity", Verdict::Discharged),
            row("OpCounter", "ts-discipline", Verdict::Discharged),
            row(
                "BrokenCounter",
                "effector-commutativity",
                Verdict::RefutedExpected,
            ),
        ];
        let table = render_obligation_table(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("Type"));
        assert!(lines[1].starts_with("----"));
        // Second OpCounter row elides the repeated type name.
        assert!(lines[3].starts_with(' '));
        assert!(table.contains("refuted (expected)"));
        // All rows align: each line has the Verdict column at one offset.
        let off = lines[0].find("Verdict").unwrap();
        assert!(lines[2].len() > off && lines[4].len() > off);
    }
}
