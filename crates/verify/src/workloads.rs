//! Reusable random workload generators, one per CRDT.
//!
//! Each generator produces the next call for a replica given its current
//! state; they respect the client obligations the paper assumes (fresh list
//! elements, no double 2P-Set adds, anchors taken from the local view).

use ral_core::rng::Rng;
use ral_crdts::op::counter::CounterCall;
use ral_crdts::op::lww_register::RegCall;
use ral_crdts::op::or_set::OrSetCall;
use ral_crdts::op::rga::{RgaCall, RgaState};
use ral_crdts::op::rga_addat::AddAtCall;
use ral_crdts::op::wooki::{WookiCall, WookiState};
use ral_crdts::state::lww_element_set::LwwSetCall;
use ral_crdts::state::mv_register::MvCall;
use ral_crdts::state::pn_counter::PnCall;
use ral_crdts::state::two_phase_set::{TwoPCall, TwoPState};
use ral_spec::rga::Anchor;
use ral_spec::wooki::WookiAnchor;

/// Counter workload: inc/dec/read.
pub fn counter(rng: &mut Rng) -> CounterCall {
    match rng.random_range(0..3u8) {
        0 => CounterCall::Inc,
        1 => CounterCall::Dec,
        _ => CounterCall::Read,
    }
}

/// LWW-Register workload over a small value domain.
pub fn lww_register(rng: &mut Rng) -> RegCall<u8> {
    if rng.random_bool(0.5) {
        RegCall::Write(rng.random_range(0..4))
    } else {
        RegCall::Read
    }
}

/// OR-Set workload over a small element domain (collisions intended).
pub fn or_set(rng: &mut Rng) -> OrSetCall<u8> {
    match rng.random_range(0..4u8) {
        0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
        2 => OrSetCall::Remove(rng.random_range(0..3)),
        _ => OrSetCall::Read,
    }
}

/// RGA workload: fresh elements, anchors picked from the local view.
/// `next` supplies globally fresh element names.
pub fn rga(rng: &mut Rng, state: &RgaState<u16>, next: &mut u16) -> Option<RgaCall<u16>> {
    let roll: u8 = rng.random_range(0..10);
    if roll < 5 {
        let visible = state.visible();
        let anchor = if visible.is_empty() || rng.random_bool(0.3) {
            Anchor::Head
        } else {
            Anchor::Elem(visible[rng.random_range(0..visible.len())])
        };
        *next += 1;
        Some(RgaCall::AddAfter(anchor, *next))
    } else if roll < 7 {
        let visible = state.visible();
        if visible.is_empty() {
            None
        } else {
            Some(RgaCall::Remove(visible[rng.random_range(0..visible.len())]))
        }
    } else {
        Some(RgaCall::Read)
    }
}

/// RGA-addAt workload: fresh elements, arbitrary indices.
pub fn rga_addat(rng: &mut Rng, state: &RgaState<u16>, next: &mut u16) -> Option<AddAtCall<u16>> {
    let roll: u8 = rng.random_range(0..10);
    if roll < 5 {
        *next += 1;
        Some(AddAtCall::AddAt(*next, rng.random_range(0..5)))
    } else if roll < 7 {
        let visible = state.visible();
        if visible.is_empty() {
            None
        } else {
            Some(AddAtCall::Remove(
                visible[rng.random_range(0..visible.len())],
            ))
        }
    } else {
        Some(AddAtCall::Read)
    }
}

/// Wooki workload: fresh elements between anchors from the local W-string.
/// `limit` caps insertions (the nondeterministic specification makes
/// checking exponential in concurrent inserts).
pub fn wooki(
    rng: &mut Rng,
    state: &WookiState<u16>,
    next: &mut u16,
    limit: u16,
) -> Option<WookiCall<u16>> {
    let roll: u8 = rng.random_range(0..10);
    if roll < 4 && *next < limit {
        let all = state.all_values();
        let (left, right) = if all.is_empty() {
            (WookiAnchor::Begin, WookiAnchor::End)
        } else {
            let i = rng.random_range(0..=all.len());
            let j = rng.random_range(i..=all.len());
            let left = if i == 0 {
                WookiAnchor::Begin
            } else {
                WookiAnchor::Elem(all[i - 1])
            };
            let right = if j == all.len() {
                WookiAnchor::End
            } else {
                WookiAnchor::Elem(all[j])
            };
            (left, right)
        };
        *next += 1;
        Some(WookiCall::AddBetween(left, *next, right))
    } else if roll < 6 {
        let vis = state.visible();
        if vis.is_empty() {
            None
        } else {
            Some(WookiCall::Remove(vis[rng.random_range(0..vis.len())]))
        }
    } else {
        Some(WookiCall::Read)
    }
}

/// PN-Counter workload.
pub fn pn_counter(rng: &mut Rng) -> PnCall {
    match rng.random_range(0..3u8) {
        0 => PnCall::Inc,
        1 => PnCall::Dec,
        _ => PnCall::Read,
    }
}

/// MV-Register workload.
pub fn mv_register(rng: &mut Rng) -> MvCall<u8> {
    if rng.random_bool(0.55) {
        MvCall::Write(rng.random_range(0..5))
    } else {
        MvCall::Read
    }
}

/// LWW-Element-Set workload (collisions intended).
pub fn lww_element_set(rng: &mut Rng) -> LwwSetCall<u8> {
    match rng.random_range(0..4u8) {
        0 | 1 => LwwSetCall::Add(rng.random_range(0..4)),
        2 => LwwSetCall::Remove(rng.random_range(0..4)),
        _ => LwwSetCall::Read,
    }
}

/// 2P-Set workload: globally fresh adds (the client obligation of
/// Listing 10), removes drawn from the visible view.
pub fn two_phase_set(
    rng: &mut Rng,
    state: &TwoPState<u16>,
    next: &mut u16,
) -> Option<TwoPCall<u16>> {
    match rng.random_range(0..4u8) {
        0 | 1 => {
            *next += 1;
            Some(TwoPCall::Add(*next))
        }
        2 => {
            let view: Vec<u16> = state.view().into_iter().collect();
            if view.is_empty() {
                None
            } else {
                Some(TwoPCall::Remove(view[rng.random_range(0..view.len())]))
            }
        }
        _ => Some(TwoPCall::Read),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_all_variants() {
        let mut rng = Rng::seed_from_u64(0);
        let mut saw_inc = false;
        let mut saw_read = false;
        for _ in 0..100 {
            match counter(&mut rng) {
                CounterCall::Inc => saw_inc = true,
                CounterCall::Read => saw_read = true,
                CounterCall::Dec => {}
            }
        }
        assert!(saw_inc && saw_read);
    }

    #[test]
    fn fresh_value_generators_are_monotone() {
        let mut rng = Rng::seed_from_u64(1);
        let state = TwoPState::default();
        let mut next = 0;
        let mut last = 0;
        for _ in 0..50 {
            if let Some(TwoPCall::Add(v)) = two_phase_set(&mut rng, &state, &mut next) {
                assert!(v > last);
                last = v;
            }
        }
        assert!(last > 0);
    }
}
