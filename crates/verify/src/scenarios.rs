//! Scenario-driven workloads: the `ral-sim` corpus wired into the harness.
//!
//! [`crate::workloads`] supplies per-CRDT call generators;
//! `ral_sim::scenario` supplies named delivery environments (geo
//! topologies, flaky WANs, rolling restarts, split brains, large gossip
//! meshes). This module runs one through the other and reports the
//! paper-level obligations that must survive the trip:
//!
//! * [`state_converges_in`] — Appendix D.2: a state-based CRDT converges
//!   (and keeps its lattice laws) whatever the network lost, duplicated,
//!   or reordered, and whatever replicas crashed back to their durable
//!   checkpoints;
//! * [`op_linearizable_in`] — Sections 3–4: an op-based CRDT's history,
//!   recorded under partitions/crashes/latency, still RA-linearizes with
//!   the strategy Figure 12 claims for it.

use crate::report::Report;
use ral_core::compose::{ComposedLabel, ObjLabel};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::Rewrite;
use ral_core::ralin::{
    ra_check, ra_search_sharded_with_budget, ra_search_with_budget, SearchOutcome, ShardableSpec,
    Strategy, Verdict,
};
use ral_core::rng::Rng;
use ral_core::spec::Spec;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::OpBased;
use ral_runtime::state_based::StateBased;
use ral_sim::driver::{Driver, MultiDriver, OpDriver, StateDriver};
use ral_sim::scenario::Scenario;
use ral_sim::{sim, MonitoredDriver};
use std::ops::Range;

/// Checks strong eventual consistency of a state-based CRDT under a named
/// scenario: for every seed, the replicas converge after the final
/// synchronization and the lattice laws hold on the surviving states.
///
/// `mk_call_gen` builds a fresh workload per seed (workloads that thread
/// fresh-value counters are rebuilt rather than shared across runs).
pub fn state_converges_in<C, F, M>(
    crdt: C,
    scenario: &Scenario,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: StateBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
{
    let mut report = Report::new(format!("Convergence@{}", scenario.name));
    for seed in seeds {
        let mut driver = StateDriver::new(crdt.clone(), scenario.cfg.n_replicas, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        if !driver.converged() {
            report.fail(format!("seed {seed}: replicas diverged after final sync"));
        } else if !driver.cluster().check_lattice_laws() {
            report.fail(format!("seed {seed}: lattice laws violated"));
        } else {
            report.pass();
        }
    }
    report
}

/// Checks RA-linearizability of an op-based CRDT under a named scenario:
/// for every seed, the cluster converges and the recorded history passes
/// `ra_check` with the given rewriting, specification, and strategy.
pub fn op_linearizable_in<C, F, M, R, S>(
    crdt: C,
    scenario: &Scenario,
    rw: &R,
    spec: &S,
    strategy: Strategy,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec,
{
    let mut report = Report::new(format!("RA-Linearizability@{}", scenario.name));
    for seed in seeds {
        let mut driver = OpDriver::new(crdt.clone(), scenario.cfg.n_replicas, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        if !driver.converged() {
            report.fail(format!("seed {seed}: replicas diverged after final sync"));
            continue;
        }
        let history = driver.into_cluster().into_history();
        match ra_check(&history, rw, spec, strategy) {
            Ok(_) => report.pass(),
            Err(v) => report.fail(format!(
                "seed {seed}: history of {} ops not RA-linearizable: {v:?}",
                history.len()
            )),
        }
    }
    report
}

/// Decides RA-linearizability of an op-based CRDT's scenario histories
/// *outright* with the complete memoized search ([`ra_search_with_budget`])
/// — no strategy hint, no guided construction: for every seed the recorded
/// history must admit *some* linearization within `budget` explored
/// configurations.
///
/// This is strictly stronger evidence than [`op_linearizable_in`] (a
/// failing guided strategy says nothing; a refutation here is a
/// counterexample), at sizes the naive seed-era enumeration could not
/// touch. An exhausted budget is reported as its own failure, so an
/// undecided history can never pass silently.
pub fn op_search_in<C, F, M, R, S>(
    crdt: C,
    scenario: &Scenario,
    rw: &R,
    spec: &S,
    budget: u64,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mut report = Report::new(format!("RA-Search@{}", scenario.name));
    for seed in seeds {
        let mut driver = OpDriver::new(crdt.clone(), scenario.cfg.n_replicas, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        let history = driver.into_cluster().into_history();
        let ops = history.len();
        match ra_search_with_budget(&history, rw, spec, budget) {
            SearchOutcome::Linearizable(_) => report.pass(),
            SearchOutcome::NotLinearizable => report.fail(format!(
                "seed {seed}: history of {ops} ops admits no RA-linearization"
            )),
            SearchOutcome::BudgetExhausted => report.fail(format!(
                "seed {seed}: search over {ops} ops undecided within {budget} nodes"
            )),
        }
    }
    report
}

/// Verifies an op-based CRDT *while the scenario runs*: every seed wraps
/// the driver in a [`MonitoredDriver`], so the streaming monitor consumes
/// each invocation and each applied delivery as the engine produces them,
/// settling causally-stable operations along the way. After the run the
/// end-of-stream verdict is cross-checked against the batch search
/// ([`ra_search_with_budget`]) on the recorded history.
///
/// Three obligations per seed:
///
/// 1. **agreement** — a definite streaming verdict must match the batch
///    outcome ([`Verdict::Exhausted`] and budget exhaustion are undecided,
///    never disagreement — but both are still reported as failures here,
///    because an undecided corpus run means the harness chose a scenario
///    the monitor cannot carry);
/// 2. **acceptance** — the corpus histories are RA-linearizable, so the
///    verdict must be [`Verdict::Ok`];
/// 3. **stability** — the final sync drains every mailbox, so every
///    operation must have settled and the live window collapsed to zero.
pub fn monitor_in<C, F, M, R, S>(
    crdt: C,
    scenario: &Scenario,
    rw: &R,
    spec: &S,
    budget: u64,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let mut report = Report::new(format!("RA-Monitor@{}", scenario.name));
    for seed in seeds {
        let inner = OpDriver::new(crdt.clone(), scenario.cfg.n_replicas, mk_call_gen());
        let mut driver = MonitoredDriver::new(inner, rw, spec);
        sim::run(&mut driver, &scenario.cfg, seed);
        let verdict = driver.verdict();
        let stats = driver.stats().clone();
        let history = driver.into_inner().into_cluster().into_history();
        let ops = history.len();
        let batch = ra_search_with_budget(&history, rw, spec, budget);
        let disagreement = matches!(
            (verdict, &batch),
            (Verdict::Ok, SearchOutcome::NotLinearizable)
                | (
                    Verdict::Deferred | Verdict::Violated,
                    SearchOutcome::Linearizable(_)
                )
        );
        if disagreement {
            report.fail(format!(
                "seed {seed}: streaming verdict {verdict:?} contradicts the batch \
                 search on the {ops}-op history"
            ));
        } else if !verdict.is_ok() {
            report.fail(format!(
                "seed {seed}: monitored run of {ops} ops ended {verdict:?}"
            ));
        } else if stats.settled != ops as u64 || stats.live_window != 0 {
            report.fail(format!(
                "seed {seed}: final sync left {} of {ops} ops unsettled (live window {})",
                ops as u64 - stats.settled,
                stats.live_window
            ));
        } else {
            report.pass();
        }
    }
    report
}

/// Decides RA-linearizability of a *composed* workload outright with the
/// sharded compositional search ([`ra_search_sharded_with_budget`]): for
/// every seed, a [`MultiCluster`] of `n_objects` objects under the given
/// timestamp discipline runs through the scenario, and the recorded
/// composed history must admit some RA-linearization — decided per
/// object, witnesses stitched, stitch failures falling back to the
/// whole-history engine.
///
/// This is the scenario harness the sharded checker exists for: `⊗ts`
/// (Theorem 5.5) workloads at replica/object counts the monolithic
/// search cannot touch. As in [`op_search_in`], refutations and
/// exhausted budgets are failures of their own.
#[allow(clippy::too_many_arguments)]
pub fn composed_search_in<C, F, M, R, S>(
    crdt: C,
    n_objects: usize,
    mode: TsMode,
    scenario: &Scenario,
    rw: &R,
    spec: &S,
    budget: u64,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: OpBased + Clone,
    F: FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
    R: Rewrite<ObjLabel<C::Label>, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let mut report = Report::new(format!("Sharded-RA-Search@{}", scenario.name));
    for seed in seeds {
        let cluster = MultiCluster::new(crdt.clone(), n_objects, scenario.cfg.n_replicas, mode);
        let mut driver = MultiDriver::new(cluster, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        let history = driver.into_cluster().into_history();
        let ops = history.len();
        match ra_search_sharded_with_budget(&history, rw, spec, budget) {
            SearchOutcome::Linearizable(_) => report.pass(),
            SearchOutcome::NotLinearizable => report.fail(format!(
                "seed {seed}: composed history of {ops} ops over {n_objects} objects admits no RA-linearization"
            )),
            SearchOutcome::BudgetExhausted => report.fail(format!(
                "seed {seed}: sharded search over {ops} ops undecided within {budget} nodes/shard"
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use ral_core::compose::{MultiObjRewrite, MultiObjSpec};
    use ral_core::label::Identity;
    use ral_crdts::op::counter::OpCounter;
    use ral_crdts::state::pn_counter::PnCounter;
    use ral_sim::scenario;
    use ral_spec::counter::CounterSpec;

    #[test]
    fn pn_counter_survives_the_flaky_wan() {
        let report = state_converges_in(PnCounter, &scenario::flaky_wan(), 0..2, || {
            |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng))
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn op_counter_search_decides_the_split_brain() {
        let report = op_search_in(
            OpCounter,
            &scenario::split_brain_heal(),
            &Identity,
            &CounterSpec,
            2_000_000,
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::counter(rng)),
        );
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn composed_counters_search_through_multi_mix() {
        // The tentpole wiring: 50 replicas × 32 objects through the
        // multi_mix scenario, decided by the sharded search, in both
        // timestamp disciplines.
        for mode in [TsMode::Shared, TsMode::PerObject] {
            let report = composed_search_in(
                OpCounter,
                32,
                mode,
                &scenario::by_name("multi_mix").unwrap(),
                &MultiObjRewrite::new(Identity),
                &MultiObjSpec::new(CounterSpec, 32),
                5_000_000,
                0..1,
                || |rng: &mut Rng, _, _o: ObjId, _| Some(workloads::counter(rng)),
            );
            assert!(report.ok(), "{mode:?}: {report}");
        }
    }

    #[test]
    fn monitor_tracks_the_corpus_live() {
        // The streaming monitor rides inside the engine for the corpus
        // scenario whose concurrent window it can always carry — the
        // tight LAN it was built for: verdicts must match the batch
        // search, end Ok, and settle everything at the final sync.
        let name = "lan_tight";
        let report = monitor_in(
            OpCounter,
            &scenario::by_name(name).unwrap(),
            &Identity,
            &CounterSpec,
            2_000_000,
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::counter(rng)),
        );
        assert!(report.ok(), "{name}: {report}");
    }

    #[test]
    fn monitor_exhausts_honestly_on_split_brain() {
        // A split brain holds hundreds of operations concurrent for the
        // whole partition window; the complete streaming closure tracks
        // every placement order, so the live-config cap trips. The
        // obligation here is honesty: the monitor must end Exhausted
        // (undecided), never a wrong definite verdict — monitor_in counts
        // that as a failure and says why, and the batch arms still decide
        // the same histories (op_counter_search_decides_the_split_brain).
        let report = monitor_in(
            OpCounter,
            &scenario::split_brain_heal(),
            &Identity,
            &CounterSpec,
            2_000_000,
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::counter(rng)),
        );
        assert!(!report.ok());
        let shown = format!("{report}");
        assert!(shown.contains("Exhausted"), "unexpected failure: {shown}");
    }

    #[test]
    fn op_counter_linearizes_through_the_split_brain() {
        let report = op_linearizable_in(
            OpCounter,
            &scenario::split_brain_heal(),
            &Identity,
            &CounterSpec,
            OpCounter::STRATEGY,
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::counter(rng)),
        );
        assert!(report.ok(), "{report}");
    }
}
