//! The state-based proof obligations of Appendix D: Prop1–Prop6 over local
//! effectors, `merge`, and the predicates `P1`/`P2`, plus the
//! join-semilattice laws.
//!
//! | Property | Statement (informally) | Classes |
//! |---|---|---|
//! | Prop1 / Prop1' | local effectors commute (of concurrent ops, or unconditionally) | all |
//! | Prop2 / Prop2' | `merge(σ, apply(σ', x)) = apply(merge(σ, σ'), x)` when `P` holds on both | all |
//! | Prop3 / Prop3' | `merge(apply(σ, x), apply(σ', x)) = apply(merge(σ, σ'), x)` | all |
//! | Prop4 | `merge(σ₀, σ₀) = σ₀` and `merge` is commutative | all |
//! | Prop5 | invoking at the origin equals applying the local effector | all |
//! | Prop6 | `apply(apply(σ, x), x) = apply(σ, x)` | idempotent |
//!
//! For the uniquely-identified class the argument order must additionally be
//! consistent with visibility (Lemma E.1) and incomparable for concurrent
//! operations (Lemma E.2).

use crate::report::Report;
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_crdts::state::local::{EffectorClass, LocalEffector};
use ral_runtime::state_based::StateCluster;
use std::ops::Range;

/// Caps on the per-seed sample sizes (states × args × pairs grows fast).
const MAX_STATES: usize = 12;
const MAX_ARGS: usize = 24;

/// Checks Prop1–Prop6 (as applicable to the CRDT's effector class) plus the
/// lattice laws, over seeded random executions.
pub fn check_state_based<C, F>(
    crdt: C,
    n_replicas: usize,
    steps: usize,
    seeds: Range<u64>,
    mut call_gen: F,
) -> Report
where
    C: LocalEffector + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut report = Report::new("Prop1-Prop6");
    for seed in seeds {
        let mut cluster = StateCluster::new(crdt.clone(), n_replicas);
        let mut rng = Rng::seed_from_u64(seed);
        // Sampled reachable states and the args of all update operations.
        let mut states: Vec<C::State> = vec![cluster.state(ReplicaId(0)).clone()];
        let mut args: Vec<(usize, C::Arg)> = Vec::new();

        for _ in 0..steps {
            let r = ReplicaId(rng.random_range(0..n_replicas) as u32);
            if rng.random_bool(0.55) {
                let Some(call) = call_gen(&mut rng, r, cluster.state(r)) else {
                    continue;
                };
                let before = cluster.state(r).clone();
                // Prop5: re-run the invocation to compare against apply_arg.
                let Some(inv) = cluster.invoke(r, call) else {
                    continue;
                };
                let after = cluster.state(r).clone();
                let record = cluster.history().op(inv.op);
                if let Some(arg) = crdt.effector_arg(&record.label, r, record.ts) {
                    let mut replay = before.clone();
                    crdt.apply_arg(&mut replay, &arg);
                    if replay == after {
                        report.pass();
                    } else {
                        report.fail(format!(
                            "Prop5: apply_arg({arg:?}) differs from the invocation"
                        ));
                    }
                    if args.len() < MAX_ARGS {
                        args.push((inv.op, arg));
                    }
                } else if before == after {
                    report.pass();
                } else {
                    report.fail("query changed the replica state".to_string());
                }
                if states.len() < MAX_STATES {
                    states.push(after);
                }
            } else if rng.random_bool(0.5) || cluster.n_messages() == 0 {
                cluster.send(r);
            } else {
                let m = rng.random_range(0..cluster.n_messages());
                cluster.apply(r, m);
                if states.len() < MAX_STATES && rng.random_bool(0.3) {
                    states.push(cluster.state(r).clone());
                }
            }
        }

        let history = cluster.history().clone();
        check_prop1(&crdt, &history, &states, &args, &mut report);
        check_prop2_prop3(&crdt, &states, &args, &mut report);
        check_prop4_lattice(&crdt, n_replicas, &states, &mut report);
        if crdt.class() == EffectorClass::Idempotent {
            check_prop6(&crdt, &states, &args, &mut report);
        }
        if crdt.class() == EffectorClass::UniquelyIdentified {
            check_unique_order(&crdt, &history, &args, &mut report);
        }
    }
    report
}

fn check_prop1<C: LocalEffector>(
    crdt: &C,
    history: &ral_core::history::History<C::Label>,
    states: &[C::State],
    args: &[(usize, C::Arg)],
    report: &mut Report,
) {
    for (i, (op1, a1)) in args.iter().enumerate() {
        for (op2, a2) in &args[i + 1..] {
            // Prop1 restricts to concurrent operations for the
            // uniquely-identified class; Prop1' is unconditional.
            if crdt.class() == EffectorClass::UniquelyIdentified && !history.concurrent(*op1, *op2)
            {
                continue;
            }
            for s in states {
                let mut ab = s.clone();
                crdt.apply_arg(&mut ab, a1);
                crdt.apply_arg(&mut ab, a2);
                let mut ba = s.clone();
                crdt.apply_arg(&mut ba, a2);
                crdt.apply_arg(&mut ba, a1);
                if ab == ba {
                    report.pass();
                } else {
                    report.fail(format!("Prop1: {a1:?} and {a2:?} do not commute"));
                }
            }
        }
    }
}

fn check_prop2_prop3<C: LocalEffector>(
    crdt: &C,
    states: &[C::State],
    args: &[(usize, C::Arg)],
    report: &mut Report,
) {
    let unconditional_p3 = crdt.class() != EffectorClass::UniquelyIdentified;
    for s1 in states {
        for s2 in states {
            for (_, arg) in args {
                let p_both = crdt.p_pred(s1, arg) && crdt.p_pred(s2, arg);
                if p_both {
                    // Prop2: merge(σ, apply(σ', x)) = apply(merge(σ, σ'), x)
                    let mut applied2 = s2.clone();
                    crdt.apply_arg(&mut applied2, arg);
                    let lhs = crdt.merge(s1, &applied2);
                    let mut rhs = crdt.merge(s1, s2);
                    crdt.apply_arg(&mut rhs, arg);
                    if lhs == rhs {
                        report.pass();
                    } else {
                        report.fail(format!("Prop2 fails for {arg:?}"));
                    }
                }
                if p_both || unconditional_p3 {
                    // Prop3: merge(apply(σ, x), apply(σ', x)) = apply(merge, x)
                    let mut applied1 = s1.clone();
                    crdt.apply_arg(&mut applied1, arg);
                    let mut applied2 = s2.clone();
                    crdt.apply_arg(&mut applied2, arg);
                    let lhs = crdt.merge(&applied1, &applied2);
                    let mut rhs = crdt.merge(s1, s2);
                    crdt.apply_arg(&mut rhs, arg);
                    if lhs == rhs {
                        report.pass();
                    } else {
                        report.fail(format!("Prop3 fails for {arg:?}"));
                    }
                }
            }
        }
    }
}

fn check_prop4_lattice<C: LocalEffector>(
    crdt: &C,
    n_replicas: usize,
    states: &[C::State],
    report: &mut Report,
) {
    let s0 = crdt.initial(n_replicas);
    if crdt.merge(&s0, &s0) == s0 {
        report.pass();
    } else {
        report.fail("Prop4: merge(σ₀, σ₀) ≠ σ₀".to_string());
    }
    for a in states {
        // Lattice: idempotence.
        if crdt.merge(a, a) == *a {
            report.pass();
        } else {
            report.fail("merge is not idempotent".to_string());
        }
        for b in states {
            let ab = crdt.merge(a, b);
            // Prop4: commutativity.
            if ab == crdt.merge(b, a) {
                report.pass();
            } else {
                report.fail("Prop4: merge is not commutative".to_string());
            }
            // Lattice: merge is an upper bound.
            if crdt.leq(a, &ab) && crdt.leq(b, &ab) {
                report.pass();
            } else {
                report.fail("merge is not an upper bound w.r.t. leq".to_string());
            }
            for c in states {
                // Lattice: associativity.
                if crdt.merge(&ab, c) == crdt.merge(a, &crdt.merge(b, c)) {
                    report.pass();
                } else {
                    report.fail("merge is not associative".to_string());
                }
            }
        }
    }
}

fn check_prop6<C: LocalEffector>(
    crdt: &C,
    states: &[C::State],
    args: &[(usize, C::Arg)],
    report: &mut Report,
) {
    for s in states {
        for (_, arg) in args {
            let mut once = s.clone();
            crdt.apply_arg(&mut once, arg);
            let mut twice = once.clone();
            crdt.apply_arg(&mut twice, arg);
            if once == twice {
                report.pass();
            } else {
                report.fail(format!("Prop6: {arg:?} is not idempotent"));
            }
        }
    }
}

fn check_unique_order<C: LocalEffector>(
    crdt: &C,
    history: &ral_core::history::History<C::Label>,
    args: &[(usize, C::Arg)],
    report: &mut Report,
) {
    for (i, (op1, a1)) in args.iter().enumerate() {
        for (op2, a2) in &args[i + 1..] {
            // Lemma E.1: arguments are unique.
            if a1 == a2 {
                report.fail(format!("argument {a1:?} is not unique"));
                continue;
            }
            report.pass();
            // Lemma E.1: the order is consistent with visibility.
            if history.sees(*op2, *op1) {
                if crdt.arg_lt(a1, a2) {
                    report.pass();
                } else {
                    report.fail(format!("visibility {op1}≺{op2} but not {a1:?} < {a2:?}"));
                }
            } else if history.sees(*op1, *op2) {
                if crdt.arg_lt(a2, a1) {
                    report.pass();
                } else {
                    report.fail(format!("visibility {op2}≺{op1} but not {a2:?} < {a1:?}"));
                }
            } else if crdt.concurrent_incomparable() {
                // Lemma E.2: concurrent operations have incomparable args
                // (holds for version vectors, not for total timestamp
                // orders).
                if !crdt.arg_lt(a1, a2) && !crdt.arg_lt(a2, a1) {
                    report.pass();
                } else {
                    report.fail(format!(
                        "concurrent operations {op1}, {op2} have comparable args"
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use ral_crdts::state::lww_element_set::LwwElementSet;
    use ral_crdts::state::mv_register::MvRegister;
    use ral_crdts::state::pn_counter::PnCounter;
    use ral_crdts::state::two_phase_set::TwoPhaseSet;

    #[test]
    fn pn_counter_satisfies_props() {
        let report = check_state_based(PnCounter, 3, 40, 0..3, |rng, _, _| {
            Some(workloads::pn_counter(rng))
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn two_phase_set_satisfies_props() {
        let mut next = 0;
        let report = check_state_based(TwoPhaseSet::<u16>::new(), 3, 40, 0..3, |rng, _, st| {
            workloads::two_phase_set(rng, st, &mut next)
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn mv_register_satisfies_props() {
        let report = check_state_based(MvRegister::<u8>::new(), 3, 40, 0..3, |rng, _, _| {
            Some(workloads::mv_register(rng))
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn lww_element_set_satisfies_props() {
        let report = check_state_based(LwwElementSet::<u8>::new(), 3, 40, 0..3, |rng, _, _| {
            Some(workloads::lww_element_set(rng))
        });
        assert!(report.ok(), "{report}");
    }
}
