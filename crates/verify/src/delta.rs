//! Delta-transport obligations: convergence of delta runs and differential
//! equivalence against full-state replication.
//!
//! Delta-state replication ([`ral_runtime::delta`]) must be *observably
//! indistinguishable* from Appendix D's full-state replication: whatever
//! the network lost, duplicated, reordered, or partitioned, and whatever
//! replicas crashed, the states everyone settles on must be the states a
//! full-state run settles on. Two harnesses check that on the whole
//! `ral-sim` scenario corpus:
//!
//! * [`delta_converges_in`] — the delta transport alone: every replica of
//!   a [`DeltaDriver`] run converges after the final synchronization, and
//!   the lattice + delta laws hold on the surviving states (the Prop1–Prop6
//!   analogue for join decompositions: every shipped payload is a lattice
//!   element, so the obligations of Appendix D transfer verbatim);
//! * [`delta_matches_full_state_in`] — the differential harness: a
//!   [`ParityDriver`] runs a full-state [`StateCluster`] and a
//!   [`DeltaCluster`] in **lockstep** through the identical simulated
//!   schedule — same invocations, same message timings, same faults — with
//!   the delta cluster replicating the *same mutations* through
//!   [`DeltaCluster::ingest_local`]. Both transports must converge to
//!   **identical final states**: the inductive argument is that every
//!   replica state in either cluster is a join of the same mutation
//!   deltas, so the final full synchronization reaches the join of all of
//!   them — on both sides.
//!
//! Holding the mutations fixed is what makes the comparison exact: CRDTs
//! whose mutators read the local state (an MV-Register write mints a
//! vector dominating what it has *seen*) would otherwise legitimately
//! resolve concurrency differently under the two transports' different
//! knowledge-propagation timing, and the comparison would say nothing. The
//! differential run isolates precisely the new machinery — buffering,
//! batching, ack-driven GC, resync — and demands it lose nothing.
//!
//! [`StateCluster`]: ral_runtime::state_based::StateCluster
//! [`DeltaCluster`]: ral_runtime::delta::DeltaCluster

use crate::report::Report;
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_runtime::delta::{DeltaCluster, DeltaConfig, DeltaCrdt};
use ral_runtime::state_based::StateCluster;
use ral_sim::driver::{DeltaDriver, Driver, Received, StateDriver};
use ral_sim::scenario::Scenario;
use ral_sim::sim;
use std::ops::Range;

/// Runs a full-state [`StateCluster`] and a [`DeltaCluster`] in lockstep
/// under one simulated schedule, replicating the *same* mutations through
/// both transports.
///
/// Invocations execute on the full-state cluster (the semantic reference);
/// each accepted mutation's join decomposition is mirrored into the delta
/// cluster with [`DeltaCluster::ingest_local`]. Every gossip tick makes
/// both clusters emit one message (snapshot vs batch/resync/heartbeat)
/// with a shared message id, so transmissions, faults, and arrival times
/// coincide exactly; crashes and restarts hit both. After the final
/// synchronization, [`ParityDriver::converged`] additionally demands the
/// two clusters agree replica by replica.
///
/// [`StateCluster`]: ral_runtime::state_based::StateCluster
/// [`DeltaCluster`]: ral_runtime::delta::DeltaCluster
pub struct ParityDriver<C: DeltaCrdt + Clone, F> {
    full: StateCluster<C>,
    delta: DeltaCluster<C>,
    call_gen: F,
}

impl<C, F> ParityDriver<C, F>
where
    C: DeltaCrdt + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    /// Builds the paired clusters; `call_gen` reads the full-state
    /// cluster's replica state (the semantic reference).
    pub fn new(crdt: C, config: DeltaConfig, n_replicas: usize, call_gen: F) -> Self {
        ParityDriver {
            full: StateCluster::new(crdt.clone(), n_replicas),
            delta: DeltaCluster::new(crdt, config, n_replicas),
            call_gen,
        }
    }

    /// The full-state reference cluster.
    pub fn full(&self) -> &StateCluster<C> {
        &self.full
    }

    /// The delta cluster under test.
    pub fn delta(&self) -> &DeltaCluster<C> {
        &self.delta
    }

    /// Whether every replica of the delta cluster holds exactly the state
    /// of its full-state twin.
    pub fn states_match(&self) -> bool {
        (0..self.full.n_replicas())
            .all(|r| self.full.state(ReplicaId(r as u32)) == self.delta.state(ReplicaId(r as u32)))
    }
}

impl<C, F> Driver for ParityDriver<C, F>
where
    C: DeltaCrdt + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    const RELIABLE: bool = false;
    const GOSSIPS: bool = true;

    fn n_replicas(&self) -> usize {
        self.full.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        let Some(call) = (self.call_gen)(rng, r, self.full.state(r)) else {
            return false;
        };
        let pre = self.full.state(r).clone();
        if self.full.invoke(r, call).is_none() {
            return false;
        }
        let post = self.full.state(r);
        if *post != pre {
            // Mirror the mutation's join decomposition into the delta
            // transport; queries leave nothing to replicate.
            let d = self.full.crdt().diff(&pre, post);
            self.delta.ingest_local(r, d);
        }
        true
    }

    fn gossip(&mut self, r: ReplicaId) -> bool {
        // One message each, under the same id.
        self.full.send(r);
        self.delta.gossip(r);
        true
    }

    fn n_messages(&self) -> usize {
        debug_assert_eq!(self.full.n_messages(), self.delta.n_messages());
        self.full.n_messages()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.full.message_origin(m)
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        self.full.apply(r, m);
        self.delta.apply(r, m);
        Received::Applied(1)
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.full.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.full.crash(r);
        self.delta.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        self.full.restart(r);
        self.delta.restart(r);
    }

    fn final_sync(&mut self) {
        self.full.restart_all();
        self.full.sync_all();
        self.delta.restart_all();
        self.delta.sync_all();
    }

    fn converged(&self) -> bool {
        self.full.converged() && self.delta.converged() && self.states_match()
    }
}

/// Checks that delta and full-state replication reach **identical final
/// states** under a named scenario: for every seed, a lockstep
/// [`ParityDriver`] run converges on both transports and agrees replica by
/// replica.
pub fn delta_matches_full_state_in<C, F, M>(
    crdt: C,
    config: DeltaConfig,
    scenario: &Scenario,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: DeltaCrdt + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
{
    let mut report = Report::new(format!("DeltaParity@{}", scenario.name));
    for seed in seeds {
        let mut driver =
            ParityDriver::new(crdt.clone(), config, scenario.cfg.n_replicas, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        if !driver.full().converged() {
            report.fail(format!("seed {seed}: full-state replicas diverged"));
        } else if !driver.delta().converged() {
            report.fail(format!("seed {seed}: delta replicas diverged"));
        } else if !driver.states_match() {
            report.fail(format!(
                "seed {seed}: delta final states differ from full-state final states"
            ));
        } else {
            report.pass();
        }
    }
    report
}

/// Checks strong eventual consistency of the delta transport alone under a
/// named scenario: for every seed, a [`DeltaDriver`] run converges after
/// the final synchronization and the lattice + delta laws hold on the
/// surviving states.
pub fn delta_converges_in<C, F, M>(
    crdt: C,
    config: DeltaConfig,
    scenario: &Scenario,
    seeds: Range<u64>,
    mut mk_call_gen: M,
) -> Report
where
    C: DeltaCrdt + Clone,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
{
    let mut report = Report::new(format!("DeltaConvergence@{}", scenario.name));
    for seed in seeds {
        let mut driver =
            DeltaDriver::new(crdt.clone(), config, scenario.cfg.n_replicas, mk_call_gen());
        sim::run(&mut driver, &scenario.cfg, seed);
        if !driver.converged() {
            report.fail(format!("seed {seed}: replicas diverged after final sync"));
        } else if !driver.cluster().check_lattice_laws() {
            report.fail(format!("seed {seed}: lattice/delta laws violated"));
        } else {
            report.pass();
        }
    }
    report
}

/// Runs one seeded scenario under both transports (independently, not in
/// lockstep) and returns `(full_state_bytes, delta_bytes)` — the total
/// wire payload each put on links. The bandwidth claim of the `ral-bench`
/// `delta_bandwidth` target, as a testable function.
pub fn payload_bytes_comparison<C, F, M>(
    crdt: C,
    config: DeltaConfig,
    scenario: &Scenario,
    seed: u64,
    mut mk_call_gen: M,
) -> (u64, u64)
where
    C: DeltaCrdt + Clone + 'static,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    M: FnMut() -> F,
{
    let sizer_crdt = crdt.clone();
    let mut full_driver = StateDriver::new(crdt.clone(), scenario.cfg.n_replicas, mk_call_gen())
        .with_sizer(move |s| sizer_crdt.state_bytes(s));
    let full_run = sim::run(&mut full_driver, &scenario.cfg, seed);

    let mut delta_driver = DeltaDriver::new(crdt, config, scenario.cfg.n_replicas, mk_call_gen());
    let delta_run = sim::run(&mut delta_driver, &scenario.cfg, seed);
    assert!(full_driver.converged() && delta_driver.converged());
    (full_run.stats.payload_bytes, delta_run.stats.payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use ral_crdts::state::lww_element_set::LwwElementSet;
    use ral_crdts::state::pn_counter::PnCounter;
    use ral_sim::scenario;

    #[test]
    fn pn_counter_parity_on_the_delta_wan() {
        let report = delta_matches_full_state_in(
            PnCounter,
            DeltaConfig { resync_after: 8 },
            &scenario::delta_wan(),
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::pn_counter(rng)),
        );
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn lww_set_delta_transport_converges_on_the_delta_wan() {
        let report = delta_converges_in(
            LwwElementSet::<u8>::new(),
            DeltaConfig::default(),
            &scenario::delta_wan(),
            0..2,
            || |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
        );
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn deltas_ship_fewer_bytes_than_snapshots() {
        let (full, delta) = payload_bytes_comparison(
            LwwElementSet::<u8>::new(),
            DeltaConfig::default(),
            &scenario::flaky_wan(),
            3,
            || |rng: &mut Rng, _, _| Some(workloads::lww_element_set(rng)),
        );
        assert!(
            delta < full,
            "delta transport shipped {delta} bytes, full-state {full}"
        );
    }
}
