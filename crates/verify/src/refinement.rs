//! The **Refinement** and **Refinement_ts** obligations (Sections 4.1/4.2).
//!
//! A refinement mapping `abs` relates replica states to specification
//! states such that
//!
//! * *Simulating effectors*: applying the effector of `ℓ` on `σ` is matched
//!   by the specification transition of `upd(γ(ℓ))` from `abs(σ)`. Under
//!   `Refinement_ts` the obligation is only required when the effector's
//!   timestamp is not below any timestamp stored in `σ` (Example 4.5);
//! * *Simulating generators*: a query (or the query part of a query-update)
//!   returning `b` from `σ` is admitted by the specification in `abs(σ)`
//!   and leaves it unchanged.
//!
//! The checker replays seeded executions and discharges the obligation at
//! every generator execution and every effector delivery.

use crate::report::Report;
use ral_core::ids::ReplicaId;
use ral_core::label::{Rewrite, Rewritten, SpecLabel};
use ral_core::rng::Rng;
use ral_core::spec::Spec;
use ral_core::timestamp::Ts;
use ral_runtime::op_based::{Cluster, OpBased};
use std::ops::Range;

/// Which flavour of the obligation to check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// `Refinement` (Section 4.1): effectors simulate unconditionally.
    Plain,
    /// `Refinement_ts` (Section 4.2): an effector whose timestamp is below
    /// some timestamp already in the state is exempt.
    Timestamped,
}

/// Checks Refinement (or `Refinement_ts`) for an operation-based CRDT.
///
/// * `abs` is the refinement mapping;
/// * `state_ts` lists the timestamps stored in a state (used only in
///   [`Mode::Timestamped`]).
#[allow(clippy::too_many_arguments)]
pub fn check_op_based<C, S, R, FA, FT, F>(
    crdt: C,
    spec: &S,
    rewrite: &R,
    mode: Mode,
    abs: FA,
    state_ts: FT,
    n_replicas: usize,
    steps: usize,
    seeds: Range<u64>,
    mut call_gen: F,
) -> Report
where
    C: OpBased + Clone,
    S: Spec,
    R: Rewrite<C::Label, Out = S::Label>,
    FA: Fn(&C::State) -> S::State,
    FT: Fn(&C::State) -> Vec<Ts>,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let name = match mode {
        Mode::Plain => "Refinement",
        Mode::Timestamped => "Refinement_ts",
    };
    let mut report = Report::new(name);
    for seed in seeds.clone() {
        let mut cluster = Cluster::new(crdt.clone(), n_replicas);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..steps {
            let r = ReplicaId(rng.random_range(0..n_replicas) as u32);
            if rng.random_bool(0.6) {
                let Some(call) = call_gen(&mut rng, r, cluster.state(r)) else {
                    continue;
                };
                let before = cluster.state(r).clone();
                let Some(inv) = cluster.invoke(r, call) else {
                    continue;
                };
                let after = cluster.state(r).clone();
                let label = cluster.history().label(inv.op).clone();
                check_generator_and_origin_effector::<C, S, R, FA>(
                    spec,
                    rewrite,
                    &abs,
                    &label,
                    &before,
                    &after,
                    &mut report,
                );
            } else {
                let ds = cluster.deliverable(r);
                if ds.is_empty() {
                    continue;
                }
                let d = ds[rng.random_range(0..ds.len())];
                let op = cluster.delivery_op(d);
                let has_eff = cluster.delivery_eff(d).is_some();
                let before = cluster.state(r).clone();
                let op_ts = cluster.history().op(op).ts;
                cluster.deliver(r, d);
                let after = cluster.state(r).clone();
                if !has_eff {
                    // Identity effector: the state must not change.
                    if before == after {
                        report.pass();
                    } else {
                        report.fail(format!("identity effector of {op} changed the state"));
                    }
                    continue;
                }
                if mode == Mode::Timestamped {
                    if let Some(ts) = op_ts {
                        if state_ts(&before).iter().any(|t| ts < *t) {
                            // Exempt under Refinement_ts.
                            report.pass();
                            continue;
                        }
                    }
                }
                let label = cluster.history().label(op).clone();
                let update = match rewrite.rewrite(&label) {
                    Rewritten::One(l) => l,
                    Rewritten::Split { update, .. } => update,
                };
                check_effector_step(spec, &abs, &update, op, &before, &after, &mut report);
            }
        }
    }
    report
}

fn check_generator_and_origin_effector<C, S, R, FA>(
    spec: &S,
    rewrite: &R,
    abs: &FA,
    label: &C::Label,
    before: &C::State,
    after: &C::State,
    report: &mut Report,
) where
    C: OpBased,
    S: Spec,
    R: Rewrite<C::Label, Out = S::Label>,
    FA: Fn(&C::State) -> S::State,
{
    match rewrite.rewrite(label) {
        Rewritten::One(l) => {
            if l.is_query() {
                // Simulating generators: abs(σ) —ℓ→ abs(σ).
                let a = abs(before);
                if spec.step(&a, &l).contains(&a) {
                    report.pass();
                } else {
                    report.fail(format!("query {l:?} not simulated at {a:?}"));
                }
                if before == after {
                    report.pass();
                } else {
                    report.fail(format!("query {l:?} changed the replica state"));
                }
            } else {
                // Origin effector: timestamps are fresh at the origin, so
                // the obligation applies in both modes.
                check_effector_step(spec, abs, &l, usize::MAX, before, after, report);
            }
        }
        Rewritten::Split { query, update } => {
            let a = abs(before);
            if spec.step(&a, &query).contains(&a) {
                report.pass();
            } else {
                report.fail(format!(
                    "query part {query:?} of a query-update not simulated at {a:?}"
                ));
            }
            check_effector_step(spec, abs, &update, usize::MAX, before, after, report);
        }
    }
}

fn check_effector_step<S, St, FA>(
    spec: &S,
    abs: &FA,
    update: &S::Label,
    op: usize,
    before: &St,
    after: &St,
    report: &mut Report,
) where
    S: Spec,
    FA: Fn(&St) -> S::State,
{
    let a_before = abs(before);
    let a_after = abs(after);
    if spec.step(&a_before, update).contains(&a_after) {
        report.pass();
    } else {
        let what = if op == usize::MAX {
            "origin effector".to_string()
        } else {
            format!("effector of operation {op}")
        };
        report.fail(format!(
            "{what} {update:?} not simulated: {a_before:?} -/-> {a_after:?}"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::label::{Identity, Kind};
    use ral_runtime::gen::{GenCtx, GenOutcome};

    /// Grow-only counter with a correct spec.
    #[derive(Clone)]
    struct GCtr;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Inc,
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Inc => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl OpBased for GCtr {
        type State = i64;
        type Call = bool;
        type Ret = i64;
        type Eff = ();
        type Label = L;
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, st: &i64, call: &bool, _ctx: &mut GenCtx) -> GenOutcome<i64, ()> {
            if *call {
                GenOutcome::update(0, ())
            } else {
                GenOutcome::query(*st)
            }
        }
        fn apply(&self, st: &mut i64, _eff: &()) {
            *st += 1;
        }
        fn label(&self, call: &bool, ret: &i64) -> L {
            if *call {
                L::Inc
            } else {
                L::Read(*ret)
            }
        }
    }

    struct CtrSpec;

    impl Spec for CtrSpec {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 1],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    /// A WRONG spec (inc adds two) to prove the checker notices.
    struct WrongSpec;

    impl Spec for WrongSpec {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 2],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn accepts_correct_refinement() {
        let report = check_op_based(
            GCtr,
            &CtrSpec,
            &Identity,
            Mode::Plain,
            |s: &i64| *s,
            |_| vec![],
            3,
            40,
            0..4,
            |rng, _, _| Some(rng.random_bool(0.7)),
        );
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn refutes_wrong_specification() {
        let report = check_op_based(
            GCtr,
            &WrongSpec,
            &Identity,
            Mode::Plain,
            |s: &i64| *s,
            |_| vec![],
            3,
            40,
            0..4,
            |rng, _, _| Some(rng.random_bool(0.7)),
        );
        assert!(!report.ok());
    }

    #[test]
    fn refutes_wrong_abs() {
        let report = check_op_based(
            GCtr,
            &CtrSpec,
            &Identity,
            Mode::Plain,
            |s: &i64| s + 1, // bogus mapping
            |_| vec![],
            3,
            40,
            0..4,
            |rng, _, _| Some(rng.random_bool(0.7)),
        );
        assert!(!report.ok());
    }
}
