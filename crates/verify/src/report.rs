//! Verification reports: how many obligations were checked and which failed.

use std::fmt;

/// The outcome of checking a family of proof obligations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Name of the obligation family (e.g. `"Commutativity"`).
    pub name: String,
    /// Number of individual checks performed.
    pub checks: u64,
    /// Human-readable descriptions of failing checks (empty when all hold).
    pub failures: Vec<String>,
}

impl Report {
    /// Creates an empty report for the named obligation family.
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            checks: 0,
            failures: Vec::new(),
        }
    }

    /// Records one successful check.
    pub fn pass(&mut self) {
        self.checks += 1;
    }

    /// Records one failing check with a description.
    pub fn fail(&mut self, why: impl Into<String>) {
        self.checks += 1;
        // Keep reports bounded; one counterexample is enough to refute.
        if self.failures.len() < 16 {
            self.failures.push(why.into());
        }
    }

    /// Returns `true` if every check passed (and at least one ran).
    pub fn ok(&self) -> bool {
        self.checks > 0 && self.failures.is_empty()
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: Report) {
        self.checks += other.checks;
        for f in other.failures {
            if self.failures.len() < 16 {
                self.failures.push(format!("{}: {}", other.name, f));
            }
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.failures.is_empty() {
            write!(f, "{}: {} checks, all passed", self.name, self.checks)
        } else {
            writeln!(
                f,
                "{}: {} checks, {} FAILED:",
                self.name,
                self.checks,
                self.failures.len()
            )?;
            for failure in &self.failures {
                writeln!(f, "  - {failure}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_and_fail_accounting() {
        let mut r = Report::new("Test");
        assert!(!r.ok(), "no checks yet");
        r.pass();
        assert!(r.ok());
        r.fail("boom");
        assert!(!r.ok());
        assert_eq!(r.checks, 2);
        assert!(r.to_string().contains("FAILED"));
    }

    #[test]
    fn failures_are_bounded() {
        let mut r = Report::new("Test");
        for i in 0..100 {
            r.fail(format!("f{i}"));
        }
        assert_eq!(r.checks, 100);
        assert_eq!(r.failures.len(), 16);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Report::new("A");
        a.pass();
        let mut b = Report::new("B");
        b.fail("oops");
        a.absorb(b);
        assert_eq!(a.checks, 2);
        assert_eq!(a.failures.len(), 1);
        assert!(a.failures[0].contains("B"));
    }

    #[test]
    fn display_success() {
        let mut r = Report::new("Ok");
        r.pass();
        assert_eq!(r.to_string(), "Ok: 1 checks, all passed");
    }
}
