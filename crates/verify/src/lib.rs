#![warn(missing_docs)]
//! Property-based verification harness — the analogue of the paper's Boogie
//! mechanization (Section 6, Appendix F).
//!
//! The paper discharges, per CRDT, a handful of first-order proof
//! obligations that together imply RA-linearizability:
//!
//! * **Commutativity** (Section 4.1) — effectors of concurrent operations
//!   commute ([`commutativity`]);
//! * **Refinement** / **Refinement_ts** (Sections 4.1, 4.2) — every effector
//!   and generator is simulated by its specification operation through the
//!   refinement mapping `abs` ([`refinement`]);
//! * **Prop1–Prop6** with predicates `P1`/`P2` (Appendix D) — the
//!   state-based analogues relating local effectors and `merge`
//!   ([`state_props`]), plus the join-semilattice laws;
//! * **strong eventual consistency** ([`convergence`]) — equal views imply
//!   equal states, the observable consequence of RA-linearizability
//!   (Section 7).
//!
//! Instead of discharging them symbolically, this crate checks the *same*
//! obligations on systematically explored reachable states from seeded
//! random executions — a counterexample to any obligation would manifest as
//! a concrete failing state here.
//!
//! [`table`] assembles everything into the paper's headline artifact: the
//! Figure 12 table of nine CRDTs, each with its implementation style and
//! linearization class.

//! [`scenarios`] runs the same obligations through the `ral-sim`
//! discrete-event simulator's named scenario corpus, replacing the coin-flip
//! scheduler with latency, partitions, and crashes. [`delta`] adds the
//! delta-replication obligations: delta-transport convergence and lockstep
//! differential equivalence against full-state replication. [`crosscheck`]
//! runs the independent checker engines side by side over one history and
//! folds their outcomes into a single verdict — the oracle the `ral-fuzz`
//! scenario fuzzer drives.

pub mod commutativity;
pub mod convergence;
pub mod crosscheck;
pub mod delta;
pub mod obligations;
pub mod refinement;
pub mod report;
pub mod scenarios;
pub mod state_props;
pub mod table;
pub mod workloads;

pub use report::Report;
pub use table::{fig12_rows, render_fig12, Fig12Row};
