//! `Spec(Counter)` — Example 3.2 / Appendix B.1.
//!
//! The abstract state is an integer; `inc` and `dec` shift it and
//! `read() ⇒ k` is admitted exactly when `k` equals the state.

use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;

/// Specification labels of the counter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CounterOp {
    /// `inc()` — an update.
    Inc,
    /// `dec()` — an update.
    Dec,
    /// `read() ⇒ k` — a query.
    Read(i64),
}

impl SpecLabel for CounterOp {
    fn kind(&self) -> Kind {
        match self {
            CounterOp::Inc | CounterOp::Dec => Kind::Update,
            CounterOp::Read(_) => Kind::Query,
        }
    }
}

/// The counter specification.
///
/// # Examples
///
/// ```
/// use ral_core::spec::admits;
/// use ral_spec::counter::{CounterOp, CounterSpec};
///
/// assert!(admits(&CounterSpec, &[CounterOp::Inc, CounterOp::Inc,
///                                CounterOp::Dec, CounterOp::Read(1)]));
/// assert!(!admits(&CounterSpec, &[CounterOp::Inc, CounterOp::Read(2)]));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSpec;

impl Spec for CounterSpec {
    type Label = CounterOp;
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &i64, label: &CounterOp) -> Vec<i64> {
        match label {
            CounterOp::Inc => vec![state + 1],
            CounterOp::Dec => vec![state - 1],
            CounterOp::Read(k) if k == state => vec![*state],
            CounterOp::Read(_) => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::admits;

    #[test]
    fn inc_dec_read() {
        assert!(admits(
            &CounterSpec,
            &[
                CounterOp::Inc,
                CounterOp::Read(1),
                CounterOp::Dec,
                CounterOp::Read(0)
            ]
        ));
    }

    #[test]
    fn negative_values_allowed() {
        assert!(admits(&CounterSpec, &[CounterOp::Dec, CounterOp::Read(-1)]));
    }

    #[test]
    fn wrong_read_rejected() {
        assert!(!admits(&CounterSpec, &[CounterOp::Read(5)]));
    }

    #[test]
    fn kinds() {
        assert!(CounterOp::Inc.is_update());
        assert!(CounterOp::Dec.is_update());
        assert!(CounterOp::Read(0).is_query());
    }
}
