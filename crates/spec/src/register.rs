//! Register specifications: `Spec(Reg)` for the LWW-Register (Appendix B.2)
//! and `Spec(MV-Reg)` for the Multi-Value Register (Appendix E.1).

use ral_core::elem::Elem;
use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Specification labels of the LWW register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegOp<E> {
    /// `write(a)` — an update.
    Write(E),
    /// `read() ⇒ a` — a query (`None` is the initial, unwritten value).
    Read(Option<E>),
}

impl<E> SpecLabel for RegOp<E> {
    fn kind(&self) -> Kind {
        match self {
            RegOp::Write(_) => Kind::Update,
            RegOp::Read(_) => Kind::Query,
        }
    }
}

/// `Spec(Reg)`: the abstract state is the last written value.
///
/// # Examples
///
/// ```
/// use ral_core::spec::admits;
/// use ral_spec::register::{RegOp, RegSpec};
///
/// let spec = RegSpec::new();
/// assert!(admits(&spec, &[RegOp::Write('x'), RegOp::Read(Some('x'))]));
/// assert!(admits(&spec, &[RegOp::Read(None)]));
/// assert!(!admits(&spec, &[RegOp::Write('x'), RegOp::Read(None)]));
/// ```
pub struct RegSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> RegSpec<E> {
    /// Creates the LWW register specification (initially unwritten).
    pub fn new() -> Self {
        RegSpec { _elem: PhantomData }
    }
}

impl<E> Clone for RegSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for RegSpec<E> {}

impl<E> Default for RegSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for RegSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RegSpec")
    }
}

impl<E: Elem> Spec for RegSpec<E> {
    type Label = RegOp<E>;
    type State = Option<E>;

    fn initial(&self) -> Option<E> {
        None
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Option<E>, label: &RegOp<E>) -> Vec<Option<E>> {
        match label {
            RegOp::Write(a) => vec![Some(a.clone())],
            RegOp::Read(a) if a == state => vec![state.clone()],
            RegOp::Read(_) => vec![],
        }
    }
}

/// A version vector (one counter per replica), the identifier domain of the
/// MV-Register.
pub type VersionVec = Vec<u64>;

/// Pointwise order on version vectors: `a ⊑ b`.
pub fn vv_leq(a: &VersionVec, b: &VersionVec) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Strict pointwise order: `a ⊏ b`.
pub fn vv_lt(a: &VersionVec, b: &VersionVec) -> bool {
    vv_leq(a, b) && a != b
}

/// Specification labels of the Multi-Value Register, after the rewriting
/// `γ(write(a) ⇒ V) = write(a, V)` (Appendix E.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MvRegOp<E> {
    /// `write(a, id)` — an update; the identifier is the version vector the
    /// write generated.
    Write(E, VersionVec),
    /// `read() ⇒ A` — a query returning the set of concurrently-latest
    /// values.
    Read(BTreeSet<E>),
}

impl<E> SpecLabel for MvRegOp<E> {
    fn kind(&self) -> Kind {
        match self {
            MvRegOp::Write(..) => Kind::Update,
            MvRegOp::Read(_) => Kind::Query,
        }
    }
}

/// `Spec(MV-Reg)`: the abstract state is a set of value/identifier pairs;
/// a write removes every pair with a strictly smaller identifier.
pub struct MvRegSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> MvRegSpec<E> {
    /// Creates the MV-Register specification.
    pub fn new() -> Self {
        MvRegSpec { _elem: PhantomData }
    }
}

impl<E> Clone for MvRegSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for MvRegSpec<E> {}

impl<E> Default for MvRegSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for MvRegSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MvRegSpec")
    }
}

impl<E: Elem> Spec for MvRegSpec<E> {
    type Label = MvRegOp<E>;
    type State = BTreeSet<(E, VersionVec)>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &MvRegOp<E>) -> Vec<Self::State> {
        match label {
            MvRegOp::Write(a, id) => {
                // Precondition: id is not ≤ any identifier already present.
                if state.iter().any(|(_, id2)| vv_leq(id, id2)) {
                    return vec![];
                }
                let mut next: Self::State = state
                    .iter()
                    .filter(|(_, id2)| !vv_lt(id2, id))
                    .cloned()
                    .collect();
                next.insert((a.clone(), id.clone()));
                vec![next]
            }
            MvRegOp::Read(a) => {
                let values: BTreeSet<E> = state.iter().map(|(v, _)| v.clone()).collect();
                if &values == a {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::admits;

    #[test]
    fn lww_register_roundtrip() {
        let spec = RegSpec::new();
        assert!(admits(
            &spec,
            &[
                RegOp::Write(1u32),
                RegOp::Write(2),
                RegOp::Read(Some(2)),
                RegOp::Read(Some(2))
            ]
        ));
        assert!(!admits(&spec, &[RegOp::Write(1u32), RegOp::Read(Some(3))]));
    }

    #[test]
    fn version_vector_order() {
        assert!(vv_leq(&vec![1, 2], &vec![1, 2]));
        assert!(vv_lt(&vec![1, 2], &vec![2, 2]));
        assert!(!vv_leq(&vec![1, 2], &vec![2, 1]));
        assert!(!vv_lt(&vec![1, 2], &vec![1, 2]));
        assert!(
            !vv_leq(&vec![1], &vec![1, 2]),
            "length mismatch is incomparable"
        );
    }

    #[test]
    fn mv_register_keeps_concurrent_writes() {
        let spec = MvRegSpec::new();
        // Two concurrent writes (incomparable vectors) both survive.
        let seq = [
            MvRegOp::Write('a', vec![1, 0]),
            MvRegOp::Write('b', vec![0, 1]),
            MvRegOp::Read(BTreeSet::from(['a', 'b'])),
        ];
        assert!(admits(&spec, &seq));
    }

    #[test]
    fn mv_register_dominating_write_overwrites() {
        let spec = MvRegSpec::new();
        let seq = [
            MvRegOp::Write('a', vec![1, 0]),
            MvRegOp::Write('b', vec![2, 1]),
            MvRegOp::Read(BTreeSet::from(['b'])),
        ];
        assert!(admits(&spec, &seq));
    }

    #[test]
    fn mv_register_rejects_dominated_write() {
        let spec = MvRegSpec::new();
        let seq = [
            MvRegOp::Write('a', vec![2, 2]),
            MvRegOp::Write('b', vec![1, 1]), // dominated: precondition fails
        ];
        assert!(!admits(&spec, &seq));
    }

    #[test]
    fn mv_register_rejects_wrong_read() {
        let spec = MvRegSpec::new();
        let seq = [
            MvRegOp::Write('a', vec![1, 0]),
            MvRegOp::Read(BTreeSet::from(['b'])),
        ];
        assert!(!admits(&spec, &seq));
    }

    #[test]
    fn kinds() {
        assert!(RegOp::Write(1u32).is_update());
        assert!(RegOp::<u32>::Read(None).is_query());
        assert!(MvRegOp::Write('a', vec![]).is_update());
        assert!(MvRegOp::<char>::Read(BTreeSet::new()).is_query());
    }
}
