#![warn(missing_docs)]
//! Sequential specifications of every data type in the RA-linearizability
//! paper (Section 3.2, Appendices B, C, E).
//!
//! Each specification is an operational transition system over an abstract
//! state (implementing [`ral_core::spec::Spec`]); transitions double as
//! precondition and return-value checks. The label types defined here are
//! also the *targets* of the query-update rewritings shipped with the CRDT
//! implementations in `ral-crdts`.
//!
//! | Module | Specification | Paper |
//! |---|---|---|
//! | [`counter`] | `Spec(Counter)` | Example 3.2, Appendix B.1 |
//! | [`register`] | `Spec(Reg)` (LWW), `Spec(MV-Reg)` | Appendix B.2, E.1 |
//! | [`set`] | `Spec(Set)`, `Spec(OR-Set)` | Appendix E.2, Example 3.4 |
//! | [`rga`] | `Spec(RGA)` | Example 3.3 |
//! | [`wooki`] | `Spec(Wooki)` (nondeterministic) | Appendix B.3 |
//! | [`wooki_fast`] | polynomial Wooki validator (constraint graphs) | extension |
//! | [`addat`] | `Spec(addAt1/2/3)` | Appendix C |

pub mod addat;
pub mod counter;
pub mod register;
pub mod rga;
pub mod seq;
pub mod set;
pub mod wooki;
pub mod wooki_fast;

pub use addat::{AddAt1Spec, AddAt2Spec, AddAt3Spec, AddAtOp, AddAtRetOp};
pub use counter::{CounterOp, CounterSpec};
pub use register::{vv_leq, vv_lt, MvRegOp, MvRegSpec, RegOp, RegSpec, VersionVec};
pub use rga::{Anchor, RgaOp, RgaSpec};
pub use set::{OrSetOp, OrSetSpec, SetOp, SetSpec};
pub use wooki::{WookiAnchor, WookiOp, WookiSpec};
pub use wooki_fast::{check_wooki_guided, check_wooki_linearization};
