//! The three `addAt` list specifications of Appendix C.
//!
//! A list with an *index-based* insert (`addAt(a, k)` puts `a` at position
//! `k`) admits several plausible specifications:
//!
//! * [`AddAt1Spec`] — no tombstones: `remove` really deletes (Appendix C.2);
//! * [`AddAt2Spec`] — tombstones, with the index counted over *visible*
//!   elements (Appendix C.2, nondeterministic);
//! * [`AddAt3Spec`] — the "local view" specification (Appendix C.5): every
//!   mutating operation *returns* the updated local list, and the spec
//!   nondeterministically guesses which sub-sequence of the global list the
//!   origin replica observed.
//!
//! Lemma C.1 proves the RGA-based `addAt` implementation is **not**
//! RA-linearizable w.r.t. the first two; Lemma C.2 proves it **is** w.r.t.
//! the third. All three are reproduced in `tests/fig14_addat.rs`.

use crate::seq::{is_subsequence, position_of, without};
use ral_core::elem::Elem;
use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Labels for the return-free `addAt` interface (specs 1 and 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AddAtOp<E> {
    /// `addAt(a, k)` — insert `a` at index `k` (clamped to the tail).
    AddAt(E, usize),
    /// `remove(a)`.
    Remove(E),
    /// `read() ⇒ s`.
    Read(Vec<E>),
}

impl<E> SpecLabel for AddAtOp<E> {
    fn kind(&self) -> Kind {
        match self {
            AddAtOp::Read(_) => Kind::Query,
            _ => Kind::Update,
        }
    }
}

/// `Spec(addAt1)`: no tombstones; `remove(a)` deletes `a` from the list.
pub struct AddAt1Spec<E> {
    _elem: PhantomData<E>,
}

impl<E> AddAt1Spec<E> {
    /// Creates the tombstone-free `addAt` specification.
    pub fn new() -> Self {
        AddAt1Spec { _elem: PhantomData }
    }
}

impl<E> Clone for AddAt1Spec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for AddAt1Spec<E> {}

impl<E> Default for AddAt1Spec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for AddAt1Spec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AddAt1Spec")
    }
}

impl<E: Elem> Spec for AddAt1Spec<E> {
    type Label = AddAtOp<E>;
    type State = Vec<E>;

    fn initial(&self) -> Vec<E> {
        Vec::new()
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, l: &Vec<E>, label: &AddAtOp<E>) -> Vec<Vec<E>> {
        match label {
            AddAtOp::AddAt(a, k) => {
                if l.contains(a) {
                    return vec![];
                }
                let mut next = l.clone();
                let at = (*k).min(l.len());
                next.insert(at, a.clone());
                vec![next]
            }
            AddAtOp::Remove(a) => match position_of(l, a) {
                Some(p) => {
                    let mut next = l.clone();
                    next.remove(p);
                    vec![next]
                }
                None => vec![],
            },
            AddAtOp::Read(s) => {
                if s == l {
                    vec![l.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

/// `Spec(addAt2)`: tombstones; the index `k` counts only *visible* (not
/// tombstoned) elements, which makes insertion nondeterministic — any slot
/// whose visible prefix has length `k` qualifies.
pub struct AddAt2Spec<E> {
    _elem: PhantomData<E>,
}

impl<E> AddAt2Spec<E> {
    /// Creates the tombstoned `addAt` specification.
    pub fn new() -> Self {
        AddAt2Spec { _elem: PhantomData }
    }
}

impl<E> Clone for AddAt2Spec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for AddAt2Spec<E> {}

impl<E> Default for AddAt2Spec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for AddAt2Spec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AddAt2Spec")
    }
}

/// Abstract state `(l, T)` shared by `Spec(addAt2)` and `Spec(addAt3)`.
pub type AddAtState<E> = (Vec<E>, BTreeSet<E>);

impl<E: Elem> Spec for AddAt2Spec<E> {
    type Label = AddAtOp<E>;
    type State = AddAtState<E>;

    fn initial(&self) -> Self::State {
        (Vec::new(), BTreeSet::new())
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &AddAtOp<E>) -> Vec<Self::State> {
        let (l, t) = state;
        match label {
            AddAtOp::AddAt(a, k) => {
                if l.contains(a) {
                    return vec![];
                }
                let mut succs = Vec::new();
                // Rule 1: split l = l1 · l2 with |l1 / T| = k.
                for p in 0..=l.len() {
                    let visible_prefix = l[..p].iter().filter(|x| !t.contains(*x)).count();
                    if visible_prefix == *k {
                        let mut next = l.clone();
                        next.insert(p, a.clone());
                        let cand = (next, t.clone());
                        if !succs.contains(&cand) {
                            succs.push(cand);
                        }
                    }
                }
                // Rule 2: |l / T| < k appends at the end.
                let visible = l.iter().filter(|x| !t.contains(*x)).count();
                if visible < *k {
                    let mut next = l.clone();
                    next.push(a.clone());
                    let cand = (next, t.clone());
                    if !succs.contains(&cand) {
                        succs.push(cand);
                    }
                }
                succs
            }
            AddAtOp::Remove(a) => {
                if !l.contains(a) {
                    return vec![];
                }
                let mut tomb = t.clone();
                tomb.insert(a.clone());
                vec![(l.clone(), tomb)]
            }
            AddAtOp::Read(s) => {
                let tomb: Vec<E> = t.iter().cloned().collect();
                if &without(l, &tomb) == s {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

/// Labels for the returning `addAt` interface of Appendix C.4 (spec 3):
/// mutating operations return the origin replica's updated list.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AddAtRetOp<E> {
    /// `addAt(a, k) ⇒ s` — insert and return the local view.
    AddAt(E, usize, Vec<E>),
    /// `remove(a) ⇒ s` — remove and return the local view.
    Remove(E, Vec<E>),
    /// `read() ⇒ s`.
    Read(Vec<E>),
}

impl<E> SpecLabel for AddAtRetOp<E> {
    fn kind(&self) -> Kind {
        match self {
            AddAtRetOp::Read(_) => Kind::Query,
            _ => Kind::Update,
        }
    }
}

/// `Spec(addAt3)`: the "local view" specification of Appendix C.5.
///
/// `addAt(a, k) ⇒ s₁ · a · s₂` is admitted when `s₁ · s₂` is a sub-sequence
/// of the abstract list (the part the origin had seen), `|s₁| = k` (or
/// `|s₁| < k` with `s₂` empty — the clamped-to-tail case), and the new
/// element lands right after the last element of `s₁` (at the head if `s₁`
/// is empty).
pub struct AddAt3Spec<E> {
    _elem: PhantomData<E>,
}

impl<E> AddAt3Spec<E> {
    /// Creates the local-view `addAt` specification.
    pub fn new() -> Self {
        AddAt3Spec { _elem: PhantomData }
    }
}

impl<E> Clone for AddAt3Spec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for AddAt3Spec<E> {}

impl<E> Default for AddAt3Spec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for AddAt3Spec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AddAt3Spec")
    }
}

impl<E: Elem> Spec for AddAt3Spec<E> {
    type Label = AddAtRetOp<E>;
    type State = AddAtState<E>;

    fn initial(&self) -> Self::State {
        (Vec::new(), BTreeSet::new())
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &AddAtRetOp<E>) -> Vec<Self::State> {
        let (l, t) = state;
        match label {
            AddAtRetOp::AddAt(a, k, s) => {
                if l.contains(a) {
                    return vec![];
                }
                let Some(i) = position_of(s, a) else {
                    return vec![]; // the return must contain the new element
                };
                let s1 = &s[..i];
                let s2 = &s[i + 1..];
                if s1.len() != *k && !(s1.len() < *k && s2.is_empty()) {
                    return vec![];
                }
                let observed: Vec<E> = s1.iter().chain(s2).cloned().collect();
                if !is_subsequence(&observed, l) {
                    return vec![];
                }
                let at = match s1.last() {
                    None => 0,
                    Some(b) => match position_of(l, b) {
                        Some(p) => p + 1,
                        None => return vec![],
                    },
                };
                let mut next = l.clone();
                next.insert(at, a.clone());
                vec![(next, t.clone())]
            }
            AddAtRetOp::Remove(a, s) => {
                if !l.contains(a) || s.contains(a) || !is_subsequence(s, l) {
                    return vec![];
                }
                let mut tomb = t.clone();
                tomb.insert(a.clone());
                vec![(l.clone(), tomb)]
            }
            AddAtRetOp::Read(s) => {
                let tomb: Vec<E> = t.iter().cloned().collect();
                if &without(l, &tomb) == s {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::{admits, Frontier};

    #[test]
    fn addat1_inserts_by_index() {
        let spec = AddAt1Spec::new();
        assert!(admits(
            &spec,
            &[
                AddAtOp::AddAt('a', 0),
                AddAtOp::AddAt('b', 0),
                AddAtOp::AddAt('c', 1),
                AddAtOp::Read(vec!['b', 'c', 'a']),
            ]
        ));
    }

    #[test]
    fn addat1_clamps_to_tail() {
        let spec = AddAt1Spec::new();
        assert!(admits(
            &spec,
            &[
                AddAtOp::AddAt('a', 9),
                AddAtOp::AddAt('b', 9),
                AddAtOp::Read(vec!['a', 'b']),
            ]
        ));
    }

    #[test]
    fn addat1_remove_deletes() {
        let spec = AddAt1Spec::new();
        assert!(admits(
            &spec,
            &[
                AddAtOp::AddAt('a', 0),
                AddAtOp::Remove('a'),
                AddAtOp::Read(vec![]),
            ]
        ));
        assert!(!admits(&spec, &[AddAtOp::<char>::Remove('z')]));
    }

    #[test]
    fn addat2_index_skips_tombstones() {
        let spec = AddAt2Spec::new();
        // a then b after it; remove a; inserting at visible index 0 may land
        // before or after the tombstoned a, so both reads are possible.
        let prefix = vec![
            AddAtOp::AddAt('a', 0),
            AddAtOp::AddAt('b', 1),
            AddAtOp::Remove('a'),
        ];
        let mut one = prefix.clone();
        one.extend([AddAtOp::AddAt('c', 0), AddAtOp::Read(vec!['c', 'b'])]);
        assert!(admits(&spec, &one));
        let mut two = prefix;
        two.extend([AddAtOp::AddAt('c', 1), AddAtOp::Read(vec!['b', 'c'])]);
        assert!(admits(&spec, &two));
    }

    #[test]
    fn addat2_nondeterministic_slot_count() {
        let spec = AddAt2Spec::new();
        let mut f = Frontier::new(&spec);
        assert!(f.advance(&AddAtOp::AddAt('a', 0)));
        assert!(f.advance(&AddAtOp::Remove('a')));
        // Visible list empty: slots before and after the tombstone both have
        // visible prefix 0.
        assert!(f.advance(&AddAtOp::AddAt('b', 0)));
        assert_eq!(f.states().len(), 2);
    }

    #[test]
    fn addat3_checks_local_view() {
        let spec = AddAt3Spec::new();
        assert!(admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::AddAt('b', 1, vec!['a', 'b']),
                AddAtRetOp::Read(vec!['a', 'b']),
            ]
        ));
        // A replica that hadn't seen 'b' may insert at 1 observing only 'a'.
        assert!(admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::AddAt('b', 1, vec!['a', 'b']),
                AddAtRetOp::AddAt('c', 1, vec!['a', 'c']),
            ]
        ));
    }

    #[test]
    fn addat3_rejects_bogus_views() {
        let spec = AddAt3Spec::new();
        // Return value must contain the inserted element.
        assert!(!admits(&spec, &[AddAtRetOp::AddAt('a', 0, vec![])]));
        // Observed part must be a subsequence of the abstract list.
        assert!(!admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::AddAt('b', 1, vec!['z', 'b']),
            ]
        ));
        // Index must match the observed prefix.
        assert!(!admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::AddAt('b', 0, vec!['a', 'b']),
            ]
        ));
    }

    #[test]
    fn addat3_head_insert_with_large_index() {
        // Empty local view, k arbitrary: s = [a] alone.
        let spec = AddAt3Spec::new();
        assert!(admits(&spec, &[AddAtRetOp::AddAt('a', 5, vec!['a'])]));
    }

    #[test]
    fn addat3_remove_view() {
        let spec = AddAt3Spec::new();
        assert!(admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::AddAt('b', 1, vec!['a', 'b']),
                AddAtRetOp::Remove('a', vec!['b']),
                AddAtRetOp::Read(vec!['b']),
            ]
        ));
        // The view must not contain the removed element.
        assert!(!admits(
            &spec,
            &[
                AddAtRetOp::AddAt('a', 0, vec!['a']),
                AddAtRetOp::Remove('a', vec!['a']),
            ]
        ));
    }

    #[test]
    fn kinds() {
        assert!(AddAtOp::AddAt('a', 0).is_update());
        assert!(AddAtOp::Remove('a').is_update());
        assert!(AddAtOp::<char>::Read(vec![]).is_query());
        assert!(AddAtRetOp::AddAt('a', 0, vec![]).is_update());
        assert!(AddAtRetOp::Remove('a', vec![]).is_update());
        assert!(AddAtRetOp::<char>::Read(vec![]).is_query());
    }
}
