//! `Spec(Wooki)` — Appendix B.3: a list with an add-*between* interface.
//!
//! Unlike RGA's `addAfter`, `addBetween(a, b, c)` only constrains the new
//! element to land somewhere strictly between `a` and `c`; the specification
//! is genuinely **nondeterministic** and the implementation's conflict
//! resolution (degrees + identifier order) deterministically refines it.

use crate::seq::{position_of, without};
use ral_core::elem::Elem;
use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// An anchor of `addBetween`: one of the sentinels or an element.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WookiAnchor<E> {
    /// The begin sentinel `◦_begin`.
    Begin,
    /// An element assumed present.
    Elem(E),
    /// The end sentinel `◦_end`.
    End,
}

/// Specification labels of Wooki.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WookiOp<E> {
    /// `addBetween(a, b, c)` — an update inserting `b` somewhere between `a`
    /// and `c`.
    AddBetween(WookiAnchor<E>, E, WookiAnchor<E>),
    /// `remove(a)` — an update tombstoning `a`.
    Remove(E),
    /// `read() ⇒ l/T` — a query.
    Read(Vec<E>),
}

impl<E> SpecLabel for WookiOp<E> {
    fn kind(&self) -> Kind {
        match self {
            WookiOp::Read(_) => Kind::Query,
            _ => Kind::Update,
        }
    }
}

/// `Spec(Wooki)`.
///
/// # Examples
///
/// ```
/// use ral_core::spec::admits;
/// use ral_spec::wooki::{WookiAnchor, WookiOp, WookiSpec};
///
/// let spec = WookiSpec::new();
/// // b can land before or after x, so both reads are admitted.
/// let prefix = [
///     WookiOp::AddBetween(WookiAnchor::Begin, 'x', WookiAnchor::End),
///     WookiOp::AddBetween(WookiAnchor::Begin, 'b', WookiAnchor::End),
/// ];
/// let mut one = prefix.to_vec();
/// one.push(WookiOp::Read(vec!['b', 'x']));
/// let mut two = prefix.to_vec();
/// two.push(WookiOp::Read(vec!['x', 'b']));
/// assert!(admits(&spec, &one));
/// assert!(admits(&spec, &two));
/// ```
pub struct WookiSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> WookiSpec<E> {
    /// Creates the Wooki specification.
    pub fn new() -> Self {
        WookiSpec { _elem: PhantomData }
    }
}

impl<E> Clone for WookiSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for WookiSpec<E> {}

impl<E> Default for WookiSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for WookiSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WookiSpec")
    }
}

/// Abstract state `(l, T)` of `Spec(Wooki)`.
pub type WookiState<E> = (Vec<E>, BTreeSet<E>);

impl<E: Elem> Spec for WookiSpec<E> {
    type Label = WookiOp<E>;
    type State = WookiState<E>;

    fn initial(&self) -> Self::State {
        (Vec::new(), BTreeSet::new())
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &WookiOp<E>) -> Vec<Self::State> {
        let (l, t) = state;
        match label {
            WookiOp::AddBetween(a, b, c) => {
                if l.contains(b) {
                    return vec![]; // b must be fresh
                }
                // Insertion slots strictly between the anchors. `lo` is the
                // first legal index, `hi` the last.
                let lo = match a {
                    WookiAnchor::Begin => 0,
                    WookiAnchor::Elem(x) => match position_of(l, x) {
                        Some(p) => p + 1,
                        None => return vec![],
                    },
                    WookiAnchor::End => return vec![], // a ≠ ◦_end
                };
                let hi = match c {
                    WookiAnchor::End => l.len(),
                    WookiAnchor::Elem(y) => match position_of(l, y) {
                        Some(p) => p,
                        None => return vec![],
                    },
                    WookiAnchor::Begin => return vec![], // c ≠ ◦_begin
                };
                if lo > hi {
                    return vec![]; // a must precede c
                }
                (lo..=hi)
                    .map(|at| {
                        let mut next = l.clone();
                        next.insert(at, b.clone());
                        (next, t.clone())
                    })
                    .collect()
            }
            WookiOp::Remove(a) => {
                if !l.contains(a) {
                    return vec![];
                }
                let mut tomb = t.clone();
                tomb.insert(a.clone());
                vec![(l.clone(), tomb)]
            }
            WookiOp::Read(s) => {
                let tomb: Vec<E> = t.iter().cloned().collect();
                if &without(l, &tomb) == s {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::admits;

    fn begin() -> WookiAnchor<char> {
        WookiAnchor::Begin
    }

    fn end() -> WookiAnchor<char> {
        WookiAnchor::End
    }

    fn el(c: char) -> WookiAnchor<char> {
        WookiAnchor::Elem(c)
    }

    #[test]
    fn insert_between_elements_is_constrained() {
        let spec = WookiSpec::new();
        let prefix = vec![
            WookiOp::AddBetween(begin(), 'a', end()),
            WookiOp::AddBetween(el('a'), 'c', end()),
            WookiOp::AddBetween(el('a'), 'b', el('c')),
        ];
        let mut good = prefix.clone();
        good.push(WookiOp::Read(vec!['a', 'b', 'c']));
        assert!(admits(&spec, &good));
        // b must stay between a and c.
        let mut bad = prefix;
        bad.push(WookiOp::Read(vec!['b', 'a', 'c']));
        assert!(!admits(&spec, &bad));
    }

    #[test]
    fn anchors_must_be_ordered() {
        let spec = WookiSpec::new();
        assert!(!admits(
            &spec,
            &[
                WookiOp::AddBetween(begin(), 'a', end()),
                WookiOp::AddBetween(begin(), 'b', end()),
                // a and b exist, but which order? Try to insert between them
                // both ways; one of the two prefixes must be inadmissible.
                WookiOp::Read(vec!['a', 'b']),
                WookiOp::AddBetween(el('b'), 'x', el('a')),
            ]
        ));
    }

    #[test]
    fn fresh_value_required() {
        let spec = WookiSpec::new();
        assert!(!admits(
            &spec,
            &[
                WookiOp::AddBetween(begin(), 'a', end()),
                WookiOp::AddBetween(begin(), 'a', end()),
            ]
        ));
    }

    #[test]
    fn sentinel_misuse_rejected() {
        let spec = WookiSpec::new();
        assert!(!admits(&spec, &[WookiOp::AddBetween(end(), 'a', end())]));
        assert!(!admits(
            &spec,
            &[WookiOp::AddBetween(begin(), 'a', begin())]
        ));
    }

    #[test]
    fn remove_and_read() {
        let spec = WookiSpec::new();
        assert!(admits(
            &spec,
            &[
                WookiOp::AddBetween(begin(), 'a', end()),
                WookiOp::Remove('a'),
                WookiOp::Read(vec![]),
            ]
        ));
        assert!(!admits(&spec, &[WookiOp::<char>::Remove('z')]));
    }

    #[test]
    fn nondeterminism_tracks_all_positions() {
        let spec = WookiSpec::new();
        // Three concurrent-ish inserts between the sentinels: any
        // permutation is readable.
        let prefix = vec![
            WookiOp::AddBetween(begin(), 'a', end()),
            WookiOp::AddBetween(begin(), 'b', end()),
            WookiOp::AddBetween(begin(), 'c', end()),
        ];
        for perm in [
            vec!['a', 'b', 'c'],
            vec!['c', 'b', 'a'],
            vec!['b', 'a', 'c'],
        ] {
            let mut seq = prefix.clone();
            seq.push(WookiOp::Read(perm));
            assert!(admits(&spec, &seq));
        }
    }

    #[test]
    fn kinds() {
        assert!(WookiOp::AddBetween(begin(), 'a', end()).is_update());
        assert!(WookiOp::Remove('a').is_update());
        assert!(WookiOp::<char>::Read(vec![]).is_query());
    }
}
