//! Set specifications: the plain `Spec(Set)` (Appendix E.2) and the
//! identifier-carrying `Spec(OR-Set)` (Example 3.4).
//!
//! `Spec(Set)` treats `remove(a)` as a plain update — this is the
//! specification under which the OR-Set execution of Figure 5a is **not**
//! linearizable. `Spec(OR-Set)` is the target of the query-update rewriting
//! of Example 3.6: `remove(a) ⇒ R` becomes `readIds(a) ⇒ R · remove(R)`.

use ral_core::elem::Elem;
use ral_core::ids::Uid;
use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Labels of the plain set specification.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SetOp<E> {
    /// `add(a)` — an update.
    Add(E),
    /// `remove(a)` — an update (this is the naive, non-rewritten view).
    Remove(E),
    /// `read() ⇒ A` — a query.
    Read(BTreeSet<E>),
}

impl<E> SpecLabel for SetOp<E> {
    fn kind(&self) -> Kind {
        match self {
            SetOp::Read(_) => Kind::Query,
            _ => Kind::Update,
        }
    }
}

/// `Spec(Set)`: abstract state is the set of present elements.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use ral_core::spec::admits;
/// use ral_spec::set::{SetOp, SetSpec};
///
/// let spec = SetSpec::new();
/// assert!(admits(&spec, &[
///     SetOp::Add('a'),
///     SetOp::Remove('a'),
///     SetOp::Read(BTreeSet::new()),
/// ]));
/// ```
pub struct SetSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> SetSpec<E> {
    /// Creates the plain set specification.
    pub fn new() -> Self {
        SetSpec { _elem: PhantomData }
    }
}

impl<E> Clone for SetSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for SetSpec<E> {}

impl<E> Default for SetSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for SetSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SetSpec")
    }
}

impl<E: Elem> Spec for SetSpec<E> {
    type Label = SetOp<E>;
    type State = BTreeSet<E>;

    fn initial(&self) -> BTreeSet<E> {
        BTreeSet::new()
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &BTreeSet<E>, label: &SetOp<E>) -> Vec<BTreeSet<E>> {
        match label {
            SetOp::Add(a) => {
                let mut next = state.clone();
                next.insert(a.clone());
                vec![next]
            }
            SetOp::Remove(a) => {
                let mut next = state.clone();
                next.remove(a);
                vec![next]
            }
            SetOp::Read(a) => {
                if a == state {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

/// Labels of the OR-Set specification (Example 3.4), i.e. the image of the
/// query-update rewriting of Example 3.6.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OrSetOp<E> {
    /// `add(a, id)` — an update; precondition `(a, id) ∉ ϕ`.
    Add(E, Uid),
    /// `remove(S)` — an update removing exactly the observed pairs.
    Remove(BTreeSet<(E, Uid)>),
    /// `readIds(a) ⇒ S` — a query returning all pairs carrying `a`.
    ReadIds(E, BTreeSet<(E, Uid)>),
    /// `read() ⇒ A` — a query returning the element view.
    Read(BTreeSet<E>),
}

impl<E> SpecLabel for OrSetOp<E> {
    fn kind(&self) -> Kind {
        match self {
            OrSetOp::Add(..) | OrSetOp::Remove(_) => Kind::Update,
            OrSetOp::ReadIds(..) | OrSetOp::Read(_) => Kind::Query,
        }
    }
}

/// `Spec(OR-Set)`: abstract state is a set of element/identifier pairs.
pub struct OrSetSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> OrSetSpec<E> {
    /// Creates the OR-Set specification.
    pub fn new() -> Self {
        OrSetSpec { _elem: PhantomData }
    }
}

impl<E> Clone for OrSetSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for OrSetSpec<E> {}

impl<E> Default for OrSetSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for OrSetSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OrSetSpec")
    }
}

impl<E: Elem> Spec for OrSetSpec<E> {
    type Label = OrSetOp<E>;
    type State = BTreeSet<(E, Uid)>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &OrSetOp<E>) -> Vec<Self::State> {
        match label {
            OrSetOp::Add(a, id) => {
                let pair = (a.clone(), *id);
                if state.contains(&pair) {
                    return vec![];
                }
                let mut next = state.clone();
                next.insert(pair);
                vec![next]
            }
            OrSetOp::Remove(s) => {
                let next: Self::State = state.difference(s).cloned().collect();
                vec![next]
            }
            OrSetOp::ReadIds(a, s) => {
                let expect: Self::State = state.iter().filter(|(e, _)| e == a).cloned().collect();
                if &expect == s {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            OrSetOp::Read(a) => {
                let values: BTreeSet<E> = state.iter().map(|(e, _)| e.clone()).collect();
                if &values == a {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::admits;

    #[test]
    fn plain_set_add_remove() {
        let spec = SetSpec::new();
        assert!(admits(
            &spec,
            &[
                SetOp::Add('a'),
                SetOp::Add('a'),
                SetOp::Remove('a'),
                SetOp::Read(BTreeSet::new()),
            ]
        ));
        assert!(!admits(
            &spec,
            &[SetOp::Add('a'), SetOp::Read(BTreeSet::new())]
        ));
    }

    #[test]
    fn plain_set_remove_absent_is_noop() {
        let spec = SetSpec::new();
        assert!(admits(
            &spec,
            &[SetOp::Remove('z'), SetOp::Read(BTreeSet::new())]
        ));
    }

    #[test]
    fn or_set_remove_only_observed_ids() {
        let spec = OrSetSpec::new();
        // add(a,0) ; readIds(a)⇒{(a,0)} ; add(a,1) ; remove({(a,0)}) ; read⇒{a}
        let seq = [
            OrSetOp::Add('a', Uid(0)),
            OrSetOp::ReadIds('a', BTreeSet::from([('a', Uid(0))])),
            OrSetOp::Add('a', Uid(1)),
            OrSetOp::Remove(BTreeSet::from([('a', Uid(0))])),
            OrSetOp::Read(BTreeSet::from(['a'])),
        ];
        assert!(admits(&spec, &seq));
    }

    #[test]
    fn or_set_add_requires_fresh_pair() {
        let spec = OrSetSpec::new();
        assert!(!admits(
            &spec,
            &[OrSetOp::Add('a', Uid(0)), OrSetOp::Add('a', Uid(0))]
        ));
        assert!(admits(
            &spec,
            &[OrSetOp::Add('a', Uid(0)), OrSetOp::Add('a', Uid(1))]
        ));
    }

    #[test]
    fn or_set_read_ids_checked() {
        let spec = OrSetSpec::new();
        assert!(!admits(
            &spec,
            &[
                OrSetOp::Add('a', Uid(0)),
                OrSetOp::ReadIds('a', BTreeSet::new()),
            ]
        ));
    }

    #[test]
    fn or_set_read_sees_all_values() {
        let spec = OrSetSpec::new();
        assert!(admits(
            &spec,
            &[
                OrSetOp::Add('a', Uid(0)),
                OrSetOp::Add('b', Uid(1)),
                OrSetOp::Read(BTreeSet::from(['a', 'b'])),
            ]
        ));
    }

    #[test]
    fn kinds() {
        assert!(SetOp::Add(1u32).is_update());
        assert!(SetOp::Remove(1u32).is_update());
        assert!(SetOp::<u32>::Read(BTreeSet::new()).is_query());
        assert!(OrSetOp::Add('a', Uid(0)).is_update());
        assert!(OrSetOp::<char>::Remove(BTreeSet::new()).is_update());
        assert!(OrSetOp::ReadIds('a', BTreeSet::new()).is_query());
        assert!(OrSetOp::<char>::Read(BTreeSet::new()).is_query());
    }
}
