//! A polynomial-time RA-linearizability validator for Wooki histories.
//!
//! `Spec(Wooki)` is nondeterministic — `addBetween(a, b, c)` may choose any
//! slot between its anchors — so the generic frontier-based checker tracks
//! every reachable abstract list and explodes exponentially in the number of
//! concurrent inserts. This module exploits the structure of the
//! specification instead:
//!
//! * a sequence of updates is admitted **iff** every insert's anchors are
//!   present (and its value fresh) when it executes and the accumulated
//!   *betweenness constraints* `a < b < c` stay acyclic — reachable lists
//!   are exactly the linear extensions of the constraint DAG;
//! * a read `⇒ s` is justified by its visible updates **iff** `s` contains
//!   exactly the visible (non-removed) elements and some linear extension of
//!   the constraint DAG projects onto `s` — decidable by a latest-feasible
//!   greedy: tombstoned elements are emitted only when they are ancestors of
//!   the next visible element.
//!
//! The result is cross-checked against the frontier semantics on small
//! histories (see the tests) and lets Wooki runs scale from ~8 to hundreds
//! of concurrent inserts.

use crate::wooki::{WookiAnchor, WookiOp};
use ral_core::bitset::BitSet;
use ral_core::elem::Elem;
use ral_core::history::History;
use ral_core::label::SpecLabel;
use ral_core::ralin::{Linearization, Violation};
use std::collections::HashMap;

/// The betweenness-constraint graph over inserted elements. Sentinels are
/// implicit (Begin precedes and End follows everything).
struct Constraints<E> {
    index: HashMap<E, usize>,
    // succ[i] = elements that must come after element i.
    succ: Vec<BitSet>,
    removed: Vec<bool>,
}

impl<E: Elem> Constraints<E> {
    fn new() -> Self {
        Constraints {
            index: HashMap::new(),
            succ: Vec::new(),
            removed: Vec::new(),
        }
    }

    fn id_of(&self, e: &E) -> Option<usize> {
        self.index.get(e).copied()
    }

    /// Registers an insert; returns `false` if the anchors are missing, the
    /// value is stale, or the new constraints close a cycle.
    fn insert(&mut self, a: &WookiAnchor<E>, b: &E, c: &WookiAnchor<E>) -> bool {
        if self.index.contains_key(b) {
            return false; // value must be fresh
        }
        let left = match a {
            WookiAnchor::Begin => None,
            WookiAnchor::End => return false,
            WookiAnchor::Elem(x) => match self.id_of(x) {
                Some(i) => Some(i),
                None => return false,
            },
        };
        let right = match c {
            WookiAnchor::End => None,
            WookiAnchor::Begin => return false,
            WookiAnchor::Elem(y) => match self.id_of(y) {
                Some(i) => Some(i),
                None => return false,
            },
        };
        // Feasibility: a must be placeable before c, i.e. no path right → left.
        if let (Some(l), Some(r)) = (left, right) {
            if l == r || self.reachable(r, l) {
                return false;
            }
        }
        let b_id = self.succ.len();
        self.index.insert(b.clone(), b_id);
        self.succ.push(BitSet::new());
        self.removed.push(false);
        if let Some(l) = left {
            self.succ[l].insert(b_id);
        }
        if let Some(r) = right {
            self.succ[b_id].insert(r);
        }
        true
    }

    /// Registers a removal; returns `false` if the element was never
    /// inserted.
    fn remove(&mut self, a: &E) -> bool {
        match self.id_of(a) {
            Some(i) => {
                self.removed[i] = true;
                true
            }
            None => false,
        }
    }

    /// Is there a path `from → … → to`?
    fn reachable(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = BitSet::new();
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            stack.extend(self.succ[x].iter());
        }
        false
    }

    /// Direct predecessors of each element (inverse adjacency).
    fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.succ.len()];
        for (a, succs) in self.succ.iter().enumerate() {
            for b in succs {
                preds[b].push(a);
            }
        }
        preds
    }

    /// Does some linear extension of the DAG project onto `s` when removed
    /// elements are hidden? `s` must list exactly the visible elements.
    fn admits_view(&self, s: &[E]) -> bool {
        let visible_count = self.removed.iter().filter(|r| !**r).count();
        if s.len() != visible_count {
            return false;
        }
        let mut ids = Vec::with_capacity(s.len());
        for e in s {
            match self.id_of(e) {
                Some(i) if !self.removed[i] => ids.push(i),
                _ => return false,
            }
        }
        // Latest-feasible greedy: before emitting a visible element, emit all
        // of its unemitted ancestors; if one of them is visible, the order
        // contradicts the constraints.
        let preds = self.preds();
        let mut emitted = vec![false; self.succ.len()];
        for &v in &ids {
            let mut stack = vec![(v, false)];
            while let Some((x, expanded)) = stack.pop() {
                if emitted[x] {
                    continue;
                }
                if expanded {
                    emitted[x] = true;
                    continue;
                }
                if x != v && !self.removed[x] {
                    return false; // a visible ancestor is out of order
                }
                stack.push((x, true));
                for &p in &preds[x] {
                    if !emitted[p] {
                        stack.push((p, false));
                    }
                }
            }
        }
        true
    }
}

/// Validates a candidate linearization of a Wooki history against
/// Definition 3.5, in time polynomial in the history size.
///
/// # Errors
///
/// Returns the same [`Violation`] vocabulary as the generic checker.
pub fn check_wooki_linearization<E: Elem>(
    h: &History<WookiOp<E>>,
    order: &[usize],
) -> Result<(), Violation> {
    // Permutation + visibility (condition (i)).
    if order.len() != h.len() {
        return Err(Violation::NotAPermutation);
    }
    let mut pos = vec![usize::MAX; h.len()];
    for (p, &i) in order.iter().enumerate() {
        if i >= h.len() || pos[i] != usize::MAX {
            return Err(Violation::NotAPermutation);
        }
        pos[i] = p;
    }
    for later in 0..h.len() {
        for earlier in h.preds(later) {
            if pos[earlier] >= pos[later] {
                return Err(Violation::InconsistentWithVisibility { earlier, later });
            }
        }
    }

    // Condition (ii): the update projection builds an acyclic constraint
    // graph with valid preconditions.
    let mut global = Constraints::new();
    for &i in order {
        let admitted = match h.label(i) {
            WookiOp::AddBetween(a, b, c) => global.insert(a, b, c),
            WookiOp::Remove(a) => global.remove(a),
            WookiOp::Read(_) => continue,
        };
        if !admitted {
            return Err(Violation::UpdatesNotAdmitted { at: i });
        }
    }

    // Condition (iii): every read justified on its visible updates.
    for &q in order {
        let WookiOp::Read(s) = h.label(q) else {
            continue;
        };
        let mut visible: Vec<usize> = h
            .preds(q)
            .iter()
            .filter(|&u| h.label(u).is_update())
            .collect();
        visible.sort_by_key(|&u| pos[u]);
        let mut local = Constraints::new();
        let mut ok = true;
        for u in visible {
            let admitted = match h.label(u) {
                WookiOp::AddBetween(a, b, c) => local.insert(a, b, c),
                WookiOp::Remove(a) => local.remove(a),
                WookiOp::Read(_) => unreachable!("filtered to updates"),
            };
            if !admitted {
                ok = false;
                break;
            }
        }
        if !ok || !local.admits_view(s) {
            return Err(Violation::QueryNotJustified { query: q });
        }
    }
    Ok(())
}

/// Builds and validates the execution-order witness (Wooki's class in
/// Figure 12) with the polynomial validator.
///
/// # Errors
///
/// Propagates the violation from [`check_wooki_linearization`].
pub fn check_wooki_guided<E: Elem>(h: &History<WookiOp<E>>) -> Result<Linearization, Violation> {
    let order: Vec<usize> = (0..h.len()).collect();
    check_wooki_linearization(h, &order)?;
    Ok(Linearization { order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::history::OpRecord;
    use ral_core::ids::ReplicaId;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn begin() -> WookiAnchor<char> {
        WookiAnchor::Begin
    }

    fn end() -> WookiAnchor<char> {
        WookiAnchor::End
    }

    fn el(c: char) -> WookiAnchor<char> {
        WookiAnchor::Elem(c)
    }

    #[test]
    fn accepts_reads_within_constraints() {
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(0)),
            [],
        );
        let b = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'b', end()), r(1)),
            [],
        );
        // A read seeing both may return either order.
        for view in [vec!['a', 'b'], vec!['b', 'a']] {
            let mut h2 = h.clone();
            h2.push(OpRecord::new(WookiOp::Read(view), r(0)), [a, b]);
            assert!(check_wooki_guided(&h2).is_ok());
        }
    }

    #[test]
    fn rejects_reads_outside_constraints() {
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(0)),
            [],
        );
        let b = h.push(
            OpRecord::new(WookiOp::AddBetween(el('a'), 'b', end()), r(0)),
            [a],
        );
        // b is constrained after a; the inverted read is unjustifiable.
        let q = h.push(OpRecord::new(WookiOp::Read(vec!['b', 'a']), r(0)), [a, b]);
        assert_eq!(
            check_wooki_guided(&h),
            Err(Violation::QueryNotJustified { query: q })
        );
    }

    #[test]
    fn tombstones_float_freely() {
        // a < x < b with x removed: reads of [a, b] are justified even
        // though x sits between them in every arrangement.
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(0)),
            [],
        );
        let x = h.push(
            OpRecord::new(WookiOp::AddBetween(el('a'), 'x', end()), r(0)),
            [a],
        );
        let b = h.push(
            OpRecord::new(WookiOp::AddBetween(el('x'), 'b', end()), r(0)),
            [a, x],
        );
        let rem = h.push(OpRecord::new(WookiOp::Remove('x'), r(0)), [a, x, b]);
        h.push(
            OpRecord::new(WookiOp::Read(vec!['a', 'b']), r(0)),
            [a, x, b, rem],
        );
        assert!(check_wooki_guided(&h).is_ok());
    }

    #[test]
    fn rejects_cyclic_updates() {
        // addBetween(b, x, a) with b constrained after a: infeasible.
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(0)),
            [],
        );
        let b = h.push(
            OpRecord::new(WookiOp::AddBetween(el('a'), 'b', end()), r(0)),
            [a],
        );
        let bad = h.push(
            OpRecord::new(WookiOp::AddBetween(el('b'), 'x', el('a')), r(0)),
            [a, b],
        );
        assert_eq!(
            check_wooki_guided(&h),
            Err(Violation::UpdatesNotAdmitted { at: bad })
        );
    }

    #[test]
    fn rejects_missing_anchor_and_stale_value() {
        let mut h = History::new();
        let bad = h.push(
            OpRecord::new(WookiOp::AddBetween(el('z'), 'a', end()), r(0)),
            [],
        );
        assert_eq!(
            check_wooki_guided(&h),
            Err(Violation::UpdatesNotAdmitted { at: bad })
        );
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(0)),
            [],
        );
        let dup = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'a', end()), r(1)),
            [a],
        );
        assert_eq!(
            check_wooki_guided(&h),
            Err(Violation::UpdatesNotAdmitted { at: dup })
        );
    }

    #[test]
    fn greedy_emits_tombstoned_ancestors_in_order() {
        // begin < x < y < b (x, y removed); read [b] must emit x, y first.
        let mut h = History::new();
        let x = h.push(
            OpRecord::new(WookiOp::AddBetween(begin(), 'x', end()), r(0)),
            [],
        );
        let y = h.push(
            OpRecord::new(WookiOp::AddBetween(el('x'), 'y', end()), r(0)),
            [x],
        );
        let b = h.push(
            OpRecord::new(WookiOp::AddBetween(el('y'), 'b', end()), r(0)),
            [x, y],
        );
        let r1 = h.push(OpRecord::new(WookiOp::Remove('x'), r(0)), [x, y, b]);
        let r2 = h.push(OpRecord::new(WookiOp::Remove('y'), r(0)), [x, y, b, r1]);
        h.push(
            OpRecord::new(WookiOp::Read(vec!['b']), r(0)),
            [x, y, b, r1, r2],
        );
        assert!(check_wooki_guided(&h).is_ok());
    }
}
