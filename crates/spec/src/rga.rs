//! `Spec(RGA)` — Example 3.3: a list with an add-after interface and a
//! tombstone set.
//!
//! The abstract state is `(l, T)`: `l` lists every inserted value (removed
//! or not) and `T` is the tombstone set. `addAfter(b, a)` inserts the fresh
//! value `a` immediately after `b` (or at the head for `b = ◦`); note that
//! `b` may already be tombstoned — the implementation allows inserting after
//! a removed element, and so must the specification.

use crate::seq::{position_of, without};
use ral_core::elem::Elem;
use ral_core::label::{Kind, SpecLabel};
use ral_core::spec::Spec;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// The first argument of `addAfter`: either the sentinel `◦` or an element
/// assumed to be present.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Anchor<E> {
    /// The pre-existing head sentinel `◦`.
    Head,
    /// An element already in the list.
    Elem(E),
}

/// Specification labels of RGA.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RgaOp<E> {
    /// `addAfter(b, a)` — an update inserting `a` right after `b`.
    AddAfter(Anchor<E>, E),
    /// `remove(b)` — an update tombstoning `b`.
    Remove(E),
    /// `read() ⇒ l/T` — a query returning the visible list.
    Read(Vec<E>),
}

impl<E> SpecLabel for RgaOp<E> {
    fn kind(&self) -> Kind {
        match self {
            RgaOp::Read(_) => Kind::Query,
            _ => Kind::Update,
        }
    }
}

/// `Spec(RGA)`.
///
/// # Examples
///
/// ```
/// use ral_core::spec::admits;
/// use ral_spec::rga::{Anchor, RgaOp, RgaSpec};
///
/// let spec = RgaSpec::new();
/// assert!(admits(&spec, &[
///     RgaOp::AddAfter(Anchor::Head, 'a'),
///     RgaOp::AddAfter(Anchor::Elem('a'), 'b'),
///     RgaOp::Remove('a'),
///     RgaOp::Read(vec!['b']),
/// ]));
/// ```
pub struct RgaSpec<E> {
    _elem: PhantomData<E>,
}

impl<E> RgaSpec<E> {
    /// Creates the RGA specification.
    pub fn new() -> Self {
        RgaSpec { _elem: PhantomData }
    }
}

impl<E> Clone for RgaSpec<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for RgaSpec<E> {}

impl<E> Default for RgaSpec<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for RgaSpec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RgaSpec")
    }
}

/// Abstract state `(l, T)` of `Spec(RGA)`.
pub type RgaState<E> = (Vec<E>, BTreeSet<E>);

impl<E: Elem> Spec for RgaSpec<E> {
    type Label = RgaOp<E>;
    type State = RgaState<E>;

    fn initial(&self) -> Self::State {
        (Vec::new(), BTreeSet::new())
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // All abstract states in this crate are `Hash`: skip the default
        // `Debug`-formatting path in the memoized checker's hot loop.
        ral_core::spec::fingerprint(state)
    }

    fn step(&self, state: &Self::State, label: &RgaOp<E>) -> Vec<Self::State> {
        let (l, t) = state;
        match label {
            RgaOp::AddAfter(anchor, a) => {
                if l.contains(a) {
                    return vec![]; // `a` must be fresh
                }
                let at = match anchor {
                    Anchor::Head => 0,
                    Anchor::Elem(b) => match position_of(l, b) {
                        Some(p) => p + 1,
                        None => return vec![], // `b` must be present
                    },
                };
                let mut next = l.clone();
                next.insert(at, a.clone());
                vec![(next, t.clone())]
            }
            RgaOp::Remove(b) => {
                if !l.contains(b) {
                    return vec![]; // precondition: b ∈ l
                }
                let mut tomb = t.clone();
                tomb.insert(b.clone());
                vec![(l.clone(), tomb)]
            }
            RgaOp::Read(s) => {
                let tomb: Vec<E> = t.iter().cloned().collect();
                if &without(l, &tomb) == s {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::spec::admits;

    fn head() -> Anchor<char> {
        Anchor::Head
    }

    fn after(c: char) -> Anchor<char> {
        Anchor::Elem(c)
    }

    #[test]
    fn builds_lists_in_order() {
        let spec = RgaSpec::new();
        // addAfter(◦,a) · addAfter(a,c) · addAfter(a,b) reads a·b·c
        assert!(admits(
            &spec,
            &[
                RgaOp::AddAfter(head(), 'a'),
                RgaOp::AddAfter(after('a'), 'c'),
                RgaOp::AddAfter(after('a'), 'b'),
                RgaOp::Read(vec!['a', 'b', 'c']),
            ]
        ));
    }

    #[test]
    fn head_insertion_prepends() {
        let spec = RgaSpec::new();
        assert!(admits(
            &spec,
            &[
                RgaOp::AddAfter(head(), 'a'),
                RgaOp::AddAfter(head(), 'b'),
                RgaOp::Read(vec!['b', 'a']),
            ]
        ));
    }

    #[test]
    fn remove_tombstones() {
        let spec = RgaSpec::new();
        assert!(admits(
            &spec,
            &[
                RgaOp::AddAfter(head(), 'a'),
                RgaOp::Remove('a'),
                RgaOp::Read(vec![]),
            ]
        ));
    }

    #[test]
    fn insert_after_tombstoned_element() {
        // The spec must allow adding after a removed element (it stays in l).
        let spec = RgaSpec::new();
        assert!(admits(
            &spec,
            &[
                RgaOp::AddAfter(head(), 'a'),
                RgaOp::Remove('a'),
                RgaOp::AddAfter(after('a'), 'b'),
                RgaOp::Read(vec!['b']),
            ]
        ));
    }

    #[test]
    fn preconditions_enforced() {
        let spec = RgaSpec::new();
        // anchor must exist
        assert!(!admits(&spec, &[RgaOp::AddAfter(after('z'), 'a')]));
        // value must be fresh
        assert!(!admits(
            &spec,
            &[RgaOp::AddAfter(head(), 'a'), RgaOp::AddAfter(head(), 'a')]
        ));
        // remove needs a present element
        assert!(!admits(&spec, &[RgaOp::<char>::Remove('z')]));
    }

    #[test]
    fn wrong_read_rejected() {
        let spec = RgaSpec::new();
        assert!(!admits(
            &spec,
            &[RgaOp::AddAfter(head(), 'a'), RgaOp::Read(vec![])]
        ));
    }

    #[test]
    fn kinds() {
        assert!(RgaOp::AddAfter(head(), 'a').is_update());
        assert!(RgaOp::Remove('a').is_update());
        assert!(RgaOp::<char>::Read(vec![]).is_query());
    }
}
