//! Sequence utilities shared by the list-like specifications.

/// Returns `true` if `needle` is a (not necessarily contiguous) subsequence
/// of `hay`.
///
/// # Examples
///
/// ```
/// use ral_spec::seq::is_subsequence;
///
/// assert!(is_subsequence(&['a', 'c'], &['a', 'b', 'c']));
/// assert!(!is_subsequence(&['c', 'a'], &['a', 'b', 'c']));
/// ```
pub fn is_subsequence<E: PartialEq>(needle: &[E], hay: &[E]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Returns the index of `x` in `hay`, if present.
pub fn position_of<E: PartialEq>(hay: &[E], x: &E) -> Option<usize> {
    hay.iter().position(|y| y == x)
}

/// Removes every element of `tomb` from `l` (the paper's `l / T`).
pub fn without<E: Clone + PartialEq>(l: &[E], tomb: &[E]) -> Vec<E> {
    l.iter().filter(|x| !tomb.contains(x)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequence_basics() {
        assert!(is_subsequence::<u8>(&[], &[]));
        assert!(is_subsequence(&[], &[1, 2]));
        assert!(is_subsequence(&[1, 2], &[1, 2]));
        assert!(is_subsequence(&[2], &[1, 2, 3]));
        assert!(is_subsequence(&[1, 3], &[1, 2, 3]));
        assert!(!is_subsequence(&[3, 1], &[1, 2, 3]));
        assert!(!is_subsequence(&[1, 1], &[1, 2]));
        assert!(!is_subsequence(&[4], &[1, 2, 3]));
    }

    #[test]
    fn position() {
        assert_eq!(position_of(&[7, 8, 9], &8), Some(1));
        assert_eq!(position_of(&[7, 8, 9], &1), None);
    }

    #[test]
    fn without_removes_tombstones() {
        assert_eq!(without(&[1, 2, 3, 2], &[2]), vec![1, 3]);
        assert_eq!(without(&[1, 2], &[]), vec![1, 2]);
    }
}
