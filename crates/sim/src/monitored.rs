//! Continuous RA-linearizability verification *during* simulation.
//!
//! [`MonitoredDriver`] wraps an [`OpDriver`] and threads every event the
//! engine produces into a streaming [`Monitor`](ral_core::ralin::Monitor)
//! (via its label-rewriting [`MonitorFeed`]): each successful invocation
//! feeds the new operation with the origin's seen-set as visibility, and
//! each applied delivery (plus the final sync's mailbox drain) reports the
//! receiving replica's advanced seen-frontier so the monitor can settle
//! causally-stable operations and compact its retained state.
//!
//! Where the batch checkers limit `sim::run` verification to excerpts the
//! search can decide afterwards, a monitored run keeps a rolling verdict
//! the whole way: retained monitor state is O(concurrent window), so
//! million-op simulations verify continuously — the long-churn tests pin
//! exactly that bound.

use ral_core::ids::ReplicaId;
use ral_core::label::Rewrite;
use ral_core::ralin::monitor::{MonitorFeed, MonitorStats, Verdict};
use ral_core::rng::Rng;
use ral_core::spec::Spec;
use ral_runtime::op_based::{Cluster, OpBased};

use crate::driver::{Driver, OpDriver, Received};

/// An [`OpDriver`] that verifies RA-linearizability continuously while the
/// simulation runs.
///
/// Implements [`Driver`] by delegation, so it plugs into
/// [`crate::sim::run`] and the scenario corpus unchanged; query
/// [`MonitoredDriver::verdict`] at any point (typically after the run) for
/// the rolling judgement and [`MonitoredDriver::stats`] for the
/// bounded-memory counters.
pub struct MonitoredDriver<C, F, R, S>
where
    C: OpBased,
    R: Rewrite<C::Label>,
    S: Spec<Label = R::Out>,
{
    inner: OpDriver<C, F>,
    feed: MonitorFeed<C::Label, R, S>,
    fed: usize,
}

impl<C, F, R, S> MonitoredDriver<C, F, R, S>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    R: Rewrite<C::Label>,
    S: Spec<Label = R::Out>,
{
    /// Wraps `inner`, monitoring its history against `spec` under the
    /// query-update rewriting `rw`. The driver must be fresh (no
    /// operations invoked yet): the monitor streams from the beginning.
    pub fn new(inner: OpDriver<C, F>, rw: R, spec: S) -> Self {
        assert!(
            inner.cluster().history().is_empty(),
            "monitoring must start from an empty history"
        );
        let n = inner.cluster().n_replicas();
        MonitoredDriver {
            inner,
            feed: MonitorFeed::new(rw, spec, n),
            fed: 0,
        }
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &OpDriver<C, F> {
        &self.inner
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster<C> {
        self.inner.cluster()
    }

    /// The monitor's rolling verdict. After [`Driver::final_sync`] every
    /// operation has settled, so [`Verdict::Ok`] means the whole recorded
    /// history is RA-linearizable and [`Verdict::Deferred`] /
    /// [`Verdict::Violated`] mean it is not.
    pub fn verdict(&self) -> Verdict {
        self.feed.verdict()
    }

    /// The monitor's counters (settled ops, live window, compactions…).
    pub fn stats(&self) -> &MonitorStats {
        self.feed.stats()
    }

    /// Emits the monitor counters to `ral_obs`.
    pub fn emit_obs(&self) {
        self.feed.monitor().emit_obs();
    }

    /// Consumes the driver, returning the wrapped one (and with it the
    /// cluster and history).
    pub fn into_inner(self) -> OpDriver<C, F> {
        self.inner
    }

    /// Feeds operations the cluster recorded since the last call, with
    /// the origin's frontier observation. An invocation pushes exactly
    /// one operation, but the loop keeps the feed correct even if a
    /// workload callback invokes multiple times per engine event.
    fn catch_up(&mut self) {
        let h = self.inner.cluster().history();
        while self.fed < h.len() {
            let i = self.fed;
            self.feed.feed_op(h.label(i), h.preds(i));
            self.fed += 1;
            let origin = h.op(i).replica;
            let f = self.inner.cluster().seen_frontier(origin);
            self.feed.observe_frontier(origin, f);
        }
    }
}

impl<C, F, R, S> Driver for MonitoredDriver<C, F, R, S>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    R: Rewrite<C::Label>,
    S: Spec<Label = R::Out>,
{
    const RELIABLE: bool = true;
    const GOSSIPS: bool = false;

    fn n_replicas(&self) -> usize {
        self.inner.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        let invoked = self.inner.invoke(rng, r);
        if invoked {
            self.catch_up();
        }
        invoked
    }

    fn gossip(&mut self, r: ReplicaId) -> bool {
        self.inner.gossip(r)
    }

    fn n_messages(&self) -> usize {
        self.inner.n_messages()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.inner.origin(m)
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        let received = self.inner.receive(r, m);
        if matches!(received, Received::Applied(_)) {
            let f = self.inner.cluster().seen_frontier(r);
            self.feed.observe_frontier(r, f);
        }
        received
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.inner.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.inner.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        self.inner.restart(r);
    }

    fn final_sync(&mut self) {
        let cluster = self.inner.cluster_mut();
        cluster.restart_all();
        let feed = &mut self.feed;
        cluster.deliver_all_observed(|r, f| {
            feed.observe_frontier(r, f);
        });
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }
}
