//! The per-link network model: topologies, latency distributions, and
//! link-level fault probabilities.
//!
//! Latencies are sampled from [`ral_core::rng`], so a link's behaviour — and
//! therefore every reordering it induces — is a pure function of the
//! simulation seed. Drop and duplication probabilities apply only to
//! transports that tolerate them (state-based merge propagation,
//! Appendix D.2); the engine keeps op-based links loss-free to preserve
//! causal delivery (Section 3.1).

use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;

/// A latency distribution: `base + uniform(0..=jitter)` ticks.
///
/// Uniform jitter is deliberately wide-tailed enough to reorder messages on
/// a link (two sends 1 tick apart with `jitter > 1` can arrive swapped)
/// while staying trivially seeded-deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latency {
    /// Minimum delay in ticks.
    pub base: u64,
    /// Additional uniform jitter in ticks (inclusive upper bound).
    pub jitter: u64,
}

impl Latency {
    /// A fixed delay with no jitter.
    pub const fn fixed(base: u64) -> Self {
        Latency { base, jitter: 0 }
    }

    /// A jittered delay.
    pub const fn jittered(base: u64, jitter: u64) -> Self {
        Latency { base, jitter }
    }

    /// Samples one delay.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.jitter == 0 {
            self.base
        } else {
            self.base + rng.random_range(0..=self.jitter)
        }
    }
}

/// Link-level fault probabilities, applied per message per destination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a message is delivered a second time (later).
    pub duplicate: f64,
}

impl LinkFaults {
    /// A perfect link: no loss, no duplication.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
    };
}

/// Who is directly linked to whom, and how slow each link is.
///
/// Every topology is a complete graph of links (messages never route through
/// intermediaries); what varies is the latency class of each pair.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Every pair of replicas shares one latency distribution.
    Uniform(Latency),
    /// Replicas grouped into data centers: fast intra-DC links, slow
    /// inter-DC links. `dc_of[r]` is the data center of replica `r`.
    DataCenters {
        /// Data-center id per replica.
        dc_of: Vec<u32>,
        /// Latency between replicas of the same data center.
        intra: Latency,
        /// Latency between replicas of different data centers.
        inter: Latency,
    },
}

impl Topology {
    /// The latency distribution of the `from → to` link.
    pub fn link(&self, from: ReplicaId, to: ReplicaId) -> Latency {
        match self {
            Topology::Uniform(l) => *l,
            Topology::DataCenters {
                dc_of,
                intra,
                inter,
            } => {
                if dc_of[from.0 as usize] == dc_of[to.0 as usize] {
                    *intra
                } else {
                    *inter
                }
            }
        }
    }

    /// Number of replicas the topology must cover, if it constrains one
    /// (`DataCenters` does; `Uniform` fits any cluster).
    pub fn n_replicas(&self) -> Option<usize> {
        match self {
            Topology::Uniform(_) => None,
            Topology::DataCenters { dc_of, .. } => Some(dc_of.len()),
        }
    }
}

/// The full network model of a scenario.
#[derive(Clone, Debug)]
pub struct Network {
    /// Link layout and latencies.
    pub topology: Topology,
    /// Fault probabilities on loss-tolerant transports.
    pub faults: LinkFaults,
    /// Retransmission delay, in ticks, for *reliable* transports whose
    /// message met a cut link or a crashed receiver: the message is not
    /// lost, it retries until it lands.
    pub retry: u64,
}

impl Network {
    /// A perfect network with the given topology (no faults, fast retry).
    pub fn perfect(topology: Topology) -> Self {
        Network {
            topology,
            faults: LinkFaults::NONE,
            retry: 10,
        }
    }

    /// Samples the delay of one `from → to` transmission.
    pub fn delay(&self, rng: &mut Rng, from: ReplicaId, to: ReplicaId) -> u64 {
        self.topology.link(from, to).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn latency_samples_stay_in_range() {
        let mut rng = Rng::seed_from_u64(1);
        let l = Latency::jittered(10, 5);
        for _ in 0..200 {
            let d = l.sample(&mut rng);
            assert!((10..=15).contains(&d), "{d} out of 10..=15");
        }
        assert_eq!(Latency::fixed(3).sample(&mut rng), 3);
    }

    #[test]
    fn datacenter_topology_distinguishes_links() {
        let topo = Topology::DataCenters {
            dc_of: vec![0, 0, 1],
            intra: Latency::fixed(1),
            inter: Latency::fixed(60),
        };
        assert_eq!(topo.link(r(0), r(1)), Latency::fixed(1));
        assert_eq!(topo.link(r(0), r(2)), Latency::fixed(60));
        assert_eq!(topo.n_replicas(), Some(3));
        assert_eq!(Topology::Uniform(Latency::fixed(5)).n_replicas(), None);
    }
}
