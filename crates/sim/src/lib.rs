#![warn(missing_docs)]
//! `ral-sim` — a deterministic discrete-event network simulator for the
//! RA-linearizability reproduction.
//!
//! The `ral_runtime` schedulers explore visibility concurrency by flipping
//! a weighted coin between "invoke" and "deliver"; this crate replaces the
//! coin with a *network*: a virtual clock, a tie-break-stable event queue,
//! and a per-link model with configurable latency distributions, message
//! drop/duplication, partitions that form and heal on schedule, and replica
//! crash/restart. Every run is a pure function of `(scenario, driver,
//! seed)` — the trace, the history, and the final states are all
//! byte-reproducible.
//!
//! The transport respects the paper's split between propagation models:
//!
//! * **op-based** CRDTs (Section 3.1) require causal delivery, so their
//!   links stay loss-free and duplicate-free; latency may reorder arrivals,
//!   which the driver absorbs with causal holdback, and cut links or
//!   crashed replicas trigger retransmission, never loss;
//! * **state-based** CRDTs (Appendix D.2) merge whole states, so their
//!   links drop, duplicate, and reorder exactly as configured, and a
//!   crashed replica recovers from its last durable checkpoint and
//!   re-merges.
//!
//! Modules:
//!
//! * [`time`] — the virtual clock ([`SimTime`]);
//! * [`queue`] — the `(time, sequence)`-ordered event queue;
//! * [`network`] — topologies, latency distributions, link faults;
//! * [`fault`] — scheduled partitions and crash/restart plans;
//! * [`driver`] — the [`Driver`] trait adapting the cluster kinds
//!   ([`OpDriver`], [`StateDriver`], [`DeltaDriver`], [`MultiDriver`]);
//! * [`monitored`] — [`MonitoredDriver`], an [`OpDriver`] wrapper that
//!   verifies RA-linearizability continuously while the engine runs;
//! * [`sim`] — the engine ([`run`]);
//! * [`trace`] — the byte-comparable event record;
//! * [`scenario`] — the named corpus (`geo_3dc`, `flaky_wan`,
//!   `rolling_restart`, `split_brain_heal`, `delta_wan`, `gossip_50`).
//!
//! # Example
//!
//! ```
//! use ral_sim::driver::{Driver, StateDriver};
//! use ral_sim::{scenario, sim};
//! # use ral_runtime::gen::GenCtx;
//! # use ral_runtime::state_based::{StateBased, StateOutcome};
//! # #[derive(Clone)]
//! # struct GCtr;
//! # impl StateBased for GCtr {
//! #     type State = Vec<i64>;
//! #     type Call = ();
//! #     type Ret = ();
//! #     type Label = ();
//! #     fn initial(&self, n: usize) -> Vec<i64> { vec![0; n] }
//! #     fn invoke(&self, st: &Vec<i64>, _c: &(), ctx: &mut GenCtx) -> StateOutcome<(), Vec<i64>> {
//! #         let mut next = st.clone();
//! #         next[ctx.replica().0 as usize] += 1;
//! #         StateOutcome::Done { ret: (), next }
//! #     }
//! #     fn merge(&self, a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
//! #         a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
//! #     }
//! #     fn leq(&self, a: &Vec<i64>, b: &Vec<i64>) -> bool {
//! #         a.iter().zip(b).all(|(x, y)| x <= y)
//! #     }
//! #     fn label(&self, _c: &(), _r: &()) {}
//! # }
//!
//! let scenario = scenario::flaky_wan();
//! let mut driver = StateDriver::new(GCtr, scenario.cfg.n_replicas, |_, _, _| Some(()));
//! let run = sim::run(&mut driver, &scenario.cfg, 42);
//! assert!(driver.converged(), "merges absorb loss, duplication, reorder");
//! assert!(run.stats.dropped > 0, "the WAN really was flaky");
//! ```

pub mod driver;
pub mod fault;
pub mod monitored;
pub mod network;
pub mod queue;
pub mod scenario;
pub mod sim;
pub mod time;
pub mod trace;

pub use driver::{DeltaDriver, Driver, MultiDriver, OpDriver, Received, StateDriver};
pub use fault::{CrashPlan, FaultPlan, Partition, PartitionWindow};
pub use monitored::MonitoredDriver;
pub use network::{Latency, LinkFaults, Network, Topology};
pub use scenario::Scenario;
pub use sim::{run, SimConfig, SimRun, SimStats};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent};
