//! Scheduled faults: partitions that form and heal, and replica
//! crash/restart windows.
//!
//! Faults are declared ahead of time in the scenario configuration, not
//! drawn during the run, so the fault schedule is identical across seeds —
//! seeds only vary *workloads* and *latencies* within a fixed failure story.
//! (This mirrors how LARK-style harnesses script their nemesis.)

use crate::time::SimTime;
use ral_core::ids::ReplicaId;
pub use ral_runtime::schedule::Partition;

/// A partition in force during `[start, end)`: links crossing the grouping
/// are cut, links within a side work normally.
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// When the partition forms.
    pub start: SimTime,
    /// When it heals.
    pub end: SimTime,
    /// The grouping of replicas into sides.
    pub partition: Partition,
}

impl PartitionWindow {
    /// Builds a window from a group id per replica.
    pub fn new(start: SimTime, end: SimTime, groups: Vec<u32>) -> Self {
        assert!(start < end, "a partition window must have positive length");
        PartitionWindow {
            start,
            end,
            partition: Partition::new(groups),
        }
    }

    /// Whether the `a ↔ b` link is cut by this window at `now`.
    pub fn cuts(&self, now: SimTime, a: ReplicaId, b: ReplicaId) -> bool {
        now >= self.start && now < self.end && !self.partition.connected(a, b)
    }
}

/// A scheduled crash: the replica halts at `crash_at` and (optionally)
/// restarts at `restart_at`. A replica left down is restarted by the final
/// synchronization phase.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// The replica that fails.
    pub replica: ReplicaId,
    /// When it halts.
    pub crash_at: SimTime,
    /// When it comes back (`None` = down until final sync).
    pub restart_at: Option<SimTime>,
}

impl CrashPlan {
    /// A crash followed by a restart.
    pub fn bounce(replica: ReplicaId, crash_at: SimTime, restart_at: SimTime) -> Self {
        assert!(crash_at < restart_at, "restart must follow the crash");
        CrashPlan {
            replica,
            crash_at,
            restart_at: Some(restart_at),
        }
    }

    /// A crash with no scheduled recovery.
    pub fn permanent(replica: ReplicaId, crash_at: SimTime) -> Self {
        CrashPlan {
            replica,
            crash_at,
            restart_at: None,
        }
    }
}

/// The full fault plan of a scenario.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled crashes.
    pub crashes: Vec<CrashPlan>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether any partition window cuts the `a ↔ b` link at `now`.
    pub fn cut(&self, now: SimTime, a: ReplicaId, b: ReplicaId) -> bool {
        self.partitions.iter().any(|w| w.cuts(now, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn windows_cut_only_inside_their_span() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow::new(
                SimTime(100),
                SimTime(200),
                vec![0, 0, 1],
            )],
            crashes: vec![],
        };
        assert!(!plan.cut(SimTime(99), r(0), r(2)), "not yet formed");
        assert!(plan.cut(SimTime(100), r(0), r(2)));
        assert!(plan.cut(SimTime(199), r(2), r(0)));
        assert!(!plan.cut(SimTime(200), r(0), r(2)), "healed");
        assert!(!plan.cut(SimTime(150), r(0), r(1)), "same side");
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_panics() {
        PartitionWindow::new(SimTime(5), SimTime(5), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "restart must follow")]
    fn inverted_bounce_panics() {
        CrashPlan::bounce(r(0), SimTime(10), SimTime(10));
    }
}
