//! The named scenario corpus.
//!
//! Each scenario is a complete [`SimConfig`] with a stable name, usable
//! with any cluster kind. The corpus covers the delivery environments the
//! paper reasons about:
//!
//! | name               | shape                                             | paper hook |
//! |--------------------|---------------------------------------------------|------------|
//! | `geo_3dc`          | 9 replicas in 3 DCs, 1–3 tick intra, 40–100 inter | §1 geo-replication motivation |
//! | `flaky_wan`        | 5 replicas, heavy jitter, 25% drop, 20% dup       | App. D.2 loss/dup/reorder tolerance |
//! | `rolling_restart`  | 6 replicas crash-restarted one after another      | crash-recovery durability |
//! | `split_brain_heal` | 6 replicas, 3/3 partition, heal, re-split 2/2/2   | §1 availability under partition |
//! | `delta_wan`        | 8 replicas, loss + dup + long 4/4 split + crash   | delta-transport stress: retransmission, GC starvation, resync |
//! | `multi_mix`        | 50 replicas on composed objects, split + crashes  | §5 composition at scale; sharded-checker workload |
//! | `gossip_50`        | 50 replicas, light faults — the scaling scenario  | "large enough to matter" benchmarking |
//! | `lan_tight`        | 4 replicas, 1–2 tick LAN, no faults               | streaming-monitor settlement regime |
//!
//! All parameters are fixed constants: a scenario never samples its own
//! shape, so `(scenario, seed)` fully determines a run.

use crate::fault::{CrashPlan, FaultPlan, PartitionWindow};
use crate::network::{Latency, LinkFaults, Network, Topology};
use crate::sim::SimConfig;
use crate::time::SimTime;
use ral_core::ids::ReplicaId;

/// A named, reusable simulation configuration.
///
/// # Examples
///
/// ```
/// use ral_sim::scenario;
///
/// let sc = scenario::by_name("flaky_wan").unwrap();
/// assert_eq!(sc.cfg.n_replicas, 5);
/// sc.cfg.validate();
/// // The whole corpus, in its stable order:
/// let names: Vec<&str> = scenario::all().iter().map(|s| s.name).collect();
/// assert!(names.contains(&"delta_wan"));
/// ```
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable name (used by tests, benches, and reports).
    pub name: &'static str,
    /// One-line description for reports.
    pub about: &'static str,
    /// The configuration to run.
    pub cfg: SimConfig,
}

/// Three geo-replicated data centers: three replicas each, fast local
/// links, slow wide-area links. No faults — latency asymmetry alone is
/// enough to produce deep visibility concurrency.
pub fn geo_3dc() -> Scenario {
    Scenario {
        name: "geo_3dc",
        about: "9 replicas across 3 data centers; 1-3 tick LAN, 40-100 tick WAN",
        cfg: SimConfig {
            n_replicas: 9,
            duration: SimTime(1_500),
            invoke_every: Latency::jittered(30, 40),
            gossip_every: Latency::jittered(25, 30),
            network: Network {
                topology: Topology::DataCenters {
                    dc_of: vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
                    intra: Latency::jittered(1, 2),
                    inter: Latency::jittered(40, 60),
                },
                faults: LinkFaults::NONE,
                retry: 20,
            },
            faults: FaultPlan::none(),
            final_sync: true,
        },
    }
}

/// A flaky wide-area network: latency jitter wide enough to reorder almost
/// every pair of messages, a quarter of snapshots lost, a fifth duplicated.
/// This is Appendix D.2's adversarial environment; state-based merges must
/// shrug it off, and op-based transports (which the engine keeps reliable)
/// see only the reordering.
pub fn flaky_wan() -> Scenario {
    Scenario {
        name: "flaky_wan",
        about: "5 replicas; 10-170 tick jitter, 25% drop, 20% duplication",
        cfg: SimConfig {
            n_replicas: 5,
            duration: SimTime(1_500),
            invoke_every: Latency::jittered(25, 30),
            gossip_every: Latency::jittered(20, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(10, 160)),
                faults: LinkFaults {
                    drop: 0.25,
                    duplicate: 0.20,
                },
                retry: 15,
            },
            faults: FaultPlan::none(),
            final_sync: true,
        },
    }
}

/// A rolling restart: the six replicas crash and recover one after
/// another, as a deployment rollout would. State-based replicas recover
/// from their durable checkpoint and re-merge; op-based replicas find
/// their undelivered effectors buffered by the transport.
pub fn rolling_restart() -> Scenario {
    let crashes = (0..6)
        .map(|i| {
            CrashPlan::bounce(
                ReplicaId(i as u32),
                SimTime(150 + 250 * i),
                SimTime(300 + 250 * i),
            )
        })
        .collect();
    Scenario {
        name: "rolling_restart",
        about: "6 replicas bounced in sequence, 150-tick outages",
        cfg: SimConfig {
            n_replicas: 6,
            duration: SimTime(1_900),
            invoke_every: Latency::jittered(25, 30),
            gossip_every: Latency::jittered(20, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(3, 10)),
                faults: LinkFaults::NONE,
                retry: 10,
            },
            faults: FaultPlan {
                partitions: vec![],
                crashes,
            },
            final_sync: true,
        },
    }
}

/// A split-brain that heals, then a different split: first 3|3 by halves,
/// later 2|2|2 interleaved. Both sides keep accepting writes throughout
/// (the CAP scenario of Section 1); reconciliation happens on healing.
pub fn split_brain_heal() -> Scenario {
    Scenario {
        name: "split_brain_heal",
        about: "6 replicas; 3|3 split t300-t900, 2|2|2 re-split t1200-t1500",
        cfg: SimConfig {
            n_replicas: 6,
            duration: SimTime(1_800),
            invoke_every: Latency::jittered(25, 30),
            gossip_every: Latency::jittered(20, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(3, 10)),
                faults: LinkFaults::NONE,
                retry: 12,
            },
            faults: FaultPlan {
                partitions: vec![
                    PartitionWindow::new(SimTime(300), SimTime(900), vec![0, 0, 0, 1, 1, 1]),
                    PartitionWindow::new(SimTime(1_200), SimTime(1_500), vec![0, 1, 2, 0, 1, 2]),
                ],
                crashes: vec![],
            },
            final_sync: true,
        },
    }
}

/// The delta-transport stress scenario: a lossy WAN *plus* a prolonged
/// 4|4 partition and a crash bounce. Dropped batches must be recovered by
/// ack-driven retransmission; the long partition starves acks until
/// buffers hit the resync horizon; the crash regresses a replica's applied
/// prefix past the garbage-collected horizon, forcing a full-state resync.
/// Full-state transports see the same network and simply pay for it in
/// snapshot bytes.
pub fn delta_wan() -> Scenario {
    Scenario {
        name: "delta_wan",
        about: "8 replicas; 10-120 tick jitter, 20% drop, 15% dup, 4|4 split t400-t1000, crash t1100-t1250",
        cfg: SimConfig {
            n_replicas: 8,
            duration: SimTime(1_600),
            invoke_every: Latency::jittered(25, 30),
            gossip_every: Latency::jittered(20, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(10, 110)),
                faults: LinkFaults {
                    drop: 0.20,
                    duplicate: 0.15,
                },
                retry: 15,
            },
            faults: FaultPlan {
                partitions: vec![PartitionWindow::new(
                    SimTime(400),
                    SimTime(1_000),
                    vec![0, 0, 0, 0, 1, 1, 1, 1],
                )],
                crashes: vec![CrashPlan::bounce(
                    ReplicaId(2),
                    SimTime(1_100),
                    SimTime(1_250),
                )],
            },
            final_sync: true,
        },
    }
}

/// The composed-object stress scenario: 50 replicas driving many objects
/// of one data type through a [`MultiCluster`](ral_runtime::multi), under
/// a 25|25 split and staggered crash bounces. Tests run it at 32 objects
/// in **both** timestamp disciplines (`⊗ts` shared and `⊗` per-object) —
/// the workload the sharded compositional checker exists for, and the
/// delivery volume (thousands of per-object-causal effectors fanning out
/// to 49 peers each) that motivated the linear `deliver_all` drain.
pub fn multi_mix() -> Scenario {
    Scenario {
        name: "multi_mix",
        about: "50 replicas on composed objects; 25|25 split t300-t600, 3 staggered crash bounces",
        cfg: SimConfig {
            n_replicas: 50,
            duration: SimTime(1_200),
            invoke_every: Latency::jittered(20, 20),
            gossip_every: Latency::jittered(25, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(5, 20)),
                faults: LinkFaults::NONE,
                retry: 30,
            },
            faults: FaultPlan {
                partitions: vec![PartitionWindow::new(
                    SimTime(300),
                    SimTime(600),
                    (0..50u32).map(|i| i % 2).collect(),
                )],
                crashes: vec![
                    CrashPlan::bounce(ReplicaId(7), SimTime(650), SimTime(800)),
                    CrashPlan::bounce(ReplicaId(23), SimTime(700), SimTime(850)),
                    CrashPlan::bounce(ReplicaId(41), SimTime(750), SimTime(900)),
                ],
            },
            final_sync: true,
        },
    }
}

/// The scaling scenario at its headline size — the named corpus entry.
pub fn gossip_50() -> Scenario {
    let mut sc = gossip(50);
    sc.name = "gossip_50";
    sc.about = "50-replica gossip mesh with light loss and duplication";
    sc
}

/// `n` replicas gossiping over a uniformly jittered mesh with light faults
/// — the events/sec scaling scenario, parametric in the mesh size
/// ([`gossip_50`] is the named corpus entry; the `sim_scaling` bench also
/// runs 5 and 15).
pub fn gossip(n: usize) -> Scenario {
    Scenario {
        name: "gossip",
        about: "parametric gossip mesh with light loss and duplication",
        cfg: SimConfig {
            n_replicas: n,
            duration: SimTime(600),
            invoke_every: Latency::jittered(40, 40),
            gossip_every: Latency::jittered(45, 45),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(5, 25)),
                faults: LinkFaults {
                    drop: 0.05,
                    duplicate: 0.05,
                },
                retry: 10,
            },
            faults: FaultPlan::none(),
            final_sync: true,
        },
    }
}

/// A tight LAN: four replicas a tick or two apart, no faults. Operations
/// become causally stable almost as soon as they are invoked, so the
/// streaming monitor's settlement keeps its live window (and so its
/// configuration frontier) a handful of operations wide for the whole run
/// — the corpus scenario for continuous monitored verification, where the
/// wide-window scenarios above are the ones that exhaust it honestly.
pub fn lan_tight() -> Scenario {
    Scenario {
        name: "lan_tight",
        about: "4 replicas; 1-2 tick LAN, no faults — ops settle almost immediately",
        cfg: SimConfig {
            n_replicas: 4,
            duration: SimTime(1_500),
            invoke_every: Latency::jittered(25, 30),
            gossip_every: Latency::jittered(20, 25),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(1, 2)),
                faults: LinkFaults::NONE,
                retry: 10,
            },
            faults: FaultPlan::none(),
            final_sync: true,
        },
    }
}

/// Names of every zero-argument scenario constructor this module exports,
/// in corpus order. Guard tests (`crates/sim` unit tests and the root
/// `sim_determinism` suite) scrape the module source against this table, so
/// adding a constructor without registering it here — and without giving it
/// a determinism runner — fails the build's test gate, not a code review.
pub const CONSTRUCTOR_NAMES: [&str; 8] = [
    "geo_3dc",
    "flaky_wan",
    "rolling_restart",
    "split_brain_heal",
    "delta_wan",
    "multi_mix",
    "gossip_50",
    "lan_tight",
];

/// The whole named corpus, in a stable order.
pub fn all() -> Vec<Scenario> {
    vec![
        geo_3dc(),
        flaky_wan(),
        rolling_restart(),
        split_brain_heal(),
        delta_wan(),
        multi_mix(),
        gossip_50(),
        lan_tight(),
    ]
}

/// Looks a scenario up by its stable name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_complete_and_valid() {
        let corpus = all();
        assert_eq!(corpus.len(), 8);
        let names: Vec<&str> = corpus.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "geo_3dc",
                "flaky_wan",
                "rolling_restart",
                "split_brain_heal",
                "delta_wan",
                "multi_mix",
                "gossip_50",
                "lan_tight"
            ]
        );
        for s in &corpus {
            s.cfg.validate();
            assert!(
                s.cfg.final_sync,
                "{}: convergence needs a final sync",
                s.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("flaky_wan").unwrap().cfg.n_replicas, 5);
        assert!(by_name("no_such_scenario").is_none());
        assert_eq!(gossip(15).cfg.n_replicas, 15);
    }

    /// Scrapes this module's own source: every zero-argument constructor
    /// returning `Scenario` must be registered in [`CONSTRUCTOR_NAMES`]
    /// (and therefore reachable through [`all`] / [`by_name`]).
    #[test]
    fn every_constructor_is_registered() {
        let src = include_str!("scenario.rs");
        let mut scraped = Vec::new();
        for line in src.lines() {
            let Some(rest) = line.trim_start().strip_prefix("pub fn ") else {
                continue;
            };
            let Some((name, args)) = rest.split_once('(') else {
                continue;
            };
            if args.starts_with(')') && args.contains("-> Scenario") {
                scraped.push(name.to_string());
            }
        }
        let expected: Vec<String> = CONSTRUCTOR_NAMES.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            scraped, expected,
            "zero-arg Scenario constructors drifted from CONSTRUCTOR_NAMES"
        );
        for name in CONSTRUCTOR_NAMES {
            assert!(by_name(name).is_some(), "{name}: not reachable by_name");
        }
        assert_eq!(all().len(), CONSTRUCTOR_NAMES.len());
    }
}
