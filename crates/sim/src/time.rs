//! Virtual time.
//!
//! The simulator owns a discrete virtual clock: nothing ever sleeps, the
//! clock jumps from event to event. Ticks are abstract; the scenario corpus
//! reads them as milliseconds (an inter-DC link is ~60 ticks, an intra-DC
//! link ~2), but only their *relative* magnitudes matter.

use std::fmt;
use std::ops::Add;

/// A point in virtual time, measured in ticks since the start of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ticks: u64) -> SimTime {
        SimTime(self.0 + ticks)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        assert!(SimTime::ZERO < SimTime(1));
        assert_eq!(SimTime(40) + 2, SimTime(42));
        assert_eq!(SimTime(7).ticks(), 7);
        assert_eq!(format!("{}", SimTime(99)), "t99");
    }
}
