//! The discrete-event engine.
//!
//! One run owns a virtual clock, an [`EventQueue`] of pending events, a
//! seeded RNG, and a [`Driver`]. Processing an event
//! may invoke operations, route freshly created messages (sampling per-link
//! latency and faults), apply arrivals, or fire scheduled partitions and
//! crashes; everything appends to the [`Trace`]. Because events pop in a
//! total `(time, sequence)` order and all randomness flows through the one
//! seeded stream, the entire run — trace, history, final states — is a pure
//! function of `(scenario, driver, seed)`.
//!
//! Transport discipline follows the paper's split:
//!
//! * **reliable** drivers (op-based, Section 3.1) never lose or duplicate
//!   messages; a transmission that meets a cut link or a crashed receiver
//!   retries until it lands, and arrivals that outran their causal
//!   predecessors are held back by the driver;
//! * **lossy** drivers (state-based, Appendix D.2) see drops, duplicates,
//!   and reordering exactly as configured — crashed receivers simply lose
//!   the message, which the merge discipline tolerates.

use crate::driver::{Driver, Received};
use crate::fault::FaultPlan;
use crate::network::{Latency, Network};
use crate::queue::EventQueue;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_obs as obs;

/// Configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of replicas (drivers must be built with the same count).
    pub n_replicas: usize,
    /// End of the active phase: no new invocations, gossip, or faults fire
    /// at or after this instant.
    pub duration: SimTime,
    /// Inter-invocation gap per replica.
    pub invoke_every: Latency,
    /// Gossip tick gap per replica (used only by gossiping drivers).
    pub gossip_every: Latency,
    /// Link layout, latencies, faults, and the reliable-retry delay.
    pub network: Network,
    /// Scheduled partitions and crashes.
    pub faults: FaultPlan,
    /// Whether to heal everything and synchronize fully after the active
    /// phase (required for convergence assertions).
    pub final_sync: bool,
}

impl SimConfig {
    /// Validates internal consistency (topology arity, fault bounds).
    ///
    /// # Panics
    ///
    /// Panics when the topology or a fault plan names replicas the config
    /// does not have, or a probability is outside `[0, 1]`.
    pub fn validate(&self) {
        if let Some(n) = self.network.topology.n_replicas() {
            assert_eq!(
                n, self.n_replicas,
                "topology covers {n} replicas, config declares {}",
                self.n_replicas
            );
        }
        for w in &self.faults.partitions {
            assert_eq!(
                w.partition.n_replicas(),
                self.n_replicas,
                "partition window groups {} replicas, config declares {}",
                w.partition.n_replicas(),
                self.n_replicas
            );
        }
        for c in &self.faults.crashes {
            assert!(
                (c.replica.0 as usize) < self.n_replicas,
                "crash plan names replica {} of {}",
                c.replica,
                self.n_replicas
            );
        }
        let f = self.network.faults;
        assert!((0.0..=1.0).contains(&f.drop), "drop probability {}", f.drop);
        assert!(
            (0.0..=1.0).contains(&f.duplicate),
            "duplicate probability {}",
            f.duplicate
        );
    }
}

/// Aggregate statistics of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed (invokes + gossips + arrivals + faults).
    pub events: usize,
    /// Successful invocations.
    pub invokes: usize,
    /// Point-to-point transmissions put on links.
    pub sends: usize,
    /// Messages applied on arrival (effectors/merges, holdback included).
    pub applied: usize,
    /// Messages lost to link faults.
    pub dropped: usize,
    /// Extra transmissions created by duplication faults.
    pub duplicated: usize,
    /// Arrivals held back for causal delivery.
    pub held: usize,
    /// Reliable transmissions rescheduled past a cut link or down replica.
    pub retried: usize,
    /// Total wire bytes put on links ([`Driver::message_bytes`] summed
    /// over every transmission, duplicates included; zero for drivers
    /// without a payload-size model).
    pub payload_bytes: u64,
}

/// The result of a run: its trace, statistics, and final virtual time.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// The byte-comparable event record.
    pub trace: Trace,
    /// Aggregate counters.
    pub stats: SimStats,
    /// Virtual instant of the last processed event.
    pub end: SimTime,
}

// Engine-internal events; trace events are derived from these.
#[derive(Debug)]
enum Event {
    Invoke(ReplicaId),
    Gossip(ReplicaId),
    Arrive { to: ReplicaId, msg: usize },
    PartitionStart(usize),
    PartitionEnd(usize),
    Crash(ReplicaId),
    Restart(ReplicaId),
}

/// Runs `driver` through `cfg` under `seed`; the driver keeps the cluster
/// (and its history) afterwards.
///
/// The whole run is a pure function of `(cfg, driver, seed)`: re-running
/// with the same inputs reproduces the trace, the history, and the final
/// states byte for byte (`tests/sim_determinism.rs` pins this for every
/// scenario in the corpus). See the crate-level example for a complete
/// seeded run; `ral_verify::scenarios` and `ral_verify::delta` wrap this
/// entry point with the paper's per-CRDT obligations.
///
/// # Panics
///
/// Panics if `cfg` is internally inconsistent ([`SimConfig::validate`]) or
/// disagrees with the driver on the cluster size.
pub fn run<D: Driver>(driver: &mut D, cfg: &SimConfig, seed: u64) -> SimRun {
    cfg.validate();
    assert_eq!(
        driver.n_replicas(),
        cfg.n_replicas,
        "driver and config disagree on the cluster size"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut queue = EventQueue::new();
    let mut trace = Trace::new();
    let mut stats = SimStats::default();
    let mut routed = 0usize; // messages already put on links
    let mut now = SimTime::ZERO;

    // Everything recorded until these guards drop carries sim-tick
    // timestamps. Declaration order matters: `_run_span` drops first, so
    // its End event is still stamped on the virtual clock.
    let _vclock = obs::enter_virtual_clock(0);
    let _run_span = obs::span("sim.run");

    // Seed the periodic activity…
    for r in 0..cfg.n_replicas {
        let r = ReplicaId(r as u32);
        queue.push(SimTime(cfg.invoke_every.sample(&mut rng)), Event::Invoke(r));
        if D::GOSSIPS {
            queue.push(SimTime(cfg.gossip_every.sample(&mut rng)), Event::Gossip(r));
        }
    }
    // …and the scheduled faults. Partition windows need no events to take
    // effect (cuts are evaluated per arrival), but marking them keeps the
    // trace a complete story of the run.
    for (i, w) in cfg.faults.partitions.iter().enumerate() {
        queue.push(w.start, Event::PartitionStart(i));
        queue.push(w.end, Event::PartitionEnd(i));
    }
    for c in &cfg.faults.crashes {
        queue.push(c.crash_at, Event::Crash(c.replica));
        if let Some(at) = c.restart_at {
            queue.push(at, Event::Restart(c.replica));
        }
    }

    while let Some((t, event)) = queue.pop() {
        if t >= cfg.duration {
            break; // active phase over; the queue drains into final sync
        }
        now = t;
        obs::set_virtual_now(now.0);
        stats.events += 1;
        match event {
            Event::Invoke(r) => {
                let _span = obs::span("sim.event.invoke");
                let ok = driver.is_up(r) && driver.invoke(&mut rng, r);
                if ok {
                    stats.invokes += 1;
                    obs::counter("sim.invokes", 1);
                }
                trace.push(now, TraceEvent::Invoke { replica: r, ok });
                route_new::<D>(
                    driver,
                    cfg,
                    &mut rng,
                    &mut queue,
                    &mut trace,
                    &mut stats,
                    now,
                    &mut routed,
                );
                queue.push(
                    now + cfg.invoke_every.sample(&mut rng).max(1),
                    Event::Invoke(r),
                );
            }
            Event::Gossip(r) => {
                let _span = obs::span("sim.event.gossip");
                let ok = driver.is_up(r) && driver.gossip(r);
                if ok {
                    obs::counter("sim.gossips", 1);
                }
                trace.push(now, TraceEvent::Gossip { replica: r, ok });
                route_new::<D>(
                    driver,
                    cfg,
                    &mut rng,
                    &mut queue,
                    &mut trace,
                    &mut stats,
                    now,
                    &mut routed,
                );
                queue.push(
                    now + cfg.gossip_every.sample(&mut rng).max(1),
                    Event::Gossip(r),
                );
            }
            Event::Arrive { to, msg } => {
                let _span = obs::span("sim.event.arrive");
                let from = driver.origin(msg);
                let link = obs::link_key(from.0, to.0);
                let blocked = cfg.faults.cut(now, from, to) || !driver.is_up(to);
                if blocked {
                    if D::RELIABLE {
                        // The transport retransmits until the link heals and
                        // the receiver is back.
                        let at = now + cfg.network.retry.max(1);
                        stats.retried += 1;
                        obs::counter("sim.retries", 1);
                        trace.push(now, TraceEvent::Retry { msg, to, at });
                        queue.push(at, Event::Arrive { to, msg });
                    } else {
                        stats.dropped += 1;
                        obs::counter_keyed("sim.link.dropped", link, 1);
                        trace.push(now, TraceEvent::Drop { msg, to });
                    }
                    continue;
                }
                match driver.receive(to, msg) {
                    Received::Applied(n) => {
                        stats.applied += n;
                        obs::counter_keyed("sim.link.delivered", link, 1);
                        obs::counter_keyed("sim.link.applied", link, n as u64);
                        trace.push(
                            now,
                            TraceEvent::Deliver {
                                msg,
                                to,
                                applied: n,
                            },
                        );
                    }
                    Received::Held => {
                        stats.held += 1;
                        obs::counter("sim.held", 1);
                        trace.push(now, TraceEvent::Hold { msg, to });
                    }
                    Received::Ignored => {
                        trace.push(now, TraceEvent::Ignore { msg, to });
                    }
                }
            }
            Event::PartitionStart(w) => {
                obs::instant_keyed("sim.partition.start", w as u64);
                trace.push(now, TraceEvent::PartitionStart { window: w });
            }
            Event::PartitionEnd(w) => {
                obs::instant_keyed("sim.partition.end", w as u64);
                trace.push(now, TraceEvent::PartitionEnd { window: w });
            }
            Event::Crash(r) => {
                obs::instant_keyed("sim.crash", r.0 as u64);
                driver.crash(r);
                trace.push(now, TraceEvent::Crash { replica: r });
            }
            Event::Restart(r) => {
                obs::instant_keyed("sim.restart", r.0 as u64);
                driver.restart(r);
                trace.push(now, TraceEvent::Restart { replica: r });
            }
        }
    }

    if cfg.final_sync {
        now = cfg.duration;
        obs::set_virtual_now(now.0);
        obs::instant("sim.final_sync");
        let _span = obs::span("sim.event.final_sync");
        trace.push(now, TraceEvent::FinalSync);
        driver.final_sync();
    }
    SimRun {
        trace,
        stats,
        end: now,
    }
}

// Routes every message the driver created since the last call: one
// transmission per destination, with latency sampled per link and faults
// applied on loss-tolerant transports. Destination order is replica order,
// so RNG consumption is deterministic.
#[allow(clippy::too_many_arguments)]
fn route_new<D: Driver>(
    driver: &mut D,
    cfg: &SimConfig,
    rng: &mut Rng,
    queue: &mut EventQueue<Event>,
    trace: &mut Trace,
    stats: &mut SimStats,
    now: SimTime,
    routed: &mut usize,
) {
    while *routed < driver.n_messages() {
        let msg = *routed;
        *routed += 1;
        let from = driver.origin(msg);
        for to in 0..cfg.n_replicas {
            let to = ReplicaId(to as u32);
            if to == from {
                continue;
            }
            let link = obs::link_key(from.0, to.0);
            if !D::RELIABLE && rng.random_bool(cfg.network.faults.drop) {
                stats.dropped += 1;
                obs::counter_keyed("sim.link.dropped", link, 1);
                trace.push(now, TraceEvent::Drop { msg, to });
                continue;
            }
            let delay = cfg.network.delay(rng, from, to).max(1);
            let bytes = driver.message_bytes(msg, to) as u64;
            stats.sends += 1;
            stats.payload_bytes += bytes;
            obs::counter_keyed("sim.link.sends", link, 1);
            obs::counter_keyed("sim.link.bytes", link, bytes);
            obs::observe("sim.link.delay", delay);
            trace.push(
                now,
                TraceEvent::Send {
                    msg,
                    from,
                    to,
                    delay,
                    duplicate: false,
                },
            );
            queue.push(now + delay, Event::Arrive { to, msg });
            if !D::RELIABLE && rng.random_bool(cfg.network.faults.duplicate) {
                let delay = cfg.network.delay(rng, from, to).max(1);
                stats.duplicated += 1;
                stats.sends += 1;
                stats.payload_bytes += bytes;
                obs::counter_keyed("sim.link.duplicated", link, 1);
                obs::counter_keyed("sim.link.sends", link, 1);
                obs::counter_keyed("sim.link.bytes", link, bytes);
                obs::observe("sim.link.delay", delay);
                trace.push(
                    now,
                    TraceEvent::Send {
                        msg,
                        from,
                        to,
                        delay,
                        duplicate: true,
                    },
                );
                queue.push(now + delay, Event::Arrive { to, msg });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{OpDriver, StateDriver};
    use crate::fault::{CrashPlan, FaultPlan, PartitionWindow};
    use crate::network::{LinkFaults, Topology};
    use ral_runtime::gen::{GenCtx, GenOutcome};
    use ral_runtime::op_based::OpBased;
    use ral_runtime::state_based::{StateBased, StateOutcome};

    /// A grow-only counter in both styles, for engine-level tests.
    #[derive(Clone)]
    struct GCtr;

    impl OpBased for GCtr {
        type State = i64;
        type Call = ();
        type Ret = ();
        type Eff = ();
        type Label = ();
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, _st: &i64, _call: &(), _ctx: &mut GenCtx) -> GenOutcome<(), ()> {
            GenOutcome::update((), ())
        }
        fn apply(&self, st: &mut i64, _eff: &()) {
            *st += 1;
        }
        fn label(&self, _call: &(), _ret: &()) {}
    }

    impl StateBased for GCtr {
        type State = Vec<i64>;
        type Call = ();
        type Ret = ();
        type Label = ();
        fn initial(&self, n: usize) -> Vec<i64> {
            vec![0; n]
        }
        fn invoke(
            &self,
            st: &Vec<i64>,
            _call: &(),
            ctx: &mut GenCtx,
        ) -> StateOutcome<(), Vec<i64>> {
            let mut next = st.clone();
            next[ctx.replica().0 as usize] += 1;
            StateOutcome::Done { ret: (), next }
        }
        fn merge(&self, a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
            a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
        }
        fn leq(&self, a: &Vec<i64>, b: &Vec<i64>) -> bool {
            a.iter().zip(b).all(|(x, y)| x <= y)
        }
        fn label(&self, _call: &(), _ret: &()) {}
    }

    fn small_cfg(n: usize) -> SimConfig {
        SimConfig {
            n_replicas: n,
            duration: SimTime(300),
            invoke_every: Latency::jittered(20, 20),
            gossip_every: Latency::jittered(15, 15),
            network: Network {
                topology: Topology::Uniform(Latency::jittered(3, 10)),
                faults: LinkFaults::NONE,
                retry: 5,
            },
            faults: FaultPlan::none(),
            final_sync: true,
        }
    }

    #[test]
    fn op_based_run_converges_and_counts() {
        let mut driver = OpDriver::new(GCtr, 3, |_, _, _| Some(()));
        let run = run(&mut driver, &small_cfg(3), 7);
        assert!(driver.converged());
        assert!(run.stats.invokes > 0);
        assert_eq!(run.stats.dropped, 0, "reliable transport never drops");
        assert_eq!(
            driver.cluster().history().len(),
            run.stats.invokes,
            "one history record per successful invocation"
        );
    }

    #[test]
    fn lossy_run_still_converges_after_final_sync() {
        let mut cfg = small_cfg(3);
        cfg.network.faults = LinkFaults {
            drop: 0.4,
            duplicate: 0.3,
        };
        let mut driver = StateDriver::new(GCtr, 3, |_, _, _| Some(()));
        let run = run(&mut driver, &cfg, 11);
        assert!(driver.converged(), "merge semantics absorb loss and dup");
        assert!(run.stats.dropped > 0, "faults actually fired");
        assert!(run.stats.duplicated > 0);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut cfg = small_cfg(4);
        cfg.faults.partitions = vec![PartitionWindow::new(
            SimTime(0),
            SimTime(299),
            vec![0, 0, 1, 1],
        )];
        let mut driver = OpDriver::new(GCtr, 4, |_, _, _| Some(()));
        let run = run(&mut driver, &cfg, 3);
        assert!(run.stats.retried > 0, "cut links force retries");
        assert!(driver.converged(), "healing + final sync reconciles");
    }

    #[test]
    fn crashes_halt_and_recover() {
        let mut cfg = small_cfg(3);
        cfg.faults.crashes = vec![CrashPlan::bounce(ReplicaId(0), SimTime(50), SimTime(200))];
        let mut driver = StateDriver::new(GCtr, 3, |_, _, _| Some(()));
        let run = run(&mut driver, &cfg, 5);
        let crashes = run
            .trace
            .entries()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Crash { .. }))
            .count();
        assert_eq!(crashes, 1);
        assert!(driver.converged());
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        let mut driver = OpDriver::new(GCtr, 2, |_, _, _| Some(()));
        run(&mut driver, &small_cfg(3), 0);
    }
}
