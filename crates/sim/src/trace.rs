//! Event traces: the byte-comparable record of everything a run did.
//!
//! Every decision the engine makes — invocations, transmissions, arrivals
//! and their outcomes, faults firing — appends one entry. The determinism
//! suite asserts that two runs of the same seeded scenario render to
//! byte-identical traces, which pins the event order, the RNG consumption
//! order, *and* the fault schedule at once.

use crate::time::SimTime;
use ral_core::ids::ReplicaId;
use std::fmt::Write as _;

/// What happened at one instant of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A client operation was invoked at the replica (`refused` invocations
    /// — generator precondition failures and skipped turns — are recorded
    /// with `ok: false`).
    Invoke {
        /// The origin replica.
        replica: ReplicaId,
        /// Whether an operation was actually recorded.
        ok: bool,
    },
    /// A snapshot broadcast tick at a state-based replica.
    Gossip {
        /// The broadcasting replica.
        replica: ReplicaId,
        /// Whether a snapshot was produced (false while crashed).
        ok: bool,
    },
    /// A message was put on a link.
    Send {
        /// Message id.
        msg: usize,
        /// Origin replica.
        from: ReplicaId,
        /// Destination replica.
        to: ReplicaId,
        /// Sampled link delay in ticks.
        delay: u64,
        /// Whether this transmission is a network duplicate.
        duplicate: bool,
    },
    /// A message was silently lost on a loss-tolerant link.
    Drop {
        /// Message id.
        msg: usize,
        /// Destination it never reached.
        to: ReplicaId,
    },
    /// A message arrived and was applied (op-based: its effector plus any
    /// causally unblocked held effectors; state-based: one merge).
    Deliver {
        /// Message id.
        msg: usize,
        /// Receiving replica.
        to: ReplicaId,
        /// Number of effectors/merges applied (>1 when a held backlog
        /// drains).
        applied: usize,
    },
    /// A message arrived before its causal predecessors and was held back.
    Hold {
        /// Message id.
        msg: usize,
        /// Receiving replica.
        to: ReplicaId,
    },
    /// A message arrived but was ignored (already applied — duplicate on a
    /// reliable transport after a retry race).
    Ignore {
        /// Message id.
        msg: usize,
        /// Receiving replica.
        to: ReplicaId,
    },
    /// A reliable transmission met a cut link or a down receiver and was
    /// rescheduled.
    Retry {
        /// Message id.
        msg: usize,
        /// Receiving replica.
        to: ReplicaId,
        /// When it will try again.
        at: SimTime,
    },
    /// A partition formed.
    PartitionStart {
        /// Index into the scenario's partition windows.
        window: usize,
    },
    /// A partition healed.
    PartitionEnd {
        /// Index into the scenario's partition windows.
        window: usize,
    },
    /// A replica crashed.
    Crash {
        /// The failed replica.
        replica: ReplicaId,
    },
    /// A replica restarted.
    Restart {
        /// The recovered replica.
        replica: ReplicaId,
    },
    /// The active phase ended; every replica restarts, every partition is
    /// healed, and outstanding messages are delivered.
    FinalSync,
}

/// The ordered record of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one entry.
    pub fn push(&mut self, time: SimTime, event: TraceEvent) {
        self.entries.push((time, event));
    }

    /// The recorded entries, in firing order.
    pub fn entries(&self) -> &[(SimTime, TraceEvent)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the trace one line per entry — the canonical byte
    /// representation the determinism tests compare.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, e) in &self.entries {
            let _ = writeln!(out, "{t} {e:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_one_line_per_entry() {
        let mut trace = Trace::new();
        trace.push(
            SimTime(3),
            TraceEvent::Invoke {
                replica: ReplicaId(1),
                ok: true,
            },
        );
        trace.push(SimTime(9), TraceEvent::FinalSync);
        let text = trace.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("t3 Invoke"));
        assert!(!trace.is_empty());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries().len(), 2);
    }
}
