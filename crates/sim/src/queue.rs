//! The tie-break-stable event queue.
//!
//! A binary heap keyed on `(time, sequence)`: events fire in virtual-time
//! order, and events scheduled for the *same* instant fire in the order they
//! were pushed. The sequence number makes the ordering total, so the pop
//! order — and with it every RNG draw the engine makes — is a pure function
//! of the push sequence. This is the property the determinism suite pins:
//! same seed, same scenario ⇒ byte-identical traces.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering ignores the payload entirely: (time, seq) is already total.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-heap of timed events with stable tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events pushed for the same instant pop
    /// in push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event (push order among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime(5), i);
        }
        // Interleave an earlier event to exercise heap reshuffling.
        q.push(SimTime(1), 999);
        assert_eq!(q.pop(), Some((SimTime(1), 999)));
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)), "tie order must be FIFO");
        }
    }
}
