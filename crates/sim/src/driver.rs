//! Drivers: the adapter between the transport-level simulator and the
//! paper's three cluster kinds.
//!
//! The engine thinks in *messages* — opaque ids created by invocations or
//! gossip ticks and routed per destination. A [`Driver`] translates those
//! ids back into the cluster's own delivery machinery:
//!
//! * [`OpDriver`] — [`Cluster`] (Section 3.1): one message per operation,
//!   the effector. Causal delivery is preserved by *holding back* effectors
//!   that arrive (over a reordering link) before their causal predecessors
//!   and draining the holdback once the gap closes, so the network may
//!   reorder freely while the replica still applies causally.
//! * [`StateDriver`] — [`StateCluster`] (Appendix D.2): one message per
//!   gossip tick, a whole-state snapshot. Merges tolerate loss, duplication,
//!   and reordering, so no holdback is needed — and the driver checkpoints
//!   each replica after every invocation (write-ahead), matching the
//!   durability story of [`StateCluster::crash`].
//! * [`DeltaDriver`] — [`DeltaCluster`]: one message per gossip tick, but
//!   carrying a joined *delta batch* (or a full-state resync) rather than
//!   the whole state — the bandwidth-proportional transport. Same fault
//!   tolerance as [`StateDriver`], recovered by ack-driven retransmission
//!   instead of snapshot redundancy.
//! * [`MultiDriver`] — [`MultiCluster`] (Section 5.3): like [`OpDriver`],
//!   but causal holdback applies per object.
//!
//! Each driver exposes the same `History<L>` the RA-linearizability
//! checkers and the `ral_verify` harnesses consume — simulation changes how
//! executions are *scheduled*, never what they *record*.

use ral_core::ids::{ObjId, ReplicaId};
use ral_core::rng::Rng;
use ral_runtime::delta::{DeltaCluster, DeltaConfig, DeltaCrdt};
use ral_runtime::multi::MultiCluster;
use ral_runtime::op_based::{Cluster, OpBased};
use ral_runtime::state_based::{StateBased, StateCluster};

// Causal holdback lives in the clusters' own mailboxes now; the drivers
// reuse the runtime's arrival classification verbatim.
pub use ral_runtime::mailbox::Received;

/// Adapts one cluster kind to the discrete-event engine.
pub trait Driver {
    /// Whether the transport must be loss-free and duplicate-free (op-based
    /// causal broadcast). Reliable transports never see drop/duplication
    /// faults; cut links and crashed receivers trigger retries instead.
    const RELIABLE: bool;

    /// Whether propagation is pull-by-gossip (state-based snapshots) rather
    /// than push-per-operation. Gossip drivers get periodic gossip events.
    const GOSSIPS: bool;

    /// Number of replicas.
    fn n_replicas(&self) -> usize;

    /// Invokes the next client operation at `r`; `false` if the workload
    /// skipped its turn or the generator refused.
    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool;

    /// One gossip tick at `r`: snapshot the state into a message. `false`
    /// for push-based drivers (nothing to do).
    fn gossip(&mut self, r: ReplicaId) -> bool;

    /// Messages created so far; ids are dense `0..n_messages()`, and new
    /// ones appear only during [`Driver::invoke`] / [`Driver::gossip`].
    fn n_messages(&self) -> usize;

    /// Origin replica of message `m`.
    fn origin(&self, m: usize) -> ReplicaId;

    /// Hands message `m` to replica `r`.
    fn receive(&mut self, r: ReplicaId, m: usize) -> Received;

    /// Wire size in bytes of message `m` as serialized for the link to
    /// `to`, under the transport's payload model. The engine accumulates
    /// this into [`SimStats::payload_bytes`](crate::sim::SimStats) per
    /// transmission (duplicates included). Drivers without a size model
    /// report zero.
    fn message_bytes(&self, _m: usize, _to: ReplicaId) -> usize {
        0
    }

    /// Whether replica `r` is currently up.
    fn is_up(&self, r: ReplicaId) -> bool;

    /// Crashes replica `r`.
    fn crash(&mut self, r: ReplicaId);

    /// Restarts replica `r`.
    fn restart(&mut self, r: ReplicaId);

    /// Ends the run: restart every replica and synchronize fully, so
    /// convergence can be asserted (the paper's "all updates eventually
    /// visible everywhere" hypothesis).
    fn final_sync(&mut self);

    /// Whether all replicas agree (after [`Driver::final_sync`]).
    fn converged(&self) -> bool;
}

/// Drives an operation-based [`Cluster`].
pub struct OpDriver<C: OpBased, F> {
    cluster: Cluster<C>,
    call_gen: F,
}

impl<C, F> OpDriver<C, F>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    /// Wraps a fresh cluster of `n_replicas`; `call_gen` has the same
    /// signature as in [`ral_runtime::schedule::drive_op_based`], so the
    /// `ral_verify::workloads` generators plug in unchanged.
    pub fn new(crdt: C, n_replicas: usize, call_gen: F) -> Self {
        OpDriver {
            cluster: Cluster::new(crdt, n_replicas),
            call_gen,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster<C> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster (executor configuration,
    /// targeted fault injection in tests).
    pub fn cluster_mut(&mut self) -> &mut Cluster<C> {
        &mut self.cluster
    }

    /// Consumes the driver, returning the cluster (and with it the
    /// recorded history).
    pub fn into_cluster(self) -> Cluster<C> {
        self.cluster
    }
}

impl<C, F> Driver for OpDriver<C, F>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    const RELIABLE: bool = true;
    const GOSSIPS: bool = false;

    fn n_replicas(&self) -> usize {
        self.cluster.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        match (self.call_gen)(rng, r, self.cluster.state(r)) {
            Some(call) => self.cluster.invoke(r, call).is_some(),
            None => false,
        }
    }

    fn gossip(&mut self, _r: ReplicaId) -> bool {
        false
    }

    fn n_messages(&self) -> usize {
        self.cluster.n_deliveries()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.cluster
            .history()
            .op(self.cluster.delivery_op(m))
            .replica
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        self.cluster.receive(r, m)
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.cluster.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.cluster.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        // Nothing to drain: the engine never hands messages to a down
        // replica (reliable transmissions retry instead), so the held
        // backlog cannot have become deliverable while crashed.
        self.cluster.restart(r);
    }

    fn final_sync(&mut self) {
        // deliver_all applies the mailbox backlog (held entries included —
        // the drain prunes whatever it makes stale).
        self.cluster.restart_all();
        self.cluster.deliver_all();
    }

    fn converged(&self) -> bool {
        self.cluster.converged()
    }
}

/// Drives a state-based [`StateCluster`].
pub struct StateDriver<C: StateBased, F> {
    cluster: StateCluster<C>,
    call_gen: F,
    // Optional payload-size model: bytes of one full-state snapshot.
    #[allow(clippy::type_complexity)]
    sizer: Option<Box<dyn Fn(&C::State) -> usize>>,
}

impl<C, F> StateDriver<C, F>
where
    C: StateBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    /// Wraps a fresh cluster of `n_replicas`.
    pub fn new(crdt: C, n_replicas: usize, call_gen: F) -> Self {
        StateDriver {
            cluster: StateCluster::new(crdt, n_replicas),
            call_gen,
            sizer: None,
        }
    }

    /// Attaches a payload-size model: `sizer` gives the wire bytes of one
    /// full-state snapshot (a 12-byte origin+clock header is added per
    /// transmission), feeding
    /// [`SimStats::payload_bytes`](crate::sim::SimStats). For a
    /// [`DeltaCrdt`] type, pass its `state_bytes` so full-state and delta
    /// runs share one payload model.
    pub fn with_sizer(mut self, sizer: impl Fn(&C::State) -> usize + 'static) -> Self {
        self.sizer = Some(Box::new(sizer));
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &StateCluster<C> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut StateCluster<C> {
        &mut self.cluster
    }

    /// Consumes the driver, returning the cluster.
    pub fn into_cluster(self) -> StateCluster<C> {
        self.cluster
    }
}

impl<C, F> Driver for StateDriver<C, F>
where
    C: StateBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    const RELIABLE: bool = false;
    const GOSSIPS: bool = true;

    fn n_replicas(&self) -> usize {
        self.cluster.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        match (self.call_gen)(rng, r, self.cluster.state(r)) {
            Some(call) => self.cluster.invoke(r, call).is_some(),
            None => false,
        }
    }

    fn gossip(&mut self, r: ReplicaId) -> bool {
        self.cluster.send(r);
        true
    }

    fn n_messages(&self) -> usize {
        self.cluster.n_messages()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.cluster.message_origin(m)
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        // Merges absorb duplicates and reordering by construction; every
        // arrival is simply applied.
        self.cluster.apply(r, m);
        Received::Applied(1)
    }

    fn message_bytes(&self, m: usize, _to: ReplicaId) -> usize {
        // Snapshot plus a 12-byte origin+clock header. Note the delta
        // transport pays *more* per-message overhead (12-byte header,
        // 12-byte per-link ack entry, 16-byte batch interval), so this
        // asymmetry biases comparisons in full-state's favour — the safe
        // direction for the "delta ships fewer bytes" claims.
        self.sizer
            .as_ref()
            .map_or(0, |f| 12 + f(self.cluster.message_state(m)))
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.cluster.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.cluster.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        self.cluster.restart(r);
    }

    fn final_sync(&mut self) {
        self.cluster.restart_all();
        self.cluster.sync_all();
    }

    fn converged(&self) -> bool {
        self.cluster.converged()
    }
}

/// Drives a delta-state [`DeltaCluster`]: gossip ticks broadcast joined
/// delta batches (or full-state resyncs) instead of whole-state snapshots.
///
/// Like [`StateDriver`], the transport is lossy (`RELIABLE = false`): the
/// delta machinery itself — ack-driven retransmission of unacknowledged
/// intervals and resync fallback — is what recovers dropped messages, and
/// the join laws absorb duplication and reordering.
pub struct DeltaDriver<C: DeltaCrdt, F> {
    cluster: DeltaCluster<C>,
    call_gen: F,
}

impl<C, F> DeltaDriver<C, F>
where
    C: DeltaCrdt,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    /// Wraps a fresh delta cluster of `n_replicas`.
    pub fn new(crdt: C, config: DeltaConfig, n_replicas: usize, call_gen: F) -> Self {
        DeltaDriver {
            cluster: DeltaCluster::new(crdt, config, n_replicas),
            call_gen,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DeltaCluster<C> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut DeltaCluster<C> {
        &mut self.cluster
    }

    /// Consumes the driver, returning the cluster.
    pub fn into_cluster(self) -> DeltaCluster<C> {
        self.cluster
    }
}

impl<C, F> Driver for DeltaDriver<C, F>
where
    C: DeltaCrdt,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    const RELIABLE: bool = false;
    const GOSSIPS: bool = true;

    fn n_replicas(&self) -> usize {
        self.cluster.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        match (self.call_gen)(rng, r, self.cluster.state(r)) {
            Some(call) => self.cluster.invoke(r, call).is_some(),
            None => false,
        }
    }

    fn gossip(&mut self, r: ReplicaId) -> bool {
        self.cluster.gossip(r);
        true
    }

    fn n_messages(&self) -> usize {
        self.cluster.n_messages()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.cluster.message_origin(m)
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        // Joins are always sound, whatever arrived and in whatever order.
        if self.cluster.apply(r, m) {
            Received::Applied(1)
        } else {
            Received::Ignored
        }
    }

    fn message_bytes(&self, m: usize, to: ReplicaId) -> usize {
        self.cluster.message_bytes(m, to)
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.cluster.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.cluster.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        self.cluster.restart(r);
    }

    fn final_sync(&mut self) {
        self.cluster.restart_all();
        self.cluster.sync_all();
    }

    fn converged(&self) -> bool {
        self.cluster.converged()
    }
}

/// Drives a composed [`MultiCluster`]; the workload also picks the target
/// object.
pub struct MultiDriver<C: OpBased, F> {
    cluster: MultiCluster<C>,
    call_gen: F,
}

impl<C, F> MultiDriver<C, F>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
{
    /// Wraps a fresh composed cluster; `call_gen` has the same signature as
    /// in [`ral_runtime::schedule::drive_multi`].
    pub fn new(cluster: MultiCluster<C>, call_gen: F) -> Self {
        MultiDriver { cluster, call_gen }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &MultiCluster<C> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut MultiCluster<C> {
        &mut self.cluster
    }

    /// Consumes the driver, returning the cluster.
    pub fn into_cluster(self) -> MultiCluster<C> {
        self.cluster
    }
}

impl<C, F> Driver for MultiDriver<C, F>
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
{
    const RELIABLE: bool = true;
    const GOSSIPS: bool = false;

    fn n_replicas(&self) -> usize {
        self.cluster.n_replicas()
    }

    fn invoke(&mut self, rng: &mut Rng, r: ReplicaId) -> bool {
        let obj = ObjId(rng.random_range(0..self.cluster.n_objects()) as u32);
        match (self.call_gen)(rng, r, obj, self.cluster.state(r, obj)) {
            Some(call) => self.cluster.invoke(r, obj, call).is_some(),
            None => false,
        }
    }

    fn gossip(&mut self, _r: ReplicaId) -> bool {
        false
    }

    fn n_messages(&self) -> usize {
        self.cluster.n_deliveries()
    }

    fn origin(&self, m: usize) -> ReplicaId {
        self.cluster
            .history()
            .op(self.cluster.delivery_op(m))
            .replica
    }

    fn receive(&mut self, r: ReplicaId, m: usize) -> Received {
        self.cluster.receive(r, m)
    }

    fn is_up(&self, r: ReplicaId) -> bool {
        self.cluster.is_up(r)
    }

    fn crash(&mut self, r: ReplicaId) {
        self.cluster.crash(r);
    }

    fn restart(&mut self, r: ReplicaId) {
        // Nothing to drain: the engine never hands messages to a down
        // replica (reliable transmissions retry instead), so the held
        // backlog cannot have become deliverable while crashed.
        self.cluster.restart(r);
    }

    fn final_sync(&mut self) {
        self.cluster.restart_all();
        self.cluster.deliver_all();
    }

    fn converged(&self) -> bool {
        self.cluster.converged()
    }
}
