//! Operation labels, the query/update classification, and query-update
//! rewritings `γ` (Section 3.1 and Definition 3.7).
//!
//! The paper partitions methods into
//!
//! * **queries** — identity effectors (`read` of every data type here);
//! * **updates** — effectors and return values that do not depend on the
//!   origin replica's state (`addAfter`, OR-Set `add`, counter `inc`…);
//! * **query-updates** — everything else (OR-Set `remove`).
//!
//! Definition 3.5 only applies to histories of queries and updates, so
//! query-update labels are first *rewritten* by a mapping
//! `γ : L → L^{≤2}` into a query part followed by an update part
//! (Definition 3.7, illustrated in Figure 5b for OR-Set).

use std::fmt::Debug;

/// Classification of a specification label (after rewriting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A pure method: its effector is the identity.
    Query,
    /// An effectful method whose effector does not depend on the origin
    /// replica's state.
    Update,
}

/// A label that knows whether it is a query or an update.
///
/// Implemented by the label types of sequential specifications; the
/// RA-linearizability checker uses it to project linearizations onto updates
/// (condition (ii) of Definition 3.5) and to justify queries (condition
/// (iii)).
pub trait SpecLabel {
    /// Whether this label is a query or an update.
    fn kind(&self) -> Kind;

    /// Convenience: `kind() == Kind::Query`.
    fn is_query(&self) -> bool {
        self.kind() == Kind::Query
    }

    /// Convenience: `kind() == Kind::Update`.
    fn is_update(&self) -> bool {
        self.kind() == Kind::Update
    }
}

/// The image of one label under a query-update rewriting `γ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rewritten<T> {
    /// The label was a plain query or update and is mapped to a singleton.
    One(T),
    /// The label was a query-update and is split into a query followed by an
    /// update (in this visibility order).
    Split {
        /// The query part `qry(γ(ℓ))`, e.g. OR-Set `readIds(a) ⇒ R`.
        query: T,
        /// The update part `upd(γ(ℓ))`, e.g. OR-Set `remove(R)`.
        update: T,
    },
}

impl<T> Rewritten<T> {
    /// The query part `qry(γ(ℓ))`: the singleton itself, or the first
    /// component of a split.
    pub fn query(&self) -> &T {
        match self {
            Rewritten::One(t) => t,
            Rewritten::Split { query, .. } => query,
        }
    }

    /// The update part `upd(γ(ℓ))`: the singleton itself, or the second
    /// component of a split.
    pub fn update(&self) -> &T {
        match self {
            Rewritten::One(t) => t,
            Rewritten::Split { update, .. } => update,
        }
    }
}

/// A query-update rewriting `γ` from implementation labels `In` to
/// specification labels.
///
/// The implementation must preserve the status of plain queries and updates
/// (they map to singletons of the same kind) and split query-updates into a
/// query followed by an update; [`rewrite_history`](crate::history::rewrite_history)
/// checks these requirements with debug assertions.
pub trait Rewrite<In> {
    /// Specification label type produced by the rewriting.
    type Out: SpecLabel + Clone + Debug;

    /// Rewrites one label.
    fn rewrite(&self, label: &In) -> Rewritten<Self::Out>;
}

// A rewriting can be used through a shared reference — this is what lets the
// streaming monitor feed borrow the caller's rewriting instead of taking it.
impl<In, R: Rewrite<In>> Rewrite<In> for &R {
    type Out = R::Out;

    fn rewrite(&self, label: &In) -> Rewritten<Self::Out> {
        (**self).rewrite(label)
    }
}

/// The identity rewriting, for data types without query-update methods
/// (their implementation labels already are specification labels).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Identity;

impl<L: SpecLabel + Clone + Debug> Rewrite<L> for Identity {
    type Out = L;

    fn rewrite(&self, label: &L) -> Rewritten<L> {
        Rewritten::One(label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Upd,
        Qry,
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Upd => Kind::Update,
                L::Qry => Kind::Query,
            }
        }
    }

    #[test]
    fn kind_helpers() {
        assert!(L::Upd.is_update());
        assert!(!L::Upd.is_query());
        assert!(L::Qry.is_query());
    }

    #[test]
    fn identity_rewrite() {
        let rw = Identity;
        assert_eq!(rw.rewrite(&L::Upd), Rewritten::One(L::Upd));
    }

    #[test]
    fn rewritten_parts() {
        let one = Rewritten::One(L::Qry);
        assert_eq!(one.query(), &L::Qry);
        assert_eq!(one.update(), &L::Qry);
        let split = Rewritten::Split {
            query: L::Qry,
            update: L::Upd,
        };
        assert_eq!(split.query(), &L::Qry);
        assert_eq!(split.update(), &L::Upd);
    }
}
