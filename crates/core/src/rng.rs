//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The whole workspace builds offline with zero external crates, so this
//! module replaces `rand`: a [xoshiro256++][xo] generator seeded through
//! SplitMix64, with the handful of sampling helpers the schedulers,
//! workloads, and property harnesses actually use. Every stream is a pure
//! function of its seed, which is what makes schedules — and every
//! counterexample they find — reproducible.
//!
//! [xo]: https://prng.di.unimi.it/
//!
//! # Example
//!
//! ```
//! use ral_core::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.random_range(1..=6u8);
//! assert!((1..=6).contains(&die));
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

use std::ops::{Range, RangeInclusive};
use std::panic::AssertUnwindSafe;

/// Advances a SplitMix64 state and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state and to
/// derive per-case seeds in [`run_seeded_cases`].
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure — it drives schedule exploration and
/// randomized tests, where the requirements are statistical quality and
/// bit-for-bit reproducibility from a seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    ///
    /// The 64-bit seed is expanded to the full 256-bit state with
    /// SplitMix64, as the xoshiro authors recommend; distinct seeds give
    /// statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform value in `0..bound` (`bound` > 0) via Lemire's
    /// multiply-shift reduction.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`) over any primitive integer type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`; `NaN` is
    /// treated as `0`, i.e. never `true`).
    ///
    /// Exactly one `u64` is drawn from the stream regardless of `p`, so
    /// out-of-range probabilities cannot desynchronise seeded replays.
    pub fn random_bool(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`Rng::random_range`] can sample from.
///
/// Implemented for `Range` and `RangeInclusive` over the primitive integer
/// types. The element type is the trait parameter (as in `rand`) so an
/// unsuffixed literal range like `0..10` unifies with the type the call
/// site expects.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(
                    self.start < self.end,
                    "Rng::random_range called with empty range {}..{}",
                    self.start, self.end,
                );
                // i128 is lossless for every primitive int up to 64 bits,
                // so the width is exact even for ranges like -100..100i8
                // (where subtraction in the element type would wrap) and
                // fits u64 even for i64::MIN..i64::MAX.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "Rng::random_range called with empty range {start}..={end}",
                );
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    // Only the full 64-bit domain reaches this: span + 1
                    // would overflow, and every value is admissible anyway.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Runs a seeded property `case` many times, reporting the failing seed.
///
/// This is the workspace's replacement for `proptest`: each case gets a
/// fresh [`Rng`] derived from a per-suite base seed, and on failure the
/// harness prints the exact seed (and how to re-run just that seed) before
/// propagating the panic. There is no shrinking — reproducibility from the
/// printed seed is the debugging story.
///
/// Environment overrides:
///
/// * `RAL_PROP_CASES` — run this many cases instead of `cases`;
/// * `RAL_PROP_SEED` — run exactly one case with this seed (decimal or
///   `0x`-prefixed hex), e.g. the seed a previous failure printed.
///
/// Both are read through [`crate::env`], the workspace's single audited
/// surface for environment variables.
///
/// # Examples
///
/// A normal run executes every case with a seed derived from the suite
/// label; setting `RAL_PROP_SEED` replays exactly one case with exactly
/// that seed — the replay workflow after a failure report:
///
/// ```
/// use ral_core::rng::run_seeded_cases;
///
/// // Doc tests run in their own process, so clearing the ambient
/// // overrides here cannot affect a surrounding replay run.
/// std::env::remove_var("RAL_PROP_SEED");
/// std::env::remove_var("RAL_PROP_CASES");
///
/// let mut ran = 0;
/// run_seeded_cases("doc-example", 8, |_seed, rng| {
///     ran += 1;
///     assert!(rng.random_range(0..10u8) < 10);
/// });
/// assert_eq!(ran, 8);
///
/// // Replay one specific seed, as `RAL_PROP_SEED=0xDEAD cargo test` would.
/// std::env::set_var("RAL_PROP_SEED", "0xDEAD");
/// let mut seeds = Vec::new();
/// run_seeded_cases("doc-example", 8, |seed, _rng| seeds.push(seed));
/// assert_eq!(seeds, vec![0xDEAD]);
/// std::env::remove_var("RAL_PROP_SEED");
/// ```
pub fn run_seeded_cases<F>(label: &str, cases: u64, case: F)
where
    F: FnMut(u64, &mut Rng),
{
    run_cases_with(
        label,
        cases,
        crate::env::prop_seed(),
        crate::env::prop_cases(),
        case,
    );
}

/// [`run_seeded_cases`] with the environment overrides passed explicitly.
///
/// The public entry point reads `RAL_PROP_SEED`/`RAL_PROP_CASES` and
/// delegates here; tests of the harness itself call this directly so they
/// stay correct even when a developer re-runs the whole suite with those
/// variables set (e.g. following a failure report's advice).
fn run_cases_with<F>(
    label: &str,
    cases: u64,
    seed_override: Option<u64>,
    cases_override: Option<u64>,
    mut case: F,
) where
    F: FnMut(u64, &mut Rng),
{
    if let Some(seed) = seed_override {
        let mut rng = Rng::seed_from_u64(seed);
        case(seed, &mut rng);
        return;
    }
    let cases = cases_override.unwrap_or(cases);

    // Base seed fixed per suite label so runs are stable across machines.
    let mut base = 0x5EED_0000_0000_0000u64;
    for byte in label.bytes() {
        base = split_mix64(&mut base) ^ u64::from(byte);
    }
    for i in 0..cases {
        let mut derive = base.wrapping_add(i);
        let seed = split_mix64(&mut derive);
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| case(seed, &mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "[{label}] property failed at case {i}/{cases} with seed {seed:#018x}; \
                 re-run just this case with RAL_PROP_SEED={seed:#x}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_guards_the_algorithm() {
        // First outputs for seed 0 — pins the SplitMix64 + xoshiro256++
        // composition so a silent algorithm change cannot slip through
        // (it would invalidate every recorded failure seed).
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.random_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 should appear");
        for _ in 0..500 {
            let v = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
        }
        let v: u8 = rng.random_range(5..6);
        assert_eq!(v, 5);
        assert_eq!(rng.random_range(7..=7u32), 7);
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        // Regression: a span wider than the element type's MAX used to
        // sign-extend and sample out of range.
        let mut rng = Rng::seed_from_u64(1);
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..500 {
            let v = rng.random_range(-100..100i8);
            assert!((-100..100).contains(&v), "{v} out of -100..100");
            saw_neg |= v < -50;
            saw_pos |= v > 50;
        }
        assert!(saw_neg && saw_pos, "both tails should be reachable");
        for _ in 0..500 {
            let v = rng.random_range(i8::MIN..=i8::MAX);
            let _: i8 = v; // every value is admissible; just must not panic
            let w = rng.random_range(i64::MIN..=i64::MAX);
            let _: i64 = w;
            let u = rng.random_range(0..=u64::MAX);
            let _: u64 = u;
            let x = rng.random_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_bool_clamps_out_of_range_probabilities() {
        // Regression: the docs promised clamping to [0, 1] but nothing
        // clamped, and NaN silently behaved as 0.
        let mut rng = Rng::seed_from_u64(21);
        assert!(!(0..200).any(|_| rng.random_bool(-3.5)));
        assert!((0..200).all(|_| rng.random_bool(7.0)));
        assert!(!(0..200).any(|_| rng.random_bool(f64::NAN)));
        assert!(!(0..200).any(|_| rng.random_bool(f64::NEG_INFINITY)));
        assert!((0..200).all(|_| rng.random_bool(f64::INFINITY)));
        // Boundaries behave as before.
        assert!(!(0..200).any(|_| rng.random_bool(0.0)));
        assert!((0..200).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_bool_always_consumes_one_draw() {
        // Out-of-range (even NaN) probabilities must advance the stream by
        // exactly one u64, or seeded replays would desynchronise.
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        let _ = a.random_bool(f64::NAN);
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = a.random_bool(42.0);
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).random_range(3..3u8);
    }

    #[test]
    fn seeded_cases_report_the_failing_seed() {
        // Overrides passed explicitly (None) so this test is immune to
        // ambient RAL_PROP_SEED/RAL_PROP_CASES in the environment.
        let mut ran = 0u64;
        run_cases_with("smoke", 16, None, None, |_seed, rng| {
            ran += 1;
            let _ = rng.random_range(0..10u8);
        });
        assert_eq!(ran, 16);
        let caught = std::panic::catch_unwind(|| {
            run_cases_with("always-fails", 4, None, None, |_, _| panic!("boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn seed_override_runs_exactly_one_case() {
        let mut seeds = Vec::new();
        run_cases_with("override", 16, Some(0xABCD), None, |seed, _| {
            seeds.push(seed);
        });
        assert_eq!(seeds, vec![0xABCD]);
        let mut ran = 0u64;
        run_cases_with("cases-override", 16, None, Some(3), |_, _| ran += 1);
        assert_eq!(ran, 3);
    }
}
