//! The totally ordered timestamp domain `T` of Section 3.1.
//!
//! The paper assumes timestamps are sampled from a totally ordered set, are
//! unique, and grow monotonically with visibility: a generator always samples
//! a timestamp strictly larger than every timestamp visible at its replica
//! (side condition of the OPERATION rule, Figure 7). Footnote 6 suggests the
//! standard realization — a Lamport pair of a counter and a replica
//! identifier — which is what [`Ts`] implements. The distinguished minimal
//! element `⊥` (for operations that generate no timestamp) is represented as
//! `Option<Ts>` with `None < Some(_)`, which is exactly the derived order.

use crate::ids::ReplicaId;
use std::fmt;

/// A Lamport timestamp: a counter tagged with the originating replica.
///
/// The derived lexicographic order `(counter, replica)` is total because no
/// two operations of the same replica share a counter, and ties between
/// replicas are broken by the fixed replica order — the paper's
/// "arbitrary order among replica identifiers".
///
/// # Examples
///
/// ```
/// use ral_core::{ids::ReplicaId, timestamp::Ts};
///
/// let a = Ts::new(1, ReplicaId(1));
/// let b = Ts::new(2, ReplicaId(0));
/// assert!(a < b); // counter dominates
/// let c = Ts::new(2, ReplicaId(1));
/// assert!(b < c); // replica order breaks ties
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ts {
    /// Logical clock value.
    pub counter: u64,
    /// Replica that generated the timestamp.
    pub replica: ReplicaId,
}

impl Ts {
    /// Creates a timestamp from a counter value and the generating replica.
    pub fn new(counter: u64, replica: ReplicaId) -> Self {
        Ts { counter, replica }
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.replica)
    }
}

/// Returns the larger of two optional timestamps, treating `None` as `⊥`
/// (the minimal element).
pub fn max_ts(a: Option<Ts>, b: Option<Ts>) -> Option<Ts> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.max(y)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let t10 = Ts::new(1, ReplicaId(0));
        let t11 = Ts::new(1, ReplicaId(1));
        let t20 = Ts::new(2, ReplicaId(0));
        assert!(t10 < t11);
        assert!(t11 < t20);
        assert!(t10 < t20);
    }

    #[test]
    fn bottom_is_minimal() {
        let t = Some(Ts::new(0, ReplicaId(0)));
        assert!(None < t);
        assert_eq!(max_ts(None, t), t);
        assert_eq!(max_ts(t, None), t);
        assert_eq!(max_ts(None, None), None);
    }

    #[test]
    fn max_of_two() {
        let a = Some(Ts::new(3, ReplicaId(0)));
        let b = Some(Ts::new(3, ReplicaId(1)));
        assert_eq!(max_ts(a, b), b);
    }

    #[test]
    fn display() {
        assert_eq!(Ts::new(4, ReplicaId(2)).to_string(), "4@r2");
    }
}
