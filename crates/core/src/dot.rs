//! Graphviz DOT export for histories — the tool that draws the paper's
//! history figures (Figures 3, 5a, 9, 10).
//!
//! Visibility arrows point from the seen operation to the seeing one, as in
//! the paper; redundant (transitively implied) edges are elided so the
//! output matches the hand-drawn figures.

use crate::history::History;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Renders a history as a DOT digraph. Node labels come from the label's
/// `Debug` form; replicas become horizontal ranks.
///
/// # Examples
///
/// ```
/// use ral_core::dot::to_dot;
/// use ral_core::history::{History, OpRecord};
/// use ral_core::ids::ReplicaId;
///
/// let mut h = History::new();
/// let a = h.push(OpRecord::new("add(x)", ReplicaId(0)), []);
/// h.push(OpRecord::new("read()", ReplicaId(1)), [a]);
/// let dot = to_dot(&h);
/// assert!(dot.contains("digraph history"));
/// assert!(dot.contains("op0 -> op1"));
/// ```
pub fn to_dot<L: Debug>(h: &History<L>) -> String {
    let mut out = String::from("digraph history {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, op) in h.iter() {
        let label = format!("{:?}", op.label).replace('"', "'");
        let ts = match op.ts {
            Some(ts) => format!("\\n{ts}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  op{i} [label=\"{label}\\n{replica}{ts}\"];",
            replica = op.replica
        );
    }
    for b in 0..h.len() {
        for a in h.preds(b) {
            // Elide edges implied by transitivity, as the paper's figures do.
            let redundant = h.preds(b).iter().any(|m| m != a && h.sees(m, a));
            if !redundant {
                let _ = writeln!(out, "  op{a} -> op{b};");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;

    #[test]
    fn renders_nodes_and_edges() {
        let mut h = History::new();
        let a = h.push(OpRecord::new("w", ReplicaId(0)), []);
        let b = h.push(OpRecord::new("x", ReplicaId(1)), [a]);
        h.push(OpRecord::new("r", ReplicaId(1)), [a, b]);
        let dot = to_dot(&h);
        assert!(dot.starts_with("digraph history"));
        assert!(dot.contains("op0 [label="));
        assert!(dot.contains("op0 -> op1;"));
        assert!(dot.contains("op1 -> op2;"));
        // a -> r is transitively implied through b and must be elided.
        assert!(!dot.contains("op0 -> op2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes_and_shows_timestamps() {
        use crate::timestamp::Ts;
        let mut h = History::new();
        h.push(
            OpRecord::with_ts("say \"hi\"", ReplicaId(0), Ts::new(3, ReplicaId(0))),
            [],
        );
        let dot = to_dot(&h);
        assert!(!dot.contains("\"hi\""), "quotes must be escaped");
        assert!(dot.contains("3@r0"));
    }

    #[test]
    fn concurrent_ops_have_no_edges() {
        let mut h = History::new();
        h.push(OpRecord::new("a", ReplicaId(0)), []);
        h.push(OpRecord::new("b", ReplicaId(1)), []);
        let dot = to_dot(&h);
        assert!(!dot.contains("->"));
    }
}
