#![warn(missing_docs)]
//! Core definitions of **Replication-Aware Linearizability** (RA-linearizability),
//! the correctness criterion for CRDTs introduced by Enea, Mutluergil, Petri and
//! Wang (PLDI 2019).
//!
//! This crate contains the paper's semantic domains and the checker:
//!
//! * [`ids`] — replicas, operation identifiers, objects, unique tags;
//! * [`timestamp`] — the totally ordered timestamp domain `T` (Lamport pairs);
//! * [`bitset`] — dense bit sets used for visibility relations;
//! * [`label`] — operation labels, the query/update classification, and
//!   query-update rewritings `γ` (Definition 3.7);
//! * [`history`] — histories `(L, vis)` with their visibility partial order
//!   (Section 3.1);
//! * [`spec`] — sequential specifications as (possibly nondeterministic)
//!   transition relations over abstract states (Section 3.2);
//! * [`rng`] — deterministic, dependency-free randomness (the workspace's
//!   `rand` replacement) plus the seeded property-test harness;
//! * [`ralin`] — the RA-linearizability checker (Definition 3.5/3.7), both
//!   brute-force over linear extensions and guided by the constructive
//!   *execution-order* / *timestamp-order* strategies (Sections 4.1, 4.2);
//! * [`linearizability`] — a standard (visibility-based) linearizability
//!   checker used to contrast with RA-linearizability (Figure 5a);
//! * [`compose`] — object composition `⊗` at the specification level
//!   (Section 5);
//! * [`sessions`] — the session guarantees of Terry et al., which
//!   RA-linearizable systems subsume (Section 7);
//! * [`mod@env`] — the workspace's single audited surface for environment
//!   variables (everything else is determinism-lint-enforced env-free);
//! * [`scope`] — the [`SmallScope`] enumeration interface behind
//!   `ral-analyze`'s bounded-exhaustive obligation checking.
//!
//! # Example
//!
//! Build a two-operation history by hand and check it against a counter
//! specification:
//!
//! ```
//! use ral_core::history::{History, OpRecord};
//! use ral_core::ids::ReplicaId;
//! use ral_core::ralin::{check_guided, Strategy};
//! use ral_core::label::{Kind, SpecLabel};
//! use ral_core::spec::Spec;
//!
//! #[derive(Clone, Debug, PartialEq)]
//! enum Ctr { Inc, Read(i64) }
//! impl SpecLabel for Ctr {
//!     fn kind(&self) -> Kind {
//!         match self { Ctr::Inc => Kind::Update, Ctr::Read(_) => Kind::Query }
//!     }
//! }
//! struct CtrSpec;
//! impl Spec for CtrSpec {
//!     type Label = Ctr;
//!     type State = i64;
//!     fn initial(&self) -> i64 { 0 }
//!     fn step(&self, s: &i64, l: &Ctr) -> Vec<i64> {
//!         match l {
//!             Ctr::Inc => vec![s + 1],
//!             Ctr::Read(k) if k == s => vec![*s],
//!             Ctr::Read(_) => vec![],
//!         }
//!     }
//! }
//!
//! let mut h = History::new();
//! let inc = h.push(OpRecord::new(Ctr::Inc, ReplicaId(0)), []);
//! h.push(OpRecord::new(Ctr::Read(1), ReplicaId(0)), [inc]);
//! let lin = check_guided(&h, &CtrSpec, Strategy::ExecutionOrder).unwrap();
//! assert_eq!(lin.order.len(), 2);
//! ```

pub mod bitset;
pub mod compose;
pub mod dot;
pub mod elem;
pub mod env;
pub mod history;
pub mod ids;
pub mod label;
pub mod linearizability;
pub mod ralin;
pub mod rng;
pub mod scope;
pub mod sessions;
pub mod spec;
pub mod timestamp;

pub use bitset::BitSet;
pub use elem::Elem;
pub use history::{History, OpRecord};
pub use ids::{ObjId, OpId, ReplicaId, Uid};
pub use label::{Kind, Rewrite, Rewritten, SpecLabel};
pub use ralin::{Strategy, Violation};
pub use scope::SmallScope;
pub use spec::Spec;
pub use timestamp::Ts;
