//! A compact, growable bit set over `usize` indices.
//!
//! Visibility relations in histories are dense (operation indices are
//! consecutive), so predecessor sets are stored as bit vectors. This gives
//! O(1) membership tests and word-parallel unions/subset tests, which the
//! brute-force linearization search relies on.

use std::fmt;

const BITS: usize = 64;

/// A growable set of `usize` values backed by a vector of 64-bit blocks.
///
/// # Examples
///
/// ```
/// use ral_core::bitset::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { blocks: Vec::new() }
    }

    /// Creates an empty set with room for indices up to `bits` without
    /// reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            blocks: Vec::with_capacity(bits.div_ceil(BITS)),
        }
    }

    /// Inserts `i` into the set. Returns `true` if the value was newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        let (block, bit) = (i / BITS, i % BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] |= mask;
        !was
    }

    /// Removes `i` from the set. Returns `true` if the value was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (block, bit) = (i / BITS, i % BITS);
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        was
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        let (block, bit) = (i / BITS, i % BITS);
        self.blocks.get(block).is_some_and(|b| b & (1 << bit) != 0)
    }

    /// Adds every element of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= src;
        }
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.blocks.iter().enumerate().all(|(idx, b)| {
            let o = other.blocks.get(idx).copied().unwrap_or(0);
            b & !o == 0
        })
    }

    /// Returns `true` if `self` and `other` have no element in common.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// The largest element, or `None` for an empty set. Scans whole blocks
    /// downward from the top, so on dense sets (visibility sets, whose top
    /// block is almost always occupied) this is O(1) — unlike
    /// `iter().last()`, which walks every element.
    pub fn max(&self) -> Option<usize> {
        self.blocks.iter().enumerate().rev().find_map(|(idx, &b)| {
            (b != 0).then(|| idx * BITS + (BITS - 1 - b.leading_zeros() as usize))
        })
    }

    /// The backing 64-bit blocks, least-significant first. Block `j` holds
    /// the membership bits for values `64j..64j+64`; trailing blocks may be
    /// absent (absent means empty). Used by the streaming monitor for
    /// word-parallel window scans that skip the settled prefix.
    pub(crate) fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * BITS + bit);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tracks_the_largest_element() {
        let mut s = BitSet::new();
        assert_eq!(s.max(), None);
        s.insert(0);
        assert_eq!(s.max(), Some(0));
        s.insert(63);
        assert_eq!(s.max(), Some(63));
        s.insert(200);
        assert_eq!(s.max(), Some(200));
        s.remove(200);
        // The top block is now empty; the scan must skip it.
        assert_eq!(s.max(), Some(63));
        assert_eq!(s.max(), s.iter().last());
    }

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(!s.insert(64));
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(1000));
        assert!(!s.contains(1));
        assert!(!s.contains(999));
        assert!(!s.contains(100_000));
    }

    #[test]
    fn remove_round_trip() {
        let mut s: BitSet = [1, 2, 3].into_iter().collect();
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert!(!s.remove(77));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(5);
        s.insert(500);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        s.remove(5);
        s.remove(500);
        assert!(s.is_empty());
    }

    #[test]
    fn union() {
        let mut a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [2, 200].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 200]);
    }

    #[test]
    fn subset() {
        let small: BitSet = [1, 65].into_iter().collect();
        let big: BitSet = [1, 2, 65, 129].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(BitSet::new().is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn disjoint() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [3, 4].into_iter().collect();
        let c: BitSet = [2, 3].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [300, 1, 64, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 63, 64, 300]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s: BitSet = [1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        assert_eq!(format!("{:?}", BitSet::new()), "{}");
    }
}
