//! The data domain `D` (Section 3.1), as a bound alias.
//!
//! Specifications and CRDTs are generic over the element type stored in the
//! data structure; [`Elem`] bundles the bounds they all need (cloning for
//! effector payloads, ordering for deterministic set representations,
//! hashing for tombstone lookups).

use std::fmt::Debug;
use std::hash::Hash;

/// An element of the data domain: any cloneable, totally ordered, hashable
/// value (e.g. `char`, `u32`, `String`). `Send + Sync` because replica
/// states (and the elements inside them) migrate across the runtime's
/// executor workers during parallel delivery rounds.
pub trait Elem: Clone + Debug + Eq + Ord + Hash + Send + Sync {}

impl<T: Clone + Debug + Eq + Ord + Hash + Send + Sync> Elem for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_elem<T: Elem>() {}

    #[test]
    fn common_types_are_elems() {
        assert_elem::<char>();
        assert_elem::<u32>();
        assert_elem::<String>();
        assert_elem::<(u32, char)>();
    }
}
