//! The data domain `D` (Section 3.1), as a bound alias.
//!
//! Specifications and CRDTs are generic over the element type stored in the
//! data structure; [`Elem`] bundles the bounds they all need (cloning for
//! effector payloads, ordering for deterministic set representations,
//! hashing for tombstone lookups).

use std::fmt::Debug;
use std::hash::Hash;

/// An element of the data domain: any cloneable, totally ordered, hashable
/// value (e.g. `char`, `u32`, `String`).
pub trait Elem: Clone + Debug + Eq + Ord + Hash {}

impl<T: Clone + Debug + Eq + Ord + Hash> Elem for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_elem<T: Elem>() {}

    #[test]
    fn common_types_are_elems() {
        assert_elem::<char>();
        assert_elem::<u32>();
        assert_elem::<String>();
        assert_elem::<(u32, char)>();
    }
}
