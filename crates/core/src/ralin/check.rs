//! Validation of a candidate linearization against Definition 3.5.

use crate::history::History;
use crate::label::SpecLabel;
use crate::spec::{Frontier, Spec};
use std::fmt;

/// Why a candidate sequence fails to be an RA-linearization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The sequence is not a permutation of the history's operations.
    NotAPermutation,
    /// Condition (i): an operation is placed before one of its visibility
    /// predecessors.
    InconsistentWithVisibility {
        /// The predecessor (`(earlier, later) ∈ vis`).
        earlier: usize,
        /// The operation that saw `earlier` yet was placed before it.
        later: usize,
    },
    /// Condition (ii): the projection onto updates is not admitted by the
    /// specification; `at` is the first offending update.
    UpdatesNotAdmitted {
        /// History index of the first update at which every specification run
        /// dies.
        at: usize,
    },
    /// Condition (iii): a query is not justified by the sub-sequence of
    /// updates visible to it.
    QueryNotJustified {
        /// History index of the unjustifiable query.
        query: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotAPermutation => write!(f, "sequence is not a permutation of the history"),
            Violation::InconsistentWithVisibility { earlier, later } => write!(
                f,
                "operation {later} sees operation {earlier} but is linearized before it"
            ),
            Violation::UpdatesNotAdmitted { at } => write!(
                f,
                "update projection rejected by the specification at operation {at}"
            ),
            Violation::QueryNotJustified { query } => {
                write!(f, "query {query} is not justified by its visible updates")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Condition (iii) of Definition 3.5 for a single query `q`: runs the
/// updates visible to `q` in the order given by `pos` (the linearization
/// position of every *placed* operation) and checks that the frontier then
/// admits `q`'s label.
///
/// This is the one shared justification routine: the validator
/// ([`check_linearization`]), the naive searcher
/// ([`super::brute::search_brute`]), and the memoized engine's
/// cross-checks all call it, so condition (iii) cannot silently diverge
/// between them. Callers guarantee every update visible to `q` has a
/// valid entry in `pos`.
pub(crate) fn query_justified<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    q: usize,
    pos: &[usize],
) -> bool {
    let mut visible: Vec<usize> = h
        .preds(q)
        .iter()
        .filter(|&u| h.label(u).is_update())
        .collect();
    visible.sort_by_key(|&u| pos[u]);
    let mut f = Frontier::new(spec);
    for u in visible {
        if !f.advance(h.label(u)) {
            return false;
        }
    }
    f.admits(h.label(q))
}

/// Checks that `order` is an RA-linearization of `h` w.r.t. `spec`
/// (Definition 3.5). The history must already be query-update free (apply
/// [`crate::history::rewrite_history`] first).
///
/// # Errors
///
/// Returns the first [`Violation`] found, checking condition (i), then (ii),
/// then (iii).
pub fn check_linearization<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    order: &[usize],
) -> Result<(), Violation> {
    // Permutation check.
    if order.len() != h.len() {
        return Err(Violation::NotAPermutation);
    }
    let mut pos = vec![usize::MAX; h.len()];
    for (p, &i) in order.iter().enumerate() {
        if i >= h.len() || pos[i] != usize::MAX {
            return Err(Violation::NotAPermutation);
        }
        pos[i] = p;
    }

    // (i) consistency with visibility.
    for later in 0..h.len() {
        for earlier in h.preds(later) {
            if pos[earlier] >= pos[later] {
                return Err(Violation::InconsistentWithVisibility { earlier, later });
            }
        }
    }

    // (ii) update projection admitted by the specification.
    let mut frontier = Frontier::new(spec);
    for &i in order {
        if h.label(i).is_update() && !frontier.advance(h.label(i)) {
            return Err(Violation::UpdatesNotAdmitted { at: i });
        }
    }

    // (iii) every query justified by its visible updates, in seq order.
    for &q in order {
        if h.label(q).is_query() && !query_justified(h, spec, q, &pos) {
            return Err(Violation::QueryNotJustified { query: q });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::Kind;

    /// Toy grow-only set.
    struct GSet;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Add(u32),
        Read(Vec<u32>),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Add(_) => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for GSet {
        type Label = L;
        type State = Vec<u32>;
        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }
        fn step(&self, s: &Vec<u32>, l: &L) -> Vec<Vec<u32>> {
            match l {
                L::Add(x) => {
                    let mut s = s.clone();
                    s.push(*x);
                    s.sort_unstable();
                    vec![s]
                }
                L::Read(v) => {
                    let mut sorted = v.clone();
                    sorted.sort_unstable();
                    if &sorted == s {
                        vec![s.clone()]
                    } else {
                        vec![]
                    }
                }
            }
        }
    }

    fn r0() -> ReplicaId {
        ReplicaId(0)
    }

    #[test]
    fn accepts_valid_linearization() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        let b = h.push(OpRecord::new(L::Add(2), ReplicaId(1)), []);
        // The read sees only a.
        let q = h.push(OpRecord::new(L::Read(vec![1]), r0()), [a]);
        assert_eq!(check_linearization(&h, &GSet, &[a, b, q]), Ok(()));
        assert_eq!(check_linearization(&h, &GSet, &[b, a, q]), Ok(()));
        assert_eq!(check_linearization(&h, &GSet, &[a, q, b]), Ok(()));
    }

    #[test]
    fn rejects_visibility_violation() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        let q = h.push(OpRecord::new(L::Read(vec![1]), r0()), [a]);
        assert_eq!(
            check_linearization(&h, &GSet, &[q, a]),
            Err(Violation::InconsistentWithVisibility {
                earlier: a,
                later: q
            })
        );
    }

    #[test]
    fn rejects_unjustified_query() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        // Claims to have read {1,2} while seeing only add(1).
        let q = h.push(OpRecord::new(L::Read(vec![1, 2]), r0()), [a]);
        assert_eq!(
            check_linearization(&h, &GSet, &[a, q]),
            Err(Violation::QueryNotJustified { query: q })
        );
    }

    #[test]
    fn query_ignores_invisible_updates() {
        // The subsequence relaxation: a read that doesn't see add(2) may
        // return {1} even if add(2) is linearized before it.
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        let b = h.push(OpRecord::new(L::Add(2), ReplicaId(1)), []);
        let q = h.push(OpRecord::new(L::Read(vec![1]), r0()), [a]);
        assert_eq!(check_linearization(&h, &GSet, &[b, a, q]), Ok(()));
    }

    #[test]
    fn rejects_non_permutations() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        assert_eq!(
            check_linearization(&h, &GSet, &[]),
            Err(Violation::NotAPermutation)
        );
        assert_eq!(
            check_linearization(&h, &GSet, &[a, a]),
            Err(Violation::NotAPermutation)
        );
        assert_eq!(
            check_linearization(&h, &GSet, &[7]),
            Err(Violation::NotAPermutation)
        );
    }

    /// A spec where updates have preconditions, to exercise condition (ii).
    struct Once;

    impl Spec for Once {
        type Label = L;
        type State = Vec<u32>;
        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }
        fn step(&self, s: &Vec<u32>, l: &L) -> Vec<Vec<u32>> {
            match l {
                L::Add(x) if s.contains(x) => vec![], // each element only once
                L::Add(x) => {
                    let mut s = s.clone();
                    s.push(*x);
                    s.sort_unstable();
                    vec![s]
                }
                L::Read(_) => vec![s.clone()],
            }
        }
    }

    #[test]
    fn rejects_inadmissible_update_projection() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r0()), []);
        let b = h.push(OpRecord::new(L::Add(1), ReplicaId(1)), []);
        assert_eq!(
            check_linearization(&h, &Once, &[a, b]),
            Err(Violation::UpdatesNotAdmitted { at: b })
        );
    }

    #[test]
    fn violation_display() {
        let v = Violation::QueryNotJustified { query: 3 };
        assert_eq!(
            v.to_string(),
            "query 3 is not justified by its visible updates"
        );
        assert!(!Violation::NotAPermutation.to_string().is_empty());
        let v = Violation::InconsistentWithVisibility {
            earlier: 1,
            later: 2,
        };
        assert!(v.to_string().contains("sees"));
        let v = Violation::UpdatesNotAdmitted { at: 0 };
        assert!(v.to_string().contains("rejected"));
    }
}
