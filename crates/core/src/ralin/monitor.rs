//! Streaming online RA-linearizability monitor — one incremental
//! configuration-frontier core serving both the batch search entry points
//! and continuous per-event verification.
//!
//! The memoized batch search ([`super::memo`]) and the sharded search
//! ([`super::sharded`]) each privately maintain the same machinery: a
//! placement mask over operations, the update projection's spec frontier,
//! and an incremental justification frontier per pending query, all keyed
//! by a canonical configuration hash. This module extracts that machinery
//! into a [`Monitor`] with a per-event [`Monitor::advance_op`] /
//! [`Monitor::observe_frontier`] interface that *extends* live
//! configurations instead of re-searching the history, in the
//! induction-style per-op shape of "Automatically Verifying
//! Replication-aware Linearizability" (arXiv 2502.19967).
//!
//! # The two modes
//!
//! **Batch** mode registers a complete history and then runs one exact,
//! level-ordered closure over the configuration DAG ([`try_search_batch`]).
//! Dedup merging keeps the lexicographically smallest placement order per
//! configuration, so a witness, when one exists, is *identical* to the one
//! the depth-first memoized search returns. The facades `ra_search` /
//! `ra_search_sharded` are rebased on this path, falling back to
//! [`super::memo`] when the closure overruns its caps.
//!
//! **Streaming** mode consumes an open-ended op/delivery stream. The live
//! configuration set `R` is kept *eagerly closed*: every configuration
//! reachable by placing known operations is materialized (deduplicated by
//! canonical key), so a verdict is maintained after every event with no
//! re-search.
//!
//! # Causal stability
//!
//! The monitor tracks each replica's seen-frontier (the first operation id
//! the replica has *not* seen). The minimum over all replicas is the
//! **settled watermark**: every op below it is in the causal past of any
//! future operation, so any future operation must be linearized after it.
//! That justifies the stability rule: a live configuration that has not
//! placed a settled op can be discarded — any completion it admits passes
//! through a configuration (already in the eagerly-closed `R`) that places
//! the settled op before all future ops. Settled prefixes are then
//! *compacted*: placement-mask words below the watermark are dropped,
//! per-configuration replayed prefixes are absorbed into a base state
//! (`qbase`), and per-op metadata is released. Retained state is
//! O(concurrent window), not O(history length) — the property the
//! `monitor_streaming` bench and the 100k-op churn test pin.
//!
//! # Verdicts
//!
//! Prefix RA-linearizability is *not* monotone (a currently-linearizable
//! prefix can become unrepairable, and a currently-unorderable prefix can
//! be repaired by future concurrent ops), so the monitor distinguishes
//! [`Verdict::Ok`] (some configuration places everything fed so far) from
//! [`Verdict::Deferred`] (no complete configuration yet, but live ones
//! remain) and the sticky [`Verdict::Violated`] (no configuration can ever
//! complete — detected when settlement empties `R`).

use std::collections::HashMap;
use std::marker::PhantomData;

use super::memo::{self, SearchStats};
use super::{Linearization, SearchOutcome};
use crate::bitset::BitSet;
use crate::history::{History, Parts};
use crate::ids::ReplicaId;
use crate::label::{Rewrite, Rewritten, SpecLabel};
use crate::spec::{
    advance_states, mix64, states_admit, states_canonical_hash, states_set_eq, Spec,
};
use ral_obs as obs;

#[cfg(debug_assertions)]
use super::check::check_linearization;

/// Seed of the canonical configuration key (the FNV-64 offset basis, shared
/// with [`crate::spec::fingerprint`]). The fold helpers below reproduce the
/// exact key the memoized search has always used, so the extraction is
/// behavior-preserving there.
pub(crate) const CONFIG_KEY_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one placement-mask word into a configuration key.
pub(crate) fn fold_mask_word(key: u64, word: u64) -> u64 {
    mix64(key ^ word)
}

/// Folds the canonical hash of the main spec frontier (or, in streaming
/// mode, of the absorbed base states) into a configuration key.
pub(crate) fn fold_frontier_hash(key: u64, frontier_hash: u64) -> u64 {
    mix64(key ^ frontier_hash)
}

/// Folds one pending query's justification frontier into a configuration
/// key. The rotation decorrelates it from the main frontier fold.
pub(crate) fn fold_query_frontier(key: u64, query: usize, qfront_hash: u64) -> u64 {
    mix64(key ^ (query as u64) ^ qfront_hash.rotate_left(17))
}

/// Replays `updates` from the initial state, returning the reachable state
/// set, or `None` if the sequence is not admitted by `spec`. Shared by the
/// per-shard admissibility checks in [`super::sharded`].
pub(crate) fn replay_updates<'l, S, I>(spec: &S, updates: I) -> Option<Vec<S::State>>
where
    S: Spec,
    I: IntoIterator<Item = &'l S::Label>,
    S::Label: 'l,
{
    let mut states = vec![spec.initial()];
    for l in updates {
        states = advance_states(spec, &states, l);
        if states.is_empty() {
            return None;
        }
    }
    Some(states)
}

/// Returns `true` if `updates` is admitted by `spec` and, when `query` is
/// given, some reached state admits it — the shape of every
/// `ShardableSpec::admits_shard` implementation.
pub(crate) fn replay_admits<'l, S, I>(spec: &S, updates: I, query: Option<&S::Label>) -> bool
where
    S: Spec,
    I: IntoIterator<Item = &'l S::Label>,
    S::Label: 'l,
{
    match replay_updates(spec, updates) {
        None => false,
        Some(states) => query.is_none_or(|q| states_admit(spec, &states, q)),
    }
}

/// The monitor's rolling judgement about the stream consumed so far.
///
/// Prefix RA-linearizability is not monotone, hence the four-way split:
/// only [`Verdict::Violated`] and [`Verdict::Exhausted`] are permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Some live configuration places every operation fed so far: the
    /// stream, read as a finished history, is RA-linearizable right now.
    Ok,
    /// No configuration is complete yet, but live configurations remain:
    /// concurrent operations still in flight can repair the prefix. At
    /// end-of-stream this means *not* linearizable.
    Deferred,
    /// The live configuration set is empty: no extension of the stream can
    /// ever linearize it. Sticky.
    Violated,
    /// The monitor exceeded its live-configuration cap and gave up
    /// tracking. Sticky; no judgement is implied.
    Exhausted,
}

impl Verdict {
    /// True when the prefix fed so far is linearizable as-is.
    pub fn is_ok(self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// True for the permanent verdicts that stop all further tracking.
    pub fn is_sticky(self) -> bool {
        matches!(self, Verdict::Violated | Verdict::Exhausted)
    }
}

/// Diagnostic counters for one monitor run.
///
/// `peak_live_configs` and `peak_live_window` are the bounded-memory
/// story: the long-churn tests assert they stay O(concurrent window)
/// while `ops` grows unbounded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Operations fed via `advance_op` (rewritten space: a split
    /// query-update pair counts as two).
    pub ops: u64,
    /// Query operations among `ops`.
    pub queries: u64,
    /// Seen-frontier observations fed via `observe_frontier`.
    pub frontier_observations: u64,
    /// Configurations expanded (candidate placements enumerated).
    pub expansions: u64,
    /// Child configurations dropped because an equal configuration was
    /// already live (the memoization of the incremental core).
    pub dedup_hits: u64,
    /// Placements rejected because the update projection's frontier died.
    pub prune_frontier_death: u64,
    /// Placements rejected because a placed query was not justified by its
    /// visible-update projection.
    pub prune_query_unjustified: u64,
    /// Children discarded because a pending query's justification frontier
    /// died and can never be revived.
    pub prune_dead_pending_query: u64,
    /// Configurations discarded by the causal-stability rule (a settled op
    /// was never placed).
    pub prune_unsettled: u64,
    /// Operations below the settled watermark (cumulative).
    pub settled: u64,
    /// Times the settled prefix was compacted out of the live window.
    pub compactions: u64,
    /// Live configurations after the last event.
    pub live_configs: u64,
    /// Maximum of `live_configs` over the whole run.
    pub peak_live_configs: u64,
    /// Operations currently retained (fed minus settled).
    pub live_window: u64,
    /// Maximum of `live_window` over the whole run.
    pub peak_live_window: u64,
}

impl MonitorStats {
    /// Projects the monitor counters onto the batch-search stats shape so
    /// the rebased `ra_search*` facades keep reporting [`SearchStats`].
    fn to_search_stats(&self) -> SearchStats {
        SearchStats {
            nodes_expanded: self.expansions,
            memo_hits: self.dedup_hits,
            memo_entries: self.live_configs,
            prune_frontier_death: self.prune_frontier_death,
            prune_query_unjustified: self.prune_query_unjustified,
            prune_dead_pending_query: self.prune_dead_pending_query,
            branches: 1,
            threads: 1,
            ..SearchStats::default()
        }
    }
}

/// Emits the streaming counters to [`ral_obs`]. Called once per run (the
/// hot path stays observability-free, like the batch walkers).
fn emit_monitor_obs(stats: &MonitorStats) {
    if !obs::enabled() {
        return;
    }
    obs::counter("monitor.ops", stats.ops);
    obs::counter("monitor.queries", stats.queries);
    obs::counter("monitor.expansions", stats.expansions);
    obs::counter("monitor.dedup_hits", stats.dedup_hits);
    obs::counter("monitor.settled_ops", stats.settled);
    obs::counter("monitor.compactions", stats.compactions);
    obs::counter("monitor.prune.unsettled", stats.prune_unsettled);
    obs::observe("monitor.live_window", stats.live_window);
    obs::observe("monitor.peak_live_window", stats.peak_live_window);
    obs::observe("monitor.live_configs", stats.live_configs);
    obs::observe("monitor.peak_live_configs", stats.peak_live_configs);
}

/// Which engine the monitor is running as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Whole history registered first, then one exact witness-tracking
    /// closure. Configuration identity matches the memoized search.
    Batch,
    /// Open-world per-event closure with causal-stability compaction.
    Streaming,
}

/// Per-operation bookkeeping, indexed by `id - meta_base`.
struct OpMeta<S: Spec> {
    /// `None` once the op is settled and no live configuration still needs
    /// the label for base-state replay.
    label: Option<S::Label>,
    /// Direct predecessors (rewritten ids). Released at settlement.
    preds: Option<BitSet>,
    is_query: bool,
    /// Settled watermark when the op arrived. Every update below it is in
    /// the op's causal past even if the caller truncated it out of
    /// `preds` (settled ⇒ seen by every replica ⇒ seen by the origin).
    vis_floor: usize,
    /// Pending queries that see this update (for incremental justification
    /// frontier upkeep when the update is placed).
    watchers: Vec<usize>,
}

/// One live configuration: a placement of a subset of the known ops,
/// closed under visibility, with the state needed to extend it.
#[derive(Clone, Debug)]
struct Config<St> {
    /// Window-relative placement mask: bit `i - base` set iff op `i` is
    /// placed. Words below the settled base are compacted away.
    mask: Vec<u64>,
    /// Number of placed ops inside the window (`base + placed == n` means
    /// the configuration is complete).
    placed: usize,
    /// Spec states after the update projection of the placement order.
    frontier: Vec<St>,
    /// Streaming: states after replaying the settled placement-order
    /// prefix — the base every *future* query's justification starts from.
    qbase: Vec<St>,
    /// Streaming: placed updates not yet absorbed into `qbase`, in
    /// placement order (absolute ids).
    rem: Vec<usize>,
    /// Justification frontiers of pending queries, ascending by query id.
    /// Batch mode stores only *started* queries (some visible update
    /// placed), matching the memoized search; streaming mode registers
    /// every pending query at arrival.
    qfronts: Vec<(usize, Vec<St>)>,
    /// Batch mode: the placement order, for witness extraction. Dedup
    /// merging keeps the lexicographically smallest, so the batch closure
    /// returns exactly the witness the depth-first search would.
    order: Vec<usize>,
    /// Canonical key (see the `fold_*` helpers).
    key: u64,
}

/// Why a candidate placement was rejected.
enum Prune {
    FrontierDeath,
    QueryUnjustified,
    DeadPendingQuery,
}

/// Default cap on live configurations in streaming mode before the monitor
/// declares [`Verdict::Exhausted`].
const DEFAULT_MAX_LIVE_CONFIGS: usize = 1 << 14;

/// Expansion cap for the batch closure before `ra_search` falls back to
/// the depth-first memoized engine.
const BATCH_EXPANSIONS: u64 = 1 << 16;

/// Live-configuration cap for the batch closure before fallback.
const BATCH_CONFIGS: usize = 1 << 16;

/// The incremental RA-linearizability engine.
///
/// Construct with [`Monitor::new_streaming`] and feed events with
/// [`Monitor::advance_op`] / [`Monitor::observe_frontier`], or use the
/// batch entry point [`try_search_batch`]. Histories with query-update
/// operations must be rewritten first — [`MonitorFeed`] does this
/// incrementally for live streams.
///
/// # Examples
///
/// ```
/// use ral_core::bitset::BitSet;
/// use ral_core::ids::ReplicaId;
/// use ral_core::label::{Kind, SpecLabel};
/// use ral_core::ralin::monitor::{Monitor, Verdict};
/// use ral_core::spec::Spec;
///
/// #[derive(Clone, Debug, PartialEq)]
/// enum L {
///     Inc,
///     Read(i64),
/// }
/// impl SpecLabel for L {
///     fn kind(&self) -> Kind {
///         match self {
///             L::Inc => Kind::Update,
///             L::Read(_) => Kind::Query,
///         }
///     }
/// }
/// struct Ctr;
/// impl Spec for Ctr {
///     type Label = L;
///     type State = i64;
///     fn initial(&self) -> i64 {
///         0
///     }
///     fn step(&self, s: &i64, l: &L) -> Vec<i64> {
///         match l {
///             L::Inc => vec![s + 1],
///             L::Read(k) if k == s => vec![*s],
///             L::Read(_) => vec![],
///         }
///     }
/// }
///
/// let mut m = Monitor::new_streaming(Ctr, 2);
/// assert_eq!(m.advance_op(L::Inc, BitSet::new()), Verdict::Ok);
/// let seen: BitSet = [0].into_iter().collect();
/// assert_eq!(m.advance_op(L::Read(1), seen), Verdict::Ok);
/// // Both replicas saw both ops: the prefix settles and compacts.
/// m.observe_frontier(ReplicaId(0), 2);
/// assert_eq!(m.observe_frontier(ReplicaId(1), 2), Verdict::Ok);
/// assert_eq!(m.settled(), 2);
/// ```
pub struct Monitor<S: Spec> {
    spec: S,
    mode: Mode,
    /// Operations fed so far (ids are dense `0..n`).
    n: usize,
    /// 64-aligned start of the live window; mask words below it are
    /// compacted away. `base <= watermark`.
    base: usize,
    /// Settled watermark: minimum replica seen-frontier; every op below it
    /// is placed in every live configuration.
    watermark: usize,
    /// First op id whose metadata is still retained.
    meta_base: usize,
    meta: Vec<OpMeta<S>>,
    /// Per-replica seen-frontiers (first unseen op id), monotone.
    frontiers: Vec<usize>,
    configs: Vec<Config<S::State>>,
    /// Canonical key → indices into `configs`. Point lookups only, never
    /// iterated, so it cannot leak iteration nondeterminism.
    index: HashMap<u64, Vec<usize>>,
    verdict: Verdict,
    max_live_configs: usize,
    stats: MonitorStats,
}

/// Bits `lo..hi` of `mask` are all set.
fn range_all_set(mask: &[u64], lo: usize, hi: usize) -> bool {
    (lo..hi).all(|b| mask[b / 64] & (1 << (b % 64)) != 0)
}

/// Every predecessor at or above the window base is placed in `mask`.
/// Predecessors below the base are settled, hence placed everywhere.
fn preds_placed(preds: &BitSet, mask: &[u64], base_w: usize) -> bool {
    let blocks = preds.blocks();
    for (j, &w) in blocks.iter().enumerate().skip(base_w) {
        if w & !mask.get(j - base_w).copied().unwrap_or(0) != 0 {
            return false;
        }
    }
    true
}

/// Mode-aware configuration equality (the collision check behind the
/// canonical key). In streaming mode `frontier` is derived from
/// `qbase ⊕ rem` and needs no comparison of its own.
fn configs_equal<St: PartialEq>(batch: bool, a: &Config<St>, b: &Config<St>) -> bool {
    if a.mask != b.mask {
        return false;
    }
    if batch {
        if !states_set_eq(&a.frontier, &b.frontier) {
            return false;
        }
    } else if a.rem != b.rem || !states_set_eq(&a.qbase, &b.qbase) {
        return false;
    }
    a.qfronts.len() == b.qfronts.len()
        && a.qfronts
            .iter()
            .zip(&b.qfronts)
            .all(|(x, y)| x.0 == y.0 && states_set_eq(&x.1, &y.1))
}

impl<S: Spec> Monitor<S> {
    fn new(spec: S, mode: Mode, n_replicas: usize) -> Self {
        let mut m = Monitor {
            spec,
            mode,
            n: 0,
            base: 0,
            watermark: 0,
            meta_base: 0,
            meta: Vec::new(),
            frontiers: vec![0; n_replicas],
            configs: Vec::new(),
            index: HashMap::new(),
            verdict: Verdict::Ok,
            max_live_configs: DEFAULT_MAX_LIVE_CONFIGS,
            stats: MonitorStats::default(),
        };
        if mode == Mode::Streaming {
            let mut root = Config {
                mask: Vec::new(),
                placed: 0,
                frontier: vec![m.spec.initial()],
                qbase: vec![m.spec.initial()],
                rem: Vec::new(),
                qfronts: Vec::new(),
                order: Vec::new(),
                key: 0,
            };
            root.key = m.config_key(&root);
            m.index.entry(root.key).or_default().push(0);
            m.configs.push(root);
            m.stats.live_configs = 1;
            m.stats.peak_live_configs = 1;
        }
        m
    }

    /// Creates a streaming monitor over `n_replicas` replicas. The empty
    /// stream is trivially linearizable, so the initial verdict is
    /// [`Verdict::Ok`].
    pub fn new_streaming(spec: S, n_replicas: usize) -> Self {
        Self::new(spec, Mode::Streaming, n_replicas)
    }

    /// Overrides the live-configuration cap past which the monitor stops
    /// tracking with [`Verdict::Exhausted`].
    pub fn with_max_live_configs(mut self, cap: usize) -> Self {
        self.max_live_configs = cap.max(1);
        self
    }

    /// Operations fed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no operation has been fed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The settled watermark: ops below it are in every future op's causal
    /// past and have been committed to every live configuration.
    pub fn settled(&self) -> usize {
        self.watermark
    }

    /// Operations currently retained (fed minus settled).
    pub fn live_window(&self) -> usize {
        self.n - self.watermark
    }

    /// Live configurations currently tracked.
    pub fn live_configs(&self) -> usize {
        self.configs.len()
    }

    /// The current verdict (see [`Verdict`] for prefix semantics).
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// Emits the run's counters to [`ral_obs`] (once, typically at end of
    /// stream — the per-event path is observability-free).
    pub fn emit_obs(&self) {
        emit_monitor_obs(&self.stats);
    }

    /// Feeds one operation and returns the refreshed verdict.
    ///
    /// `preds` are the op's visible predecessors as *rewritten* ids (use
    /// [`MonitorFeed`] to map an original-label stream). Predecessors
    /// below the settled watermark may be omitted — they are implied,
    /// since a settled op has been seen by every replica. Ids must be fed
    /// densely in order: this call assigns id [`Monitor::len`].
    pub fn advance_op(&mut self, label: S::Label, preds: BitSet) -> Verdict {
        let id = self.n;
        self.n += 1;
        debug_assert!(
            preds.max().is_none_or(|m| m < id),
            "predecessors must be earlier ops"
        );
        let is_query = label.is_query();
        self.stats.ops += 1;
        if is_query {
            self.stats.queries += 1;
        }
        if self.verdict.is_sticky() {
            // Terminal: keep id accounting for feeds, drop all tracking.
            return self.verdict;
        }
        if is_query {
            // Register as a watcher of every visible unsettled update.
            let meta_base = self.meta_base;
            let blocks = preds.blocks();
            for (j, &word) in blocks.iter().enumerate().skip(self.base / 64) {
                let mut bits = word;
                while bits != 0 {
                    let u = j * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if u >= self.base && !self.meta[u - meta_base].is_query {
                        self.meta[u - meta_base].watchers.push(id);
                    }
                }
            }
        }
        self.meta.push(OpMeta {
            label: Some(label),
            preds: Some(preds),
            is_query,
            vis_floor: self.watermark,
            watchers: Vec::new(),
        });
        self.stats.live_window = (self.n - self.watermark) as u64;
        self.stats.peak_live_window = self.stats.peak_live_window.max(self.stats.live_window);
        if self.mode == Mode::Batch {
            return self.verdict;
        }
        self.grow_masks();
        if is_query && !self.stream_register_query(id) {
            return self.verdict; // Violated: the query is dead in every config.
        }
        self.stream_closure(id);
        self.refresh_verdict();
        self.stats.live_configs = self.configs.len() as u64;
        self.stats.peak_live_configs = self.stats.peak_live_configs.max(self.stats.live_configs);
        self.verdict
    }

    /// Feeds one replica seen-frontier observation (`first_unseen` is the
    /// first rewritten op id the replica has *not* seen) and returns the
    /// refreshed verdict. Advancing the minimum frontier settles ops and
    /// compacts the retained window.
    pub fn observe_frontier(&mut self, replica: ReplicaId, first_unseen: usize) -> Verdict {
        self.stats.frontier_observations += 1;
        if self.mode == Mode::Batch || self.verdict.is_sticky() {
            return self.verdict;
        }
        let r = replica.0 as usize;
        assert!(r < self.frontiers.len(), "replica out of range");
        debug_assert!(first_unseen <= self.n, "cannot have seen unfed ops");
        let f = first_unseen.min(self.n);
        if f > self.frontiers[r] {
            self.frontiers[r] = f;
            let wm = self.frontiers.iter().copied().min().unwrap_or(0);
            if wm > self.watermark {
                self.settle(wm);
            }
        }
        self.verdict
    }

    /// Widens every live mask to the current window (trailing zero words
    /// do not participate in keys, so no rekeying is needed).
    fn grow_masks(&mut self) {
        let words = (self.n - self.base).div_ceil(64);
        if self.configs.first().is_some_and(|c| c.mask.len() < words) {
            for c in &mut self.configs {
                c.mask.resize(words, 0);
            }
        }
    }

    /// Installs the justification frontier of freshly-arrived query `q` in
    /// every live configuration (replaying the visible part of each
    /// configuration's unabsorbed placement suffix on top of its base
    /// states), pruning configurations where it is already dead. Returns
    /// `false` if no configuration survives.
    fn stream_register_query(&mut self, q: usize) -> bool {
        let vis_floor = self.meta[q - self.meta_base].vis_floor;
        let preds = self.meta[q - self.meta_base]
            .preds
            .take()
            .expect("preds retained for live ops");
        let label_missing = "label retained inside the live window";
        let mut kept = Vec::with_capacity(self.configs.len());
        let mut pruned = 0u64;
        for mut c in std::mem::take(&mut self.configs) {
            let mut states = c.qbase.clone();
            let mut dead = false;
            for &u in &c.rem {
                if u < vis_floor || preds.contains(u) {
                    let lbl = self.meta[u - self.meta_base]
                        .label
                        .as_ref()
                        .expect(label_missing);
                    states = advance_states(&self.spec, &states, lbl);
                    if states.is_empty() {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                pruned += 1;
                continue;
            }
            c.qfronts.push((q, states));
            kept.push(c);
        }
        self.meta[q - self.meta_base].preds = Some(preds);
        self.stats.prune_dead_pending_query += pruned;
        self.configs = kept;
        self.rebuild_index();
        if self.configs.is_empty() {
            self.fail(Verdict::Violated);
            return false;
        }
        true
    }

    /// Restores eager closure after op `seed` arrives: tries `seed` in
    /// every live configuration, then closes each new configuration over
    /// every known op. (Feasibility of a placement is static, so old
    /// configurations never gain new extensions from old ops.)
    fn stream_closure(&mut self, seed: usize) {
        let existing = self.configs.len();
        for parent in 0..existing {
            self.try_extend(parent, seed);
        }
        let mut idx = existing;
        while idx < self.configs.len() {
            if self.configs.len() > self.max_live_configs {
                self.fail(Verdict::Exhausted);
                return;
            }
            self.stats.expansions += 1;
            for x in self.base..self.n {
                self.try_extend(idx, x);
            }
            idx += 1;
        }
        if self.configs.len() > self.max_live_configs {
            self.fail(Verdict::Exhausted);
        }
    }

    /// Attempts to place `x` on top of configuration `parent`, inserting
    /// the child (deduplicated) if the placement is feasible and live.
    fn try_extend(&mut self, parent: usize, x: usize) {
        let base_w = self.base / 64;
        let bit = x - self.base;
        {
            let c = &self.configs[parent];
            if c.mask[bit / 64] & (1 << (bit % 64)) != 0 {
                return; // already placed
            }
            let preds = self.meta[x - self.meta_base]
                .preds
                .as_ref()
                .expect("preds retained for unplaced ops");
            if !preds_placed(preds, &c.mask, base_w) {
                return; // not yet enabled
            }
        }
        match self.make_child(parent, x) {
            Ok(child) => self.insert_or_merge(child),
            Err(Prune::FrontierDeath) => self.stats.prune_frontier_death += 1,
            Err(Prune::QueryUnjustified) => self.stats.prune_query_unjustified += 1,
            Err(Prune::DeadPendingQuery) => self.stats.prune_dead_pending_query += 1,
        }
    }

    /// Builds the child configuration `parent + x`, or the prune cause.
    fn make_child(&self, parent: usize, x: usize) -> Result<Config<S::State>, Prune> {
        let m = &self.meta[x - self.meta_base];
        let label = m.label.as_ref().expect("label retained");
        let p = &self.configs[parent];
        let batch = self.mode == Mode::Batch;
        let bit = x - self.base;
        let mut mask = p.mask.clone();
        mask[bit / 64] |= 1 << (bit % 64);
        let placed = p.placed + 1;
        let mut child = if m.is_query {
            let justified = match p.qfronts.binary_search_by_key(&x, |e| e.0) {
                Ok(i) => states_admit(&self.spec, &p.qfronts[i].1, label),
                Err(_) => {
                    debug_assert!(batch, "streaming query frontiers exist from arrival");
                    states_admit(&self.spec, &[self.spec.initial()], label)
                }
            };
            if !justified {
                return Err(Prune::QueryUnjustified);
            }
            Config {
                mask,
                placed,
                frontier: p.frontier.clone(),
                qbase: p.qbase.clone(),
                rem: p.rem.clone(),
                qfronts: p.qfronts.iter().filter(|e| e.0 != x).cloned().collect(),
                order: Vec::new(),
                key: 0,
            }
        } else {
            let frontier = advance_states(&self.spec, &p.frontier, label);
            if frontier.is_empty() {
                return Err(Prune::FrontierDeath);
            }
            let mut qfronts = p.qfronts.clone();
            for &q in &m.watchers {
                if q < self.base {
                    continue; // settled, hence placed everywhere
                }
                let qbit = q - self.base;
                if mask[qbit / 64] & (1 << (qbit % 64)) != 0 {
                    continue; // already placed in this configuration
                }
                match qfronts.binary_search_by_key(&q, |e| e.0) {
                    Ok(i) => {
                        let next = advance_states(&self.spec, &qfronts[i].1, label);
                        if next.is_empty() {
                            return Err(Prune::DeadPendingQuery);
                        }
                        qfronts[i].1 = next;
                    }
                    Err(i) => {
                        debug_assert!(batch, "streaming query frontiers exist from arrival");
                        let next = advance_states(&self.spec, &[self.spec.initial()], label);
                        if next.is_empty() {
                            return Err(Prune::DeadPendingQuery);
                        }
                        qfronts.insert(i, (q, next));
                    }
                }
            }
            let mut rem = p.rem.clone();
            if !batch {
                rem.push(x);
            }
            Config {
                mask,
                placed,
                frontier,
                qbase: p.qbase.clone(),
                rem,
                qfronts,
                order: Vec::new(),
                key: 0,
            }
        };
        if batch {
            let mut order = p.order.clone();
            order.push(x);
            child.order = order;
        }
        child.key = self.config_key(&child);
        Ok(child)
    }

    /// Canonical key of a configuration. Trailing zero mask words are
    /// skipped so streaming windows can grow without rekeying.
    fn config_key(&self, c: &Config<S::State>) -> u64 {
        let mut key = CONFIG_KEY_SEED;
        let tail = c.mask.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        for &w in &c.mask[..tail] {
            key = fold_mask_word(key, w);
        }
        match self.mode {
            Mode::Batch => {
                key = fold_frontier_hash(key, states_canonical_hash(&self.spec, &c.frontier));
            }
            Mode::Streaming => {
                key = fold_frontier_hash(key, states_canonical_hash(&self.spec, &c.qbase));
                for &u in &c.rem {
                    key = mix64(key ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
            }
        }
        for (q, states) in &c.qfronts {
            key = fold_query_frontier(key, *q, states_canonical_hash(&self.spec, states));
        }
        key
    }

    /// Inserts `child` unless an equal configuration is already live; in
    /// batch mode a merge keeps the lexicographically smaller placement
    /// order (the witness invariant).
    fn insert_or_merge(&mut self, child: Config<S::State>) {
        let batch = self.mode == Mode::Batch;
        let mut merged = None;
        if let Some(bucket) = self.index.get(&child.key) {
            for &i in bucket {
                if configs_equal(batch, &self.configs[i], &child) {
                    merged = Some(i);
                    break;
                }
            }
        }
        match merged {
            Some(i) => {
                self.stats.dedup_hits += 1;
                debug_assert!(states_set_eq(&self.configs[i].frontier, &child.frontier));
                if batch && child.order < self.configs[i].order {
                    self.configs[i].order = child.order;
                }
            }
            None => {
                let i = self.configs.len();
                self.index.entry(child.key).or_default().push(i);
                self.configs.push(child);
            }
        }
    }

    /// Applies the causal-stability rule after the watermark advances to
    /// `wm`: prunes configurations that never placed a newly settled op,
    /// absorbs settled placement prefixes into base states, and compacts
    /// mask words and metadata out of the live window.
    fn settle(&mut self, wm: usize) {
        debug_assert!(wm > self.watermark && wm <= self.n);
        let lo = self.watermark - self.base;
        let hi = wm - self.base;
        self.watermark = wm;
        self.stats.settled = wm as u64;
        self.stats.live_window = (self.n - wm) as u64;
        let mut kept = Vec::with_capacity(self.configs.len());
        let mut pruned = 0u64;
        for c in std::mem::take(&mut self.configs) {
            if range_all_set(&c.mask, lo, hi) {
                kept.push(c);
            } else {
                pruned += 1;
            }
        }
        self.stats.prune_unsettled += pruned;
        self.configs = kept;
        if self.configs.is_empty() {
            self.fail(Verdict::Violated);
            return;
        }
        // Absorb each configuration's settled placement prefix into its
        // base states; stragglers (settled ops placed after a still-live
        // one) stay in `rem` and are bounded by the concurrent window.
        let label_missing = "label retained for unabsorbed placements";
        for i in 0..self.configs.len() {
            let k = self.configs[i].rem.iter().take_while(|&&u| u < wm).count();
            for j in 0..k {
                let u = self.configs[i].rem[j];
                let lbl = self.meta[u - self.meta_base]
                    .label
                    .as_ref()
                    .expect(label_missing);
                let next = advance_states(&self.spec, &self.configs[i].qbase, lbl);
                debug_assert!(!next.is_empty(), "absorbed prefix replays a live frontier");
                self.configs[i].qbase = next;
            }
            if k > 0 {
                self.configs[i].rem.drain(..k);
            }
        }
        // Compact whole settled words out of the window.
        let new_base = wm & !63;
        if new_base > self.base {
            let k_words = (new_base - self.base) / 64;
            for c in &mut self.configs {
                debug_assert!(c.mask[..k_words].iter().all(|&w| w == !0u64));
                c.mask.drain(..k_words);
                c.placed -= k_words * 64;
            }
            self.base = new_base;
            self.stats.compactions += 1;
            let min_rem = self
                .configs
                .iter()
                .flat_map(|c| c.rem.iter().copied())
                .min()
                .unwrap_or(usize::MAX);
            let keep_from = new_base.min(min_rem);
            if keep_from > self.meta_base {
                self.meta.drain(..keep_from - self.meta_base);
                self.meta_base = keep_from;
            }
        }
        // Settled ops are placed everywhere: their predecessor sets and
        // watcher lists can never be consulted again.
        for id in self.meta_base.max(self.base.min(wm))..wm {
            if id < self.meta_base {
                continue;
            }
            let m = &mut self.meta[id - self.meta_base];
            m.preds = None;
            m.watchers = Vec::new();
        }
        self.rebuild_index();
        self.refresh_verdict();
        self.stats.live_configs = self.configs.len() as u64;
    }

    /// Recomputes every key and rebuilds the dedup index (needed whenever
    /// masks shift, base states absorb, or query frontiers are installed).
    fn rebuild_index(&mut self) {
        self.index.clear();
        for i in 0..self.configs.len() {
            let key = self.config_key(&self.configs[i]);
            self.configs[i].key = key;
            self.index.entry(key).or_default().push(i);
        }
    }

    fn refresh_verdict(&mut self) {
        if self.verdict.is_sticky() {
            return;
        }
        self.verdict = if self.configs.is_empty() {
            Verdict::Violated
        } else if self.configs.iter().any(|c| self.base + c.placed == self.n) {
            Verdict::Ok
        } else {
            Verdict::Deferred
        };
    }

    /// Enters a sticky terminal verdict and releases tracking state.
    fn fail(&mut self, v: Verdict) {
        debug_assert!(v.is_sticky());
        self.verdict = v;
        self.configs = Vec::new();
        self.index = HashMap::new();
        self.stats.live_configs = 0;
    }

    /// Batch mode: exact level-ordered closure over the configuration DAG.
    /// Returns `None` if a cap is exceeded (caller falls back to the
    /// depth-first engine). Level k holds exactly the configurations with
    /// k placements, so every parent's minimal placement order is final
    /// before its children are expanded — the merge in
    /// [`Monitor::insert_or_merge`] therefore yields the global
    /// lexicographic minimum, matching the DFS witness.
    fn decide(&mut self, max_expansions: u64, max_configs: usize) -> Option<SearchOutcome> {
        debug_assert!(self.mode == Mode::Batch && self.configs.is_empty());
        let mut root = Config {
            mask: vec![0; self.n.div_ceil(64)],
            placed: 0,
            frontier: vec![self.spec.initial()],
            qbase: Vec::new(),
            rem: Vec::new(),
            qfronts: Vec::new(),
            order: Vec::new(),
            key: 0,
        };
        root.key = self.config_key(&root);
        self.index.entry(root.key).or_default().push(0);
        self.configs.push(root);
        let mut lo = 0;
        let mut hi = 1;
        while lo < hi {
            for parent in lo..hi {
                self.stats.expansions += 1;
                if self.stats.expansions > max_expansions {
                    return None;
                }
                for x in 0..self.n {
                    self.try_extend(parent, x);
                }
                if self.configs.len() > max_configs {
                    return None;
                }
            }
            lo = hi;
            hi = self.configs.len();
        }
        self.stats.live_configs = self.configs.len() as u64;
        self.stats.peak_live_configs = self.stats.live_configs;
        let best = self
            .configs
            .iter()
            .filter(|c| c.placed == self.n)
            .map(|c| &c.order)
            .min();
        Some(match best {
            Some(order) => SearchOutcome::Linearizable(Linearization {
                order: order.clone(),
            }),
            None => SearchOutcome::NotLinearizable,
        })
    }
}

/// Decides a complete (already rewritten) history with the monitor's batch
/// closure. Returns `None` when `max_expansions` or `max_configs` is
/// exceeded — the search is exact otherwise, and a `Linearizable` outcome
/// carries the same lexicographically-least witness the memoized
/// depth-first search returns.
pub fn try_search_batch<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    max_expansions: u64,
    max_configs: usize,
) -> Option<(SearchOutcome, MonitorStats)> {
    let mut m: Monitor<&S> = Monitor::new(spec, Mode::Batch, 0);
    for i in 0..h.len() {
        m.advance_op(h.label(i).clone(), h.preds(i).clone());
    }
    let out = m.decide(max_expansions, max_configs)?;
    #[cfg(debug_assertions)]
    if let SearchOutcome::Linearizable(lin) = &out {
        debug_assert!(
            check_linearization(h, spec, &lin.order).is_ok(),
            "batch monitor produced an invalid witness"
        );
    }
    Some((out, m.stats))
}

/// The batch engine behind the `ra_search*` facades: monitor closure
/// first, depth-first memoized fallback (with the caller's full `budget`
/// and `threads`) when the closure overruns its caps. Outcomes on the
/// fallback path are byte-identical to the pre-monitor engine.
pub(crate) fn search_batch_with_stats<S>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
    threads: usize,
) -> (SearchOutcome, SearchStats)
where
    S: Spec + Sync,
    S::Label: Sync,
{
    if budget == 0 {
        return (SearchOutcome::BudgetExhausted, SearchStats::default());
    }
    let t0 = obs::wallclock::now_nanos();
    match try_search_batch(h, spec, budget.min(BATCH_EXPANSIONS), BATCH_CONFIGS) {
        Some((out, mstats)) => {
            let mut stats = mstats.to_search_stats();
            let dt = obs::wallclock::now_nanos().saturating_sub(t0);
            stats.busy_nanos = dt;
            stats.elapsed_nanos = dt;
            memo::emit_obs(&stats);
            (out, stats)
        }
        None => {
            if obs::enabled() {
                obs::counter("monitor.batch_fallback", 1);
            }
            memo::search_with_threads_stats(h, spec, budget, threads)
        }
    }
}

/// Incremental mirror of [`crate::history::rewrite_history`]: feeds a
/// stream of *original* labels (queries, updates, or query-updates) to a
/// [`Monitor`], splitting query-updates on the fly and mapping visibility
/// and seen-frontiers into the rewritten id space.
///
/// Use [`MonitorFeed::feed_op`] for each invocation (with its visible
/// predecessors as original ids) and [`MonitorFeed::observe_frontier`]
/// whenever a replica's seen-frontier advances (e.g. after mailbox
/// drains). [`monitor_history`] replays a finished [`History`] through a
/// feed, synthesizing the frontier observations from its visibility sets.
pub struct MonitorFeed<In, R: Rewrite<In>, S: Spec<Label = R::Out>> {
    rw: R,
    monitor: Monitor<S>,
    parts: Vec<Parts>,
    /// Original ids below this are wholly settled; their predecessors are
    /// implied and skipped when building rewritten visibility sets, which
    /// keeps each feed O(concurrent window) instead of O(history).
    orig_floor: usize,
    _in: PhantomData<fn(&In)>,
}

impl<In, R: Rewrite<In>, S: Spec<Label = R::Out>> MonitorFeed<In, R, S> {
    /// Creates a feed over a fresh streaming monitor.
    pub fn new(rw: R, spec: S, n_replicas: usize) -> Self {
        MonitorFeed {
            rw,
            monitor: Monitor::new_streaming(spec, n_replicas),
            parts: Vec::new(),
            orig_floor: 0,
            _in: PhantomData,
        }
    }

    /// The underlying monitor.
    pub fn monitor(&self) -> &Monitor<S> {
        &self.monitor
    }

    /// The current verdict.
    pub fn verdict(&self) -> Verdict {
        self.monitor.verdict()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MonitorStats {
        self.monitor.stats()
    }

    /// Original operations fed so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if nothing has been fed yet.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Feeds one original-label operation with its visible predecessors
    /// (original ids, e.g. the origin replica's seen-set at invocation).
    pub fn feed_op(&mut self, label: &In, preds: &BitSet) -> Verdict {
        let wm = self.monitor.settled();
        while self.orig_floor < self.parts.len() && self.parts[self.orig_floor].update() < wm {
            self.orig_floor += 1;
        }
        // Map visibility into rewritten space, skipping the settled prefix
        // (implied by the monitor's vis_floor rule).
        let mut pred_updates = BitSet::new();
        let blocks = preds.blocks();
        let floor_w = self.orig_floor / 64;
        for (j, &word) in blocks.iter().enumerate().skip(floor_w) {
            let mut bits = word;
            if j == floor_w && self.orig_floor % 64 != 0 {
                bits &= !0u64 << (self.orig_floor % 64);
            }
            while bits != 0 {
                let p = j * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                pred_updates.insert(self.parts[p].update());
            }
        }
        match self.rw.rewrite(label) {
            Rewritten::One(l) => {
                let id = self.monitor.len();
                let v = self.monitor.advance_op(l, pred_updates);
                self.parts.push(Parts::One(id));
                v
            }
            Rewritten::Split { query, update } => {
                let q = self.monitor.len();
                self.monitor.advance_op(query, pred_updates);
                let mut qp = BitSet::new();
                qp.insert(q);
                let v = self.monitor.advance_op(update, qp);
                self.parts.push(Parts::Split {
                    query: q,
                    update: q + 1,
                });
                v
            }
        }
    }

    /// Feeds one replica seen-frontier observation in *original* id space
    /// (`first_unseen` = the first original op the replica has not seen).
    pub fn observe_frontier(&mut self, replica: ReplicaId, first_unseen: usize) -> Verdict {
        let mapped = if first_unseen == 0 {
            0
        } else {
            debug_assert!(first_unseen <= self.parts.len());
            self.parts[first_unseen - 1].update() + 1
        };
        self.monitor.observe_frontier(replica, mapped)
    }
}

/// Streams a finished history through a [`MonitorFeed`], synthesizing each
/// replica's seen-frontier from the history's visibility sets (an op's
/// predecessor set *is* its origin's seen-set at invocation), and returns
/// the end-of-stream verdict. At end of stream [`Verdict::Ok`] means
/// RA-linearizable and [`Verdict::Deferred`] / [`Verdict::Violated`] mean
/// refuted — the cross-check suites hold this equal to `ra_search`.
pub fn monitor_history<In, R, S>(h: &History<In>, rw: &R, spec: S) -> (Verdict, MonitorStats)
where
    R: Rewrite<In>,
    S: Spec<Label = R::Out>,
{
    let n_replicas = h
        .iter()
        .map(|(_, op)| op.replica.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut feed: MonitorFeed<In, &R, S> = MonitorFeed::new(rw, spec, n_replicas);
    let mut frontiers = vec![0usize; n_replicas];
    let mut verdict = feed.verdict();
    for i in 0..h.len() {
        feed.feed_op(h.label(i), h.preds(i));
        let r = h.op(i).replica;
        let f = &mut frontiers[r.0 as usize];
        while *f < h.len() && (*f == i || h.preds(i).contains(*f)) {
            *f += 1;
        }
        verdict = feed.observe_frontier(r, *f);
    }
    feed.monitor().emit_obs();
    (verdict, feed.monitor().stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::label::{Identity, Kind};

    struct CtrSpec;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Inc,
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Inc => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for CtrSpec {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 1],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    /// A flag that can be set exactly once: concurrent duplicate sets can
    /// never linearize.
    struct OnceSpec;

    #[derive(Clone, Debug, PartialEq)]
    enum O {
        Set,
        IsSet(bool),
    }

    impl SpecLabel for O {
        fn kind(&self) -> Kind {
            match self {
                O::Set => Kind::Update,
                O::IsSet(_) => Kind::Query,
            }
        }
    }

    impl Spec for OnceSpec {
        type Label = O;
        type State = bool;
        fn initial(&self) -> bool {
            false
        }
        fn step(&self, s: &bool, l: &O) -> Vec<bool> {
            match l {
                O::Set if !s => vec![true],
                O::Set => vec![],
                O::IsSet(k) if k == s => vec![*s],
                O::IsSet(_) => vec![],
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn bits<const N: usize>(ids: [usize; N]) -> BitSet {
        ids.into_iter().collect()
    }

    #[test]
    fn empty_stream_is_ok() {
        let m = Monitor::new_streaming(CtrSpec, 2);
        assert_eq!(m.verdict(), Verdict::Ok);
        assert!(m.is_empty());
    }

    #[test]
    fn ordered_counter_stream_stays_ok_and_settles() {
        let mut m = Monitor::new_streaming(CtrSpec, 2);
        assert_eq!(m.advance_op(L::Inc, BitSet::new()), Verdict::Ok);
        assert_eq!(m.advance_op(L::Read(1), bits([0])), Verdict::Ok);
        m.observe_frontier(r(0), 2);
        assert_eq!(m.observe_frontier(r(1), 2), Verdict::Ok);
        assert_eq!(m.settled(), 2);
        assert_eq!(m.live_window(), 0);
        assert_eq!(m.live_configs(), 1);
    }

    #[test]
    fn concurrent_once_sets_defer_then_violate_at_settlement() {
        let mut m = Monitor::new_streaming(OnceSpec, 2);
        assert_eq!(m.advance_op(O::Set, BitSet::new()), Verdict::Ok);
        // A concurrent second Set: no configuration can place both, so no
        // complete configuration exists, but the prefix is still repairable
        // in the open world.
        assert_eq!(m.advance_op(O::Set, BitSet::new()), Verdict::Deferred);
        // Once both replicas have seen both sets, the unplaceable one
        // settles: every live configuration misses a settled op.
        m.observe_frontier(r(0), 2);
        assert_eq!(m.observe_frontier(r(1), 2), Verdict::Violated);
        assert!(m.verdict().is_sticky());
        // Sticky: further ops do not resurrect it.
        assert_eq!(m.advance_op(O::IsSet(true), bits([0])), Verdict::Violated);
        assert!(m.stats().prune_unsettled > 0);
    }

    #[test]
    fn unjustified_query_violates_at_settlement() {
        let mut m = Monitor::new_streaming(CtrSpec, 1);
        assert_eq!(m.advance_op(L::Inc, BitSet::new()), Verdict::Ok);
        // A read of 2 that saw exactly one increment can never be
        // justified, so no configuration ever places it: the prefix hangs
        // at Deferred until the query settles, which empties the live set.
        assert_eq!(m.advance_op(L::Read(2), bits([0])), Verdict::Deferred);
        assert_eq!(m.observe_frontier(r(0), 2), Verdict::Violated);
        assert!(m.stats().prune_query_unjustified > 0);
    }

    #[test]
    fn long_chain_compacts_to_constant_state() {
        let mut m = Monitor::new_streaming(CtrSpec, 2);
        let mut preds = BitSet::new();
        for i in 0..1000usize {
            assert_eq!(m.advance_op(L::Inc, preds.clone()), Verdict::Ok, "op {i}");
            preds.insert(i);
            m.observe_frontier(r(0), i + 1);
            m.observe_frontier(r(1), i + 1);
        }
        assert_eq!(m.settled(), 1000);
        assert_eq!(m.live_window(), 0);
        assert!(m.stats().compactions >= 10);
        // Retained state is O(window), not O(history).
        assert!(m.meta.len() <= 64, "meta retained: {}", m.meta.len());
        assert!(m.stats().peak_live_configs <= 4);
        assert_eq!(m.stats().settled, 1000);
    }

    #[test]
    fn batch_closure_matches_memo_on_witnesses_and_refutations() {
        // A mix of linearizable and refuted counter histories.
        let mut histories: Vec<History<L>> = Vec::new();
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        let b = h.push(OpRecord::new(L::Inc, r(1)), []);
        h.push(OpRecord::new(L::Read(2), r(0)), [a, b]);
        histories.push(h);
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        h.push(OpRecord::new(L::Read(2), r(1)), [a]); // refuted
        histories.push(h);
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        let _b = h.push(OpRecord::new(L::Inc, r(1)), []);
        h.push(OpRecord::new(L::Read(1), r(0)), [a]);
        histories.push(h);
        histories.push(History::new());
        for h in &histories {
            let (memo_out, _) = memo::search_with_threads_stats(h, &CtrSpec, u64::MAX, 1);
            let (mon_out, _) = try_search_batch(h, &CtrSpec, u64::MAX, usize::MAX)
                .expect("uncapped closure always decides");
            assert_eq!(mon_out, memo_out, "history {h:?}");
        }
    }

    #[test]
    fn batch_caps_trigger_fallback_path() {
        let mut h = History::new();
        for i in 0..8 {
            h.push(OpRecord::new(L::Inc, r(i)), []);
        }
        assert!(try_search_batch(&h, &CtrSpec, 3, usize::MAX).is_none());
        let (out, _) = search_batch_with_stats(&h, &CtrSpec, u64::MAX, 1);
        assert!(out.is_linearizable());
    }

    #[test]
    fn streaming_replay_agrees_with_batch_search() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        let b = h.push(OpRecord::new(L::Inc, r(1)), [a]);
        h.push(OpRecord::new(L::Read(2), r(1)), [a, b]);
        let (verdict, _) = monitor_history(&h, &Identity, CtrSpec);
        assert_eq!(verdict, Verdict::Ok);

        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        h.push(OpRecord::new(L::Read(3), r(1)), [a]);
        let (verdict, _) = monitor_history(&h, &Identity, CtrSpec);
        assert!(matches!(verdict, Verdict::Deferred | Verdict::Violated));
    }

    #[test]
    fn exhaustion_is_sticky() {
        let mut m = Monitor::new_streaming(CtrSpec, 1).with_max_live_configs(2);
        for _ in 0..6 {
            m.advance_op(L::Inc, BitSet::new());
        }
        assert_eq!(m.verdict(), Verdict::Exhausted);
        assert_eq!(m.advance_op(L::Inc, BitSet::new()), Verdict::Exhausted);
        assert_eq!(m.live_configs(), 0);
    }

    #[test]
    fn replay_helpers_admit_and_refute() {
        let inc = L::Inc;
        assert!(replay_admits(&CtrSpec, [&inc, &inc], Some(&L::Read(2))));
        assert!(!replay_admits(&CtrSpec, [&inc], Some(&L::Read(2))));
        let set = O::Set;
        assert!(!replay_admits(&OnceSpec, [&set, &set], None));
    }
}
