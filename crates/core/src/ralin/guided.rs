//! Constructive linearization strategies (Sections 4.1 and 4.2).
//!
//! * **Execution-order** (Theorem 4.4): linearize operations in the order
//!   their generators executed. History indices *are* generator order, so
//!   this is the identity permutation.
//! * **Timestamp-order** (Theorem 4.6): linearize by the timestamp `ts_h(ℓ)`
//!   — the generated timestamp, or for timestamp-less operations the maximal
//!   timestamp visible to them ("virtual" timestamp) — breaking ties by
//!   generator order.
//!
//! Both orders are consistent with visibility: if `ℓ₁ ≺ ℓ₂` then `ℓ₂`'s
//! generator ran after `ℓ₁`'s, and `ts_h(ℓ₁) ≤ ts_h(ℓ₂)` because timestamps
//! grow along visibility.

use super::check::{check_linearization, Violation};
use super::{Linearization, Strategy};
use crate::history::{rewrite_history, History};
use crate::label::Rewrite;
use crate::spec::Spec;
use crate::timestamp::Ts;

/// The execution-order linearization: generator order, i.e. history index
/// order.
pub fn execution_order_of<L>(h: &History<L>) -> Vec<usize> {
    (0..h.len()).collect()
}

/// The timestamp-order linearization: sorted by `(ts_h(ℓ), generator order)`,
/// with `⊥ < Some(_)`.
pub fn timestamp_order_of<L>(h: &History<L>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..h.len()).collect();
    let keys: Vec<Option<Ts>> = (0..h.len()).map(|i| h.virtual_ts(i)).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

/// Builds the guided linearization of the given strategy and validates it
/// against Definition 3.5. The history must be query-update free.
///
/// # Errors
///
/// Returns the [`Violation`] exhibited by the constructed sequence. Note
/// that for objects that *admit* the strategy (Theorems 4.4/4.6) a violation
/// here is a real bug; for other objects it merely means this particular
/// strategy fails (see Figure 8).
pub fn check_guided<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    strategy: Strategy,
) -> Result<Linearization, Violation> {
    let order = match strategy {
        Strategy::ExecutionOrder => execution_order_of(h),
        Strategy::TimestampOrder => timestamp_order_of(h),
    };
    check_linearization(h, spec, &order)?;
    Ok(Linearization { order })
}

/// Rewrites a history with `γ` and then checks the guided linearization —
/// convenience over [`rewrite_history`] + [`check_guided`].
///
/// # Errors
///
/// Propagates the [`Violation`] from [`check_guided`].
pub fn check_rewritten<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
    strategy: Strategy,
) -> Result<Linearization, Violation>
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec,
{
    let rewritten = rewrite_history(h, rw);
    check_guided(&rewritten.history, spec, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::{Kind, SpecLabel};

    /// A last-writer-wins register specification keyed on write order.
    struct RegSpec;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Write(u32),
        Read(Option<u32>),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Write(_) => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for RegSpec {
        type Label = L;
        type State = Option<u32>;
        fn initial(&self) -> Option<u32> {
            None
        }
        fn step(&self, s: &Option<u32>, l: &L) -> Vec<Option<u32>> {
            match l {
                L::Write(v) => vec![Some(*v)],
                L::Read(v) if v == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn execution_order_is_index_order() {
        let mut h = History::new();
        h.push(OpRecord::new(L::Write(1), r(0)), []);
        h.push(OpRecord::new(L::Write(2), r(1)), []);
        h.push(OpRecord::new(L::Read(Some(2)), r(1)), [0, 1]);
        assert_eq!(execution_order_of(&h), vec![0, 1, 2]);
    }

    #[test]
    fn timestamp_order_sorts_by_virtual_ts() {
        // Generator order: w_b (ts 2), w_a (ts 1), read seeing both.
        let mut h = History::new();
        let b = h.push(OpRecord::with_ts(L::Write(20), r(1), Ts::new(2, r(1))), []);
        let a = h.push(OpRecord::with_ts(L::Write(10), r(0), Ts::new(1, r(0))), []);
        let q = h.push(OpRecord::new(L::Read(Some(20)), r(0)), [a, b]);
        // TO: a (ts1) then b (ts2) then read (virtual ts2, later gen order).
        assert_eq!(timestamp_order_of(&h), vec![a, b, q]);
    }

    #[test]
    fn lww_register_needs_timestamp_order() {
        // Two concurrent writes; the read sees both and returns the one with
        // the larger timestamp even though its generator ran first.
        let mut h = History::new();
        let b = h.push(OpRecord::with_ts(L::Write(20), r(1), Ts::new(2, r(1))), []);
        let a = h.push(OpRecord::with_ts(L::Write(10), r(0), Ts::new(1, r(0))), []);
        let q = h.push(OpRecord::new(L::Read(Some(20)), r(0)), [a, b]);
        // Execution order (b, a, read 20) makes the read see value 10: fails.
        assert!(check_guided(&h, &RegSpec, Strategy::ExecutionOrder).is_err());
        // Timestamp order (a, b, read 20) succeeds.
        let lin = check_guided(&h, &RegSpec, Strategy::TimestampOrder).unwrap();
        assert_eq!(lin.order, vec![a, b, q]);
    }

    #[test]
    fn ties_broken_by_generator_order() {
        // A write and a later read with the same (virtual) timestamp: the
        // write must come first.
        let mut h = History::new();
        let w = h.push(OpRecord::with_ts(L::Write(7), r(0), Ts::new(1, r(0))), []);
        let q = h.push(OpRecord::new(L::Read(Some(7)), r(0)), [w]);
        assert_eq!(timestamp_order_of(&h), vec![w, q]);
        assert!(check_guided(&h, &RegSpec, Strategy::TimestampOrder).is_ok());
    }
}
