//! Memoized, parallel RA-linearizability search — the default complete
//! decision procedure behind [`super::search`] / [`super::ra_search`].
//!
//! The naive search ([`super::search_brute`]) enumerates *permutations*: two
//! interleavings that place the same operations in different orders are
//! explored as unrelated branches, which is what makes it factorial. This
//! engine walks the **configuration DAG** instead. A configuration is
//!
//! 1. the *placed set* (as a bitmask) — which operations the prefix
//!    contains;
//! 2. the *specification frontier* after the prefix's update projection
//!    (condition (ii) of Definition 3.5);
//! 3. one *incremental justification frontier per pending query*: the
//!    frontier reached by running the updates visible to that query in
//!    placement order (condition (iii)). A query can only be placed once
//!    all its predecessors are, so when its turn comes this frontier has
//!    consumed exactly its visible updates — justification is a single
//!    `admits` call instead of the naive engine's per-placement re-sort
//!    and re-run.
//!
//! That triple determines everything a continuation can observe, so any
//! two prefixes reaching the same configuration have the same set of
//! completions: configurations that were fully explored and failed are
//! memoized (hash-keyed on [`Frontier::canonical_hash`], verified with
//! full state equality, so hash collisions cannot unsoundly prune) and
//! never explored twice. On commuting workloads this collapses `k!`
//! permutations of `k` concurrent operations into `2^k` placed-set nodes
//! — e.g. refuting a counter history with 16 concurrent increments takes
//! tens of thousands of nodes instead of `16! ≈ 2·10¹³`.
//!
//! The incremental query frontiers also yield a cut the naive engine
//! lacks: the moment a *pending* query's frontier dies, no completion can
//! ever justify it, and the whole branch is abandoned without waiting for
//! the query to be placed.
//!
//! # Parallelism and determinism
//!
//! The top of the DAG — one branch per operation that can be placed first
//! — is distributed over a dependency-free `std::thread` pool, controlled
//! by the `RAL_CHECK_THREADS` environment variable (unset or `0`: one
//! thread for small histories, all available cores otherwise; `1` forces
//! sequential). Each branch runs an independent sequential walk with its
//! own memo table and its own deterministic share of the node budget, and
//! the branch results are combined in branch order, so the outcome — and,
//! for witnesses, the returned order — is **bit-identical for every
//! thread count**, including 1. Whenever no branch exhausts its budget
//! share (in particular for unbudgeted searches), the returned witness is
//! the lexicographically minimal valid linearization; under a binding
//! budget an earlier branch may run out before reaching its smaller
//! witness, in which case the (still deterministic) witness of a later
//! branch is reported. Once some branch finds a witness, branches with
//! *higher* first operations (whose witnesses could not be smaller) are
//! cancelled; lower branches always run to completion, preserving
//! determinism.
//!
//! # Budget semantics
//!
//! `budget` bounds the total number of *expanded* configurations — memo
//! hits, infeasible placements, and completed orders are free: 1 for the
//! root, the rest split evenly across the top-level branches (earlier
//! branches receive the remainder), so exhaustion is as deterministic as
//! everything else. A found witness is reported even if other branches
//! exhausted their share. This differs from the naive engine's single
//! global DFS counter — compare node budgets across engines only
//! qualitatively.

use super::check::check_linearization;
use super::{monitor, Linearization, SearchOutcome};
use crate::history::History;
use crate::label::SpecLabel;
use crate::spec::{Frontier, Spec};
use ral_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Histories smaller than this stay sequential under automatic thread
/// selection: the search finishes faster than threads spawn.
const PARALLEL_MIN_OPS: usize = 16;

/// Hard cap on memo entries per branch. Beyond it the walk keeps running
/// (still sound, still complete) but stops recording new failed
/// configurations, bounding memory on adversarial inputs.
const MEMO_CAP: usize = 1 << 20;

/// How often (in explored nodes) a branch polls the cancellation cutoff.
const CANCEL_POLL_MASK: u64 = 0xFF;

/// Diagnostic counters of one complete search, returned by the `_stats`
/// entry points ([`search_with_threads_stats`],
/// [`super::ra_search_with_stats`], [`super::ra_search_sharded_with_stats`]).
///
/// The counts describe *work done*, not the verdict: for **refuting** runs
/// every top-level branch is explored to completion, so the exploration
/// counters (`nodes_expanded`, `memo_hits`, the prune breakdown) are
/// deterministic for every thread count; for runs that find a witness,
/// branch cancellation makes them depend on scheduling. The `*_nanos`
/// fields are wall-clock measurements and never deterministic. None of
/// this feeds back into the search — verdicts and witnesses are
/// bit-identical whether or not anyone looks at the stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Configurations expanded (budget charged); memo hits and infeasible
    /// placements are free, as in the module's budget semantics.
    pub nodes_expanded: u64,
    /// Configurations skipped because an equal, fully-explored failure was
    /// memoized.
    pub memo_hits: u64,
    /// Failed configurations recorded across all memo tables.
    pub memo_entries: u64,
    /// Placements rejected because the update projection's frontier died
    /// (condition (ii) of Definition 3.5).
    pub prune_frontier_death: u64,
    /// Placements rejected because a placed query was not justified by its
    /// visible updates (condition (iii)).
    pub prune_query_unjustified: u64,
    /// Branch abandonments because a *pending* query's incremental
    /// justification frontier died before the query was placed — the cut
    /// the naive engine lacks.
    pub prune_dead_pending_query: u64,
    /// Top-level branches actually run (one per feasible first placement).
    pub branches: u64,
    /// Branches that ran out of their budget share.
    pub branches_exhausted: u64,
    /// Branches cancelled by a lower branch's witness.
    pub branches_cancelled: u64,
    /// Shards searched (sharded engine only; `0` for the monolithic one).
    pub shards: u64,
    /// Whether the sharded engine fell back to the whole-history search
    /// (the Figure 10 regime).
    pub fallback: bool,
    /// Wall-clock nanoseconds summed over branch/shard walks — the "area"
    /// of the search; `busy_nanos / elapsed_nanos` approximates pool
    /// utilization.
    pub busy_nanos: u64,
    /// Wall-clock nanoseconds from entry to verdict.
    pub elapsed_nanos: u64,
    /// Worker threads the search ran on.
    pub threads: u64,
}

impl SearchStats {
    /// Fraction of configuration lookups answered by the memo table:
    /// `memo_hits / (nodes_expanded + memo_hits)`; `0.0` for an empty run.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.nodes_expanded + self.memo_hits;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// The prune breakdown as labelled counts, stable order.
    pub fn prune_causes(&self) -> [(&'static str, u64); 3] {
        [
            ("frontier-death", self.prune_frontier_death),
            ("query-unjustified", self.prune_query_unjustified),
            ("dead-pending-query", self.prune_dead_pending_query),
        ]
    }

    /// Accumulates `other` into `self`: counts and `busy_nanos` add,
    /// `fallback` ORs, `threads` and `elapsed_nanos` take the maximum
    /// (callers overwrite both with the whole-search values afterwards).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.memo_hits += other.memo_hits;
        self.memo_entries += other.memo_entries;
        self.prune_frontier_death += other.prune_frontier_death;
        self.prune_query_unjustified += other.prune_query_unjustified;
        self.prune_dead_pending_query += other.prune_dead_pending_query;
        self.branches += other.branches;
        self.branches_exhausted += other.branches_exhausted;
        self.branches_cancelled += other.branches_cancelled;
        self.shards += other.shards;
        self.fallback |= other.fallback;
        self.busy_nanos += other.busy_nanos;
        self.elapsed_nanos = self.elapsed_nanos.max(other.elapsed_nanos);
        self.threads = self.threads.max(other.threads);
    }
}

/// Reports a finished search to the observability sink (one relaxed load
/// when disabled). Counter names are mapped in `docs/PAPER_MAP.md`.
pub(crate) fn emit_obs(stats: &SearchStats) {
    if !obs::enabled() {
        return;
    }
    obs::counter("ralin.nodes_expanded", stats.nodes_expanded);
    obs::counter("ralin.memo_hits", stats.memo_hits);
    obs::counter("ralin.memo_entries", stats.memo_entries);
    obs::counter("ralin.prune.frontier_death", stats.prune_frontier_death);
    obs::counter(
        "ralin.prune.query_unjustified",
        stats.prune_query_unjustified,
    );
    obs::counter(
        "ralin.prune.dead_pending_query",
        stats.prune_dead_pending_query,
    );
    obs::counter("ralin.branches", stats.branches);
    obs::counter("ralin.branches_exhausted", stats.branches_exhausted);
    obs::counter("ralin.branches_cancelled", stats.branches_cancelled);
    obs::observe("ralin.busy_nanos", stats.busy_nanos);
    obs::observe("ralin.elapsed_nanos", stats.elapsed_nanos);
    obs::observe("ralin.threads", stats.threads);
}

// Parsing lives in the central env module so the determinism lint can
// enforce that no other code reads the process environment.
pub(crate) use crate::env::check_threads as env_threads;
#[cfg(test)]
pub(crate) use crate::env::threads_from;

/// Resolves a requested thread count against history size and branch
/// count. `0` = automatic: sequential below [`PARALLEL_MIN_OPS`], all
/// available cores above.
pub(crate) fn effective_threads(requested: usize, n_ops: usize, branches: usize) -> usize {
    let t = if requested == 0 {
        if n_ops < PARALLEL_MIN_OPS {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |v| v.get())
        }
    } else {
        requested
    };
    t.clamp(1, branches.max(1))
}

/// Immutable per-history search structure, shared by every branch.
struct Shape {
    n: usize,
    /// Mask width in 64-bit words.
    words: usize,
    /// `succs[x]`: operations whose predecessor set contains `x`.
    succs: Vec<Vec<usize>>,
    /// `watchers[x]`: *queries* that see update `x`.
    watchers: Vec<Vec<usize>>,
    /// For each query `q`, the bitmask of updates visible to it (empty for
    /// updates). Intersected with the placed mask to decide which pending
    /// justification frontiers participate in the configuration key.
    vis_upd: Vec<Box<[u64]>>,
    /// Indices of query operations, ascending.
    queries: Vec<usize>,
}

impl Shape {
    fn of<L: SpecLabel>(h: &History<L>) -> Shape {
        let n = h.len();
        let words = n.div_ceil(64).max(1);
        let mut succs = vec![Vec::new(); n];
        let mut watchers = vec![Vec::new(); n];
        let mut vis_upd: Vec<Box<[u64]>> = Vec::with_capacity(n);
        let mut queries = Vec::new();
        for i in 0..n {
            for p in h.preds(i) {
                succs[p].push(i);
            }
            if h.label(i).is_query() {
                queries.push(i);
                let mut mask = vec![0u64; words];
                for p in h.preds(i) {
                    if h.label(p).is_update() {
                        mask[p / 64] |= 1 << (p % 64);
                        watchers[p].push(i);
                    }
                }
                vis_upd.push(mask.into_boxed_slice());
            } else {
                vis_upd.push(Box::new([]));
            }
        }
        Shape {
            n,
            words,
            succs,
            watchers,
            vis_upd,
            queries,
        }
    }
}

/// The stored justification frontiers of started pending queries:
/// `(query index, frontier states)`, ascending by query index.
type StoredQueryFronts<St> = Box<[(usize, Box<[St]>)]>;

/// A fully-explored, completion-free configuration, stored for exact
/// verification behind its hash key.
struct MemoEntry<St> {
    mask: Box<[u64]>,
    frontier: Box<[St]>,
    /// Justification frontiers of the *started* pending queries (some
    /// visible update placed), ascending by query index. Which queries
    /// those are is determined by `mask`, so both sides of a comparison
    /// enumerate the same list.
    qfronts: StoredQueryFronts<St>,
}

/// Book-keeping to undo one tentative placement.
struct PlacementUndo {
    undo_mark: usize,
    pushed_frontier: bool,
}

/// One branch's sequential memoized walk.
struct Walk<'a, S: Spec> {
    h: &'a History<S::Label>,
    shape: &'a Shape,
    placed: Vec<bool>,
    mask: Vec<u64>,
    missing: Vec<usize>,
    order: Vec<usize>,
    /// Frontier after each placed update; `last()` is the current one.
    fstack: Vec<Frontier<'a, S>>,
    /// Incremental justification frontier per query (None for updates).
    qfront: Vec<Option<Frontier<'a, S>>>,
    /// Saved query frontiers for backtracking.
    undo: Vec<(usize, Frontier<'a, S>)>,
    memo: HashMap<u64, Vec<MemoEntry<S::State>>>,
    memo_entries: usize,
    budget: u64,
    exhausted: bool,
    nodes: u64,
    // Diagnostic tallies (plain integers: no observability calls inside
    // the walk, so the hot loop costs the same with obs on or off).
    memo_hits: u64,
    prune_frontier_death: u64,
    prune_query_unjustified: u64,
    prune_dead_pending_query: u64,
    /// `(cutoff, own_branch)`: abort when `cutoff < own_branch` — a lower
    /// branch already found a witness that supersedes anything here.
    cancel: Option<(&'a AtomicUsize, usize)>,
    cancelled: bool,
}

impl<'a, S: Spec> Walk<'a, S> {
    fn new(h: &'a History<S::Label>, spec: &'a S, shape: &'a Shape, budget: u64) -> Self {
        let qfront = (0..shape.n)
            .map(|i| h.label(i).is_query().then(|| Frontier::new(spec)))
            .collect();
        Walk {
            h,
            shape,
            placed: vec![false; shape.n],
            mask: vec![0u64; shape.words],
            missing: (0..shape.n).map(|i| h.preds(i).len()).collect(),
            order: Vec::with_capacity(shape.n),
            fstack: vec![Frontier::new(spec)],
            qfront,
            undo: Vec::new(),
            memo: HashMap::new(),
            memo_entries: 0,
            budget,
            exhausted: false,
            nodes: 0,
            memo_hits: 0,
            prune_frontier_death: 0,
            prune_query_unjustified: 0,
            prune_dead_pending_query: 0,
            cancel: None,
            cancelled: false,
        }
    }

    fn started(&self, q: usize) -> bool {
        self.shape.vis_upd[q]
            .iter()
            .zip(&self.mask)
            .any(|(v, m)| v & m != 0)
    }

    /// Hashes the current configuration: placed mask, main frontier, and
    /// the justification frontiers of started pending queries. Uses the
    /// shared key-fold helpers of [`super::monitor`], which owns the
    /// canonical configuration identity for all engines.
    fn config_hash(&self) -> u64 {
        let mut key = monitor::CONFIG_KEY_SEED;
        for &w in &self.mask {
            key = monitor::fold_mask_word(key, w);
        }
        key = monitor::fold_frontier_hash(
            key,
            self.fstack.last().expect("frontier stack").canonical_hash(),
        );
        for &q in &self.shape.queries {
            if !self.placed[q] && self.started(q) {
                let f = self.qfront[q].as_ref().expect("query frontier");
                key = monitor::fold_query_frontier(key, q, f.canonical_hash());
            }
        }
        key
    }

    /// Returns `true` if the current configuration is a memoized failure.
    fn memo_hit(&self, key: u64) -> bool {
        let Some(bucket) = self.memo.get(&key) else {
            return false;
        };
        bucket.iter().any(|e| {
            e.mask[..] == self.mask[..]
                && self
                    .fstack
                    .last()
                    .expect("frontier stack")
                    .states_set_eq(&e.frontier)
                && e.qfronts.iter().all(|(q, states)| {
                    self.qfront[*q]
                        .as_ref()
                        .expect("query frontier")
                        .states_set_eq(states)
                })
        })
    }

    /// Records the current configuration as fully explored and
    /// completion-free.
    fn memo_insert(&mut self, key: u64) {
        if self.memo_entries >= MEMO_CAP {
            return;
        }
        let frontier: Box<[S::State]> = self
            .fstack
            .last()
            .expect("frontier stack")
            .states()
            .to_vec()
            .into_boxed_slice();
        let qfronts: StoredQueryFronts<S::State> = self
            .shape
            .queries
            .iter()
            .filter(|&&q| !self.placed[q] && self.started(q))
            .map(|&q| {
                let states = self.qfront[q]
                    .as_ref()
                    .expect("query frontier")
                    .states()
                    .to_vec()
                    .into_boxed_slice();
                (q, states)
            })
            .collect();
        self.memo.entry(key).or_default().push(MemoEntry {
            mask: self.mask.clone().into_boxed_slice(),
            frontier,
            qfronts,
        });
        self.memo_entries += 1;
    }

    /// Tentatively places `x`; returns the undo token and whether the
    /// placement (and every pending query it touches) stays feasible.
    fn place(&mut self, x: usize) -> (PlacementUndo, bool) {
        let shape = self.shape;
        let undo_mark = self.undo.len();
        self.placed[x] = true;
        self.mask[x / 64] |= 1 << (x % 64);
        self.order.push(x);
        let mut pushed_frontier = false;
        let feasible = if self.h.label(x).is_update() {
            let mut f = self.fstack.last().expect("frontier stack").clone();
            if f.advance(self.h.label(x)) {
                self.fstack.push(f);
                pushed_frontier = true;
                // Incrementally extend the justification frontier of every
                // pending query that sees x; a dead pending query can never
                // be justified, so it kills the whole branch right here.
                let mut alive = true;
                for &q in &shape.watchers[x] {
                    if self.placed[q] {
                        continue;
                    }
                    let saved = self.qfront[q].as_ref().expect("query frontier").clone();
                    self.undo.push((q, saved));
                    let fq = self.qfront[q].as_mut().expect("query frontier");
                    if !fq.advance(self.h.label(x)) {
                        alive = false;
                        break;
                    }
                }
                if !alive {
                    self.prune_dead_pending_query += 1;
                }
                alive
            } else {
                self.prune_frontier_death += 1;
                false
            }
        } else {
            // Queries: all visible updates are placed (missing == 0), so
            // the incremental frontier has consumed exactly them, in
            // placement order — condition (iii) is one `admits` call.
            let justified = self.qfront[x]
                .as_ref()
                .expect("query frontier")
                .admits(self.h.label(x));
            if !justified {
                self.prune_query_unjustified += 1;
            }
            justified
        };
        if feasible {
            for &s in &shape.succs[x] {
                self.missing[s] -= 1;
            }
        }
        (
            PlacementUndo {
                undo_mark,
                pushed_frontier,
            },
            feasible,
        )
    }

    fn unplace(&mut self, x: usize, undo: PlacementUndo, was_feasible: bool) {
        let shape = self.shape;
        if was_feasible {
            for &s in &shape.succs[x] {
                self.missing[s] += 1;
            }
        }
        while self.undo.len() > undo.undo_mark {
            let (q, f) = self.undo.pop().expect("undo entry");
            self.qfront[q] = Some(f);
        }
        if undo.pushed_frontier {
            self.fstack.pop();
        }
        self.order.pop();
        self.mask[x / 64] &= !(1 << (x % 64));
        self.placed[x] = false;
    }

    fn dfs(&mut self, depth: usize) -> Option<Vec<usize>> {
        if depth == self.shape.n {
            return Some(self.order.clone());
        }
        let key = self.config_hash();
        if self.memo_hit(key) {
            self.memo_hits += 1;
            return None;
        }
        // Only *expansions* are charged: a memo hit is a constant-time
        // lookup, and a completed order is a result, not work.
        if self.budget == 0 {
            self.exhausted = true;
            return None;
        }
        self.budget -= 1;
        self.nodes += 1;
        if self.nodes & CANCEL_POLL_MASK == 0 {
            if let Some((cutoff, own)) = self.cancel {
                if cutoff.load(Ordering::Relaxed) < own {
                    self.cancelled = true;
                    return None;
                }
            }
        }
        let mut fully_explored = true;
        for x in 0..self.shape.n {
            if self.placed[x] || self.missing[x] != 0 {
                continue;
            }
            let (undo, feasible) = self.place(x);
            let res = if feasible { self.dfs(depth + 1) } else { None };
            self.unplace(x, undo, feasible);
            if res.is_some() {
                return res;
            }
            if self.exhausted || self.cancelled {
                fully_explored = false;
                break;
            }
        }
        if fully_explored {
            self.memo_insert(key);
        }
        None
    }
}

/// Outcome of one top-level branch.
enum BranchOutcome {
    Witness(Vec<usize>),
    Refuted,
    Exhausted,
    /// Cancelled by a lower branch's witness; never consulted by the
    /// combiner (the lower witness wins first).
    Cancelled,
}

/// Searches the branch whose first placed operation is `root`.
fn run_branch<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    shape: &Shape,
    root: usize,
    budget: u64,
    cancel: Option<(&AtomicUsize, usize)>,
) -> (BranchOutcome, SearchStats) {
    let t0 = obs::wallclock::now_nanos();
    let mut w = Walk::new(h, spec, shape, budget);
    w.cancel = cancel;
    let (_, feasible) = w.place(root);
    let out = if !feasible {
        // No completion can start with `root`; charging nothing mirrors
        // the naive engine, which rejects infeasible placements in the
        // parent node.
        BranchOutcome::Refuted
    } else {
        match w.dfs(1) {
            Some(order) => BranchOutcome::Witness(order),
            None if w.cancelled => BranchOutcome::Cancelled,
            None if w.exhausted => BranchOutcome::Exhausted,
            None => BranchOutcome::Refuted,
        }
    };
    let stats = SearchStats {
        nodes_expanded: w.nodes,
        memo_hits: w.memo_hits,
        memo_entries: w.memo_entries as u64,
        prune_frontier_death: w.prune_frontier_death,
        prune_query_unjustified: w.prune_query_unjustified,
        prune_dead_pending_query: w.prune_dead_pending_query,
        branches: 1,
        branches_exhausted: u64::from(w.exhausted),
        branches_cancelled: u64::from(w.cancelled),
        busy_nanos: obs::wallclock::now_nanos().saturating_sub(t0),
        ..SearchStats::default()
    };
    (out, stats)
}

/// Runs `jobs` closures on `threads` workers pulling branch indices from a
/// shared counter (idle workers steal whatever branch is next).
pub(crate) fn run_pool<T: Send, F: Fn(usize) -> T + Sync>(
    threads: usize,
    jobs: usize,
    f: F,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("branch result"))
        .collect()
}

/// Memoized search with an explicit thread count (`0` = automatic, as for
/// `RAL_CHECK_THREADS`). The outcome is bit-identical for every thread
/// count; see the module docs for the budget semantics.
pub fn search_with_threads<S>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
    threads: usize,
) -> SearchOutcome
where
    S: Spec + Sync,
    S::Label: Sync,
{
    search_with_threads_stats(h, spec, budget, threads).0
}

/// [`search_with_threads`], also returning the [`SearchStats`] of the run.
/// The outcome component is identical to the plain entry point's; the
/// stats are diagnostic only (see [`SearchStats`] for what is and is not
/// deterministic about them).
pub fn search_with_threads_stats<S>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
    threads: usize,
) -> (SearchOutcome, SearchStats)
where
    S: Spec + Sync,
    S::Label: Sync,
{
    let t0 = obs::wallclock::now_nanos();
    let _span = obs::span("ralin.search");
    let n = h.len();
    if n == 0 {
        let lin = SearchOutcome::Linearizable(Linearization { order: Vec::new() });
        return (lin, SearchStats::default());
    }
    if budget == 0 {
        return (SearchOutcome::BudgetExhausted, SearchStats::default());
    }
    let shape = Shape::of(h);
    let roots: Vec<usize> = (0..n).filter(|&i| h.preds(i).is_empty()).collect();
    debug_assert!(!roots.is_empty(), "non-empty acyclic history has a minimum");
    let k = roots.len() as u64;
    let remaining = budget - 1; // the root configuration itself
    let share = |i: usize| remaining / k + u64::from((i as u64) < remaining % k);

    let threads = effective_threads(threads, n, roots.len());
    let mut stats = SearchStats::default();
    let mut saw_exhausted = false;
    let witness = if threads <= 1 {
        // Sequential: branches in order, stopping at the first witness
        // (later branches cannot hold a smaller one).
        let mut found = None;
        for (i, &root) in roots.iter().enumerate() {
            let (out, branch_stats) = run_branch(h, spec, &shape, root, share(i), None);
            stats.merge(&branch_stats);
            match out {
                BranchOutcome::Witness(order) => {
                    found = Some(order);
                    break;
                }
                BranchOutcome::Exhausted => saw_exhausted = true,
                BranchOutcome::Refuted | BranchOutcome::Cancelled => {}
            }
        }
        found
    } else {
        let cutoff = AtomicUsize::new(usize::MAX);
        let results = run_pool(threads, roots.len(), |i| {
            if cutoff.load(Ordering::Relaxed) < i {
                return (
                    BranchOutcome::Cancelled,
                    SearchStats {
                        branches: 1,
                        branches_cancelled: 1,
                        ..SearchStats::default()
                    },
                );
            }
            let res = run_branch(h, spec, &shape, roots[i], share(i), Some((&cutoff, i)));
            if matches!(res.0, BranchOutcome::Witness(_)) {
                cutoff.fetch_min(i, Ordering::Relaxed);
            }
            res
        });
        let mut found = None;
        for (out, branch_stats) in results {
            stats.merge(&branch_stats);
            if found.is_some() {
                continue; // keep folding stats; the witness is settled
            }
            match out {
                BranchOutcome::Witness(order) => found = Some(order),
                BranchOutcome::Exhausted => saw_exhausted = true,
                BranchOutcome::Refuted | BranchOutcome::Cancelled => {}
            }
        }
        found
    };
    stats.threads = threads as u64;
    stats.elapsed_nanos = obs::wallclock::now_nanos().saturating_sub(t0);
    emit_obs(&stats);

    let outcome = match witness {
        Some(order) => {
            debug_assert_eq!(
                check_linearization(h, spec, &order),
                Ok(()),
                "memoized search returned an invalid linearization"
            );
            SearchOutcome::Linearizable(Linearization { order })
        }
        None if saw_exhausted => SearchOutcome::BudgetExhausted,
        None => SearchOutcome::NotLinearizable,
    };
    (outcome, stats)
}

/// Searches for an RA-linearization of `h` w.r.t. `spec` without a budget.
/// The history must be query-update free.
///
/// This is the memoized engine (see the module docs); thread count comes
/// from `RAL_CHECK_THREADS`. Use [`super::search_brute`] to force the
/// naive seed-era enumeration.
pub fn search<S>(h: &History<S::Label>, spec: &S) -> SearchOutcome
where
    S: Spec + Sync,
    S::Label: Sync,
{
    search_with_budget(h, spec, u64::MAX)
}

/// Memoized search visiting at most `budget` configurations (split
/// deterministically across top-level branches; see the module docs).
/// Thread count comes from `RAL_CHECK_THREADS`.
pub fn search_with_budget<S>(h: &History<S::Label>, spec: &S, budget: u64) -> SearchOutcome
where
    S: Spec + Sync,
    S::Label: Sync,
{
    search_with_threads(h, spec, budget, env_threads())
}

#[cfg(test)]
mod tests {
    use super::super::brute;
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::Kind;

    struct CtrSpec;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Inc,
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Inc => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for CtrSpec {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 1],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    /// `n` concurrent increments and one read that saw all of them but
    /// claims one too many: refuted, with a fully concurrent top.
    fn impossible(n: usize) -> History<L> {
        let mut h = History::new();
        let incs: Vec<usize> = (0..n)
            .map(|i| h.push(OpRecord::new(L::Inc, r(i as u32)), []))
            .collect();
        h.push(OpRecord::new(L::Read(n as i64 + 1), r(0)), incs);
        h
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<L> = History::new();
        assert!(search(&h, &CtrSpec).is_linearizable());
        assert!(search_with_budget(&h, &CtrSpec, 0).is_linearizable());
    }

    #[test]
    fn finds_witness_and_matches_brute_order() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Inc, r(0)), []);
        let b = h.push(OpRecord::new(L::Inc, r(1)), []);
        h.push(OpRecord::new(L::Read(1), r(0)), [a]);
        h.push(OpRecord::new(L::Read(1), r(1)), [b]);
        let memo = search(&h, &CtrSpec);
        let naive = brute::search_brute(&h, &CtrSpec);
        assert!(memo.is_linearizable());
        assert_eq!(memo, naive, "memo must return the naive engine's witness");
    }

    #[test]
    fn refutes_where_brute_refutes() {
        let h = impossible(6);
        assert_eq!(search(&h, &CtrSpec), SearchOutcome::NotLinearizable);
        assert_eq!(brute::search_brute(&h, &CtrSpec), search(&h, &CtrSpec));
    }

    #[test]
    fn refutes_wide_histories_brute_cannot_touch() {
        // 14 concurrent increments: 14! ≈ 8.7·10¹⁰ permutations, but only
        // 2^14 placed sets. The memoized engine refutes within a budget
        // the naive engine exhausts instantly.
        let h = impossible(14);
        let budget = 2_000_000;
        assert_eq!(
            search_with_threads(&h, &CtrSpec, budget, 1),
            SearchOutcome::NotLinearizable
        );
        assert_eq!(
            brute::search_brute_with_budget(&h, &CtrSpec, budget),
            SearchOutcome::BudgetExhausted
        );
    }

    #[test]
    fn outcome_is_thread_count_independent() {
        for h in [impossible(8), {
            let mut h = History::new();
            let a = h.push(OpRecord::new(L::Inc, r(0)), []);
            h.push(OpRecord::new(L::Inc, r(1)), []);
            h.push(OpRecord::new(L::Read(1), r(0)), [a]);
            h
        }] {
            let seq = search_with_threads(&h, &CtrSpec, u64::MAX, 1);
            for threads in [2, 3, 8] {
                assert_eq!(
                    seq,
                    search_with_threads(&h, &CtrSpec, u64::MAX, threads),
                    "outcome must not depend on thread count"
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_deterministically() {
        let h = impossible(10);
        // Too small to finish: every thread count must agree.
        let tiny = search_with_threads(&h, &CtrSpec, 50, 1);
        assert_eq!(tiny, SearchOutcome::BudgetExhausted);
        for threads in [2, 4] {
            assert_eq!(tiny, search_with_threads(&h, &CtrSpec, 50, threads));
        }
    }

    #[test]
    fn exact_budget_still_reports_the_witness() {
        // One update: root node (1) + the single branch walking one
        // placement (1 node) + free completion = 2 configurations.
        let mut h = History::new();
        h.push(OpRecord::new(L::Inc, r(0)), []);
        assert!(search_with_threads(&h, &CtrSpec, 2, 1).is_linearizable());
    }

    /// A spec with an update precondition (`set` fires only from state 0),
    /// so a pending query's justification frontier can die *before* the
    /// query is placed even while the main frontier survives.
    struct OnceSpec;

    #[derive(Clone, Debug, PartialEq)]
    enum OnceL {
        /// Admitted only while the state is 0; moves it to 1.
        Set,
        /// Always admitted; moves the state back to 0.
        Reset,
        Read(i64),
    }

    impl SpecLabel for OnceL {
        fn kind(&self) -> Kind {
            match self {
                OnceL::Set | OnceL::Reset => Kind::Update,
                OnceL::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for OnceSpec {
        type Label = OnceL;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &OnceL) -> Vec<i64> {
            match l {
                OnceL::Set if *s == 0 => vec![1],
                OnceL::Set => vec![],
                OnceL::Reset => vec![0],
                OnceL::Read(k) if k == s => vec![*s],
                OnceL::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn dead_pending_query_is_refuted() {
        // The read sees both `set`s but not the concurrent `reset`. The
        // update projection survives when the reset is linearized between
        // the sets, but the read's justification sub-sequence (set · set)
        // dies the moment the second visible set is placed — the
        // incremental cut fires while the read is still pending, and the
        // engine refutes exactly where brute refutes.
        let mut h = History::new();
        let a = h.push(OpRecord::new(OnceL::Set, r(0)), []);
        h.push(OpRecord::new(OnceL::Reset, r(1)), []);
        let b = h.push(OpRecord::new(OnceL::Set, r(0)), [a]);
        h.push(OpRecord::new(OnceL::Read(1), r(0)), [a, b]);
        assert_eq!(search(&h, &OnceSpec), SearchOutcome::NotLinearizable);
        assert_eq!(brute::search_brute(&h, &OnceSpec), search(&h, &OnceSpec));
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(threads_from("RAL_CHECK_THREADS", None), 0);
        assert_eq!(threads_from("RAL_CHECK_THREADS", Some("0".into())), 0);
        assert_eq!(threads_from("RAL_CHECK_THREADS", Some(" 4 ".into())), 4);
        let caught =
            std::panic::catch_unwind(|| threads_from("RAL_CHECK_THREADS", Some("lots".into())));
        assert!(caught.is_err(), "typo'd override must fail loudly");
    }
}
