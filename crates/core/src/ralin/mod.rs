//! The RA-linearizability checker (Definitions 3.5 and 3.7).
//!
//! A history `h = (L, vis)` with `L ⊆ Queries ⊎ Updates` is RA-linearizable
//! w.r.t. a specification `Spec` if there is a sequence `(L, seq)` such that
//!
//! 1. `seq` is consistent with `vis` (their union is acyclic);
//! 2. the projection of `seq` onto updates is admitted by `Spec`;
//! 3. every query `ℓ` is justified by the sub-sequence of updates visible to
//!    it: `seq ↓ (vis⁻¹(ℓ) ∩ Updates) · ℓ ∈ Spec`.
//!
//! Histories containing query-updates are first rewritten with a
//! query-update rewriting `γ` ([`crate::history::rewrite_history`]).
//!
//! Six checkers are provided:
//!
//! * [`check_linearization`] validates a *given* candidate sequence;
//! * [`check_guided`] builds the constructive *execution-order* (Section 4.1)
//!   or *timestamp-order* (Section 4.2) linearization and validates it —
//!   linear-size work, the practical path justified by Theorems 4.4/4.6;
//! * [`search`] (module [`memo`]) is the complete decision procedure:
//!   a memoized configuration-DAG walk with incremental query
//!   justification and an optional `std::thread` pool
//!   (`RAL_CHECK_THREADS`), deterministic for every thread count — this
//!   is what establishes the paper's *negative* results (Figures 5a, 9,
//!   10, 14 need "no linearization exists") at useful history sizes;
//! * [`search_sharded`] (module [`sharded`]) decides *composed* histories
//!   per object — the compositional route Theorem 5.5 licenses for `⊗ts`:
//!   shard, search every shard with the memoized engine, stitch the
//!   witnesses, and fall back to the whole-history search when the stitch
//!   fails, so it agrees with [`search`] even on non-compositional `⊗`
//!   histories (Figure 10);
//! * [`search_brute`] is the seed's naive permutation enumeration —
//!   factorially slower, kept as the independent ground truth the
//!   property suites cross-check the memoized engine against, and the
//!   only complete engine for non-`Sync` specifications;
//! * [`Monitor`] (module [`monitor`]) is the *incremental* core the batch
//!   entry points are rebased on: a per-event
//!   `advance(op | delivery) → Verdict` that extends live configuration
//!   frontiers instead of re-searching, with a causal-stability rule
//!   that settles ops below every replica's seen-frontier and compacts
//!   retained state to O(concurrent window) — this is what lets the
//!   simulator verify million-op runs continuously.
//!
//! The `ra_search*` facades run the monitor's exact batch closure first
//! and fall back to the depth-first memoized engine when the closure
//! overruns its caps; verdicts (and witnesses) agree on every history.

mod brute;
mod check;
mod guided;
pub mod memo;
pub mod monitor;
pub mod sharded;

pub use brute::{count_linearizations, search_brute, search_brute_with_budget};
pub use check::{check_linearization, Violation};
pub use guided::{check_guided, check_rewritten, execution_order_of, timestamp_order_of};
pub use memo::{
    search, search_with_budget, search_with_threads, search_with_threads_stats, SearchStats,
};
pub use monitor::{monitor_history, try_search_batch, Monitor, MonitorFeed, MonitorStats, Verdict};
pub use sharded::{
    search_sharded, search_sharded_with_budget, search_sharded_with_threads,
    search_sharded_with_threads_stats, shard_history, ShardableSpec,
};

use crate::compose::ComposedLabel;
use crate::history::{rewrite_history, History};
use crate::label::Rewrite;
use crate::spec::Spec;

/// Result of a complete search ([`search`], [`search_brute`], or
/// [`crate::linearizability::linearizable`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A valid RA-linearization was found.
    Linearizable(Linearization),
    /// The search space was exhausted: no RA-linearization exists.
    NotLinearizable,
    /// The node budget ran out before the search completed.
    BudgetExhausted,
}

impl SearchOutcome {
    /// Returns `true` if a linearization was found.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, SearchOutcome::Linearizable(_))
    }

    /// Returns `true` if the search proved that no linearization exists.
    pub fn is_refuted(&self) -> bool {
        matches!(self, SearchOutcome::NotLinearizable)
    }
}

/// Which constructive linearization an object admits (Figure 12's "Lin"
/// column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Execution-order linearizations (Section 4.1): operations linearize in
    /// the order their generators executed.
    ExecutionOrder,
    /// Timestamp-order linearizations (Section 4.2): operations linearize by
    /// (virtual) timestamp, ties broken by generator order.
    TimestampOrder,
}

impl Strategy {
    /// Short name as used in the paper's Figure 12 ("EO" / "TO").
    pub fn short_name(self) -> &'static str {
        match self {
            Strategy::ExecutionOrder => "EO",
            Strategy::TimestampOrder => "TO",
        }
    }
}

/// A linearization: a permutation of the (rewritten) history's operation
/// indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Linearization {
    /// Operation indices in linearization order.
    pub order: Vec<usize>,
}

/// Applies a query-update rewriting and then checks the guided linearization
/// of the given strategy — the full pipeline of Definition 3.7 plus
/// Theorem 4.4/4.6.
///
/// # Errors
///
/// Returns the [`Violation`] that the constructed linearization exhibits, if
/// any.
///
/// # Examples
///
/// A two-replica counter history where each replica increments without
/// seeing the other, then reads its own update only — RA-linearizable in
/// execution order:
///
/// ```
/// use ral_core::history::{History, OpRecord};
/// use ral_core::ids::ReplicaId;
/// use ral_core::label::Identity;
/// use ral_core::ralin::{ra_check, Strategy};
/// # use ral_core::label::{Kind, SpecLabel};
/// # use ral_core::spec::Spec;
/// # #[derive(Clone, Debug, PartialEq)]
/// # enum Ctr { Inc, Read(i64) }
/// # impl SpecLabel for Ctr {
/// #     fn kind(&self) -> Kind {
/// #         match self { Ctr::Inc => Kind::Update, Ctr::Read(_) => Kind::Query }
/// #     }
/// # }
/// # struct CtrSpec;
/// # impl Spec for CtrSpec {
/// #     type Label = Ctr;
/// #     type State = i64;
/// #     fn initial(&self) -> i64 { 0 }
/// #     fn step(&self, s: &i64, l: &Ctr) -> Vec<i64> {
/// #         match l {
/// #             Ctr::Inc => vec![s + 1],
/// #             Ctr::Read(k) if k == s => vec![*s],
/// #             Ctr::Read(_) => vec![],
/// #         }
/// #     }
/// # }
///
/// let mut h = History::new();
/// let a = h.push(OpRecord::new(Ctr::Inc, ReplicaId(0)), []);
/// let b = h.push(OpRecord::new(Ctr::Inc, ReplicaId(1)), []);
/// h.push(OpRecord::new(Ctr::Read(1), ReplicaId(0)), [a]);
/// h.push(OpRecord::new(Ctr::Read(1), ReplicaId(1)), [b]);
/// let lin = ra_check(&h, &Identity, &CtrSpec, Strategy::ExecutionOrder).unwrap();
/// assert_eq!(lin.order.len(), 4);
/// ```
pub fn ra_check<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
    strategy: Strategy,
) -> Result<Linearization, Violation>
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec,
{
    let rewritten = rewrite_history(h, rw);
    check_guided(&rewritten.history, spec, strategy)
}

/// Applies a query-update rewriting and then decides RA-linearizability
/// outright — the complete decision procedure for Definition 3.7, run on
/// the memoized engine ([`memo`]) with `RAL_CHECK_THREADS`-controlled
/// parallelism. Use [`ra_search_brute`] to force the naive enumeration.
///
/// # Examples
///
/// The complete search *refutes* where the guided one merely fails: a
/// query that observes an impossible value admits no linearization at all.
///
/// ```
/// use ral_core::history::{History, OpRecord};
/// use ral_core::ids::ReplicaId;
/// use ral_core::label::Identity;
/// use ral_core::ralin::{ra_search, SearchOutcome};
/// # use ral_core::label::{Kind, SpecLabel};
/// # use ral_core::spec::Spec;
/// # #[derive(Clone, Debug, PartialEq)]
/// # enum Ctr { Inc, Read(i64) }
/// # impl SpecLabel for Ctr {
/// #     fn kind(&self) -> Kind {
/// #         match self { Ctr::Inc => Kind::Update, Ctr::Read(_) => Kind::Query }
/// #     }
/// # }
/// # struct CtrSpec;
/// # impl Spec for CtrSpec {
/// #     type Label = Ctr;
/// #     type State = i64;
/// #     fn initial(&self) -> i64 { 0 }
/// #     fn step(&self, s: &i64, l: &Ctr) -> Vec<i64> {
/// #         match l {
/// #             Ctr::Inc => vec![s + 1],
/// #             Ctr::Read(k) if k == s => vec![*s],
/// #             Ctr::Read(_) => vec![],
/// #         }
/// #     }
/// # }
///
/// let mut h = History::new();
/// let a = h.push(OpRecord::new(Ctr::Inc, ReplicaId(0)), []);
/// h.push(OpRecord::new(Ctr::Read(5), ReplicaId(0)), [a]); // saw one inc, read 5
/// assert!(matches!(ra_search(&h, &Identity, &CtrSpec), SearchOutcome::NotLinearizable));
/// ```
pub fn ra_search<In, R, S>(h: &History<In>, rw: &R, spec: &S) -> SearchOutcome
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let rewritten = rewrite_history(h, rw);
    monitor::search_batch_with_stats(&rewritten.history, spec, u64::MAX, memo::env_threads()).0
}

/// [`ra_search`], also returning the engine's [`SearchStats`]
/// (nodes expanded, memo hits, prune-cause breakdown, timing). The stats
/// are observational only — they never influence the verdict — and their
/// exploration counters are deterministic exactly when the run refutes
/// (see [`SearchStats`] for the contract).
pub fn ra_search_with_stats<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
) -> (SearchOutcome, SearchStats)
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let rewritten = rewrite_history(h, rw);
    monitor::search_batch_with_stats(&rewritten.history, spec, u64::MAX, memo::env_threads())
}

/// [`ra_search`] with a node budget: the memoized engine explores at most
/// `budget` configurations (split deterministically across its top-level
/// branches — see [`memo`]) before reporting
/// [`SearchOutcome::BudgetExhausted`].
pub fn ra_search_with_budget<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
    budget: u64,
) -> SearchOutcome
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
{
    let rewritten = rewrite_history(h, rw);
    monitor::search_batch_with_stats(&rewritten.history, spec, budget, memo::env_threads()).0
}

/// [`ra_search`] for composed histories, decided per object: rewrite,
/// project into per-object shards, run the memoized engine on every shard
/// across the `RAL_CHECK_THREADS` pool, and stitch the per-object
/// witnesses into one validated global linearization ([`sharded`]).
///
/// Sound over the unrestricted composition `⊗`, where per-object
/// RA-linearizability does *not* imply composed RA-linearizability
/// (Figure 10): a shard refutation refutes globally, and a Linearizable
/// verdict is only reported when the stitched witness passes
/// [`check_linearization`] — otherwise the search falls back to the
/// whole-history memoized engine, so the verdict agrees with
/// [`ra_search`] on every history. The win is Theorem 5.5's regime: the
/// search cost is the *sum* of the per-object exponentials instead of
/// the product.
///
/// # Examples
///
/// Two composed counters, each incremented and read on its own replica:
///
/// ```
/// use ral_core::compose::{MultiObjSpec, ObjLabel};
/// use ral_core::history::{History, OpRecord};
/// use ral_core::ids::{ObjId, ReplicaId};
/// use ral_core::label::Identity;
/// use ral_core::ralin::ra_search_sharded;
/// # use ral_core::label::{Kind, SpecLabel};
/// # use ral_core::spec::Spec;
/// # #[derive(Clone, Debug, PartialEq)]
/// # enum Ctr { Inc, Read(i64) }
/// # impl SpecLabel for Ctr {
/// #     fn kind(&self) -> Kind {
/// #         match self { Ctr::Inc => Kind::Update, Ctr::Read(_) => Kind::Query }
/// #     }
/// # }
/// # #[derive(Clone, Debug)]
/// # struct CtrSpec;
/// # impl Spec for CtrSpec {
/// #     type Label = Ctr;
/// #     type State = i64;
/// #     fn initial(&self) -> i64 { 0 }
/// #     fn step(&self, s: &i64, l: &Ctr) -> Vec<i64> {
/// #         match l {
/// #             Ctr::Inc => vec![s + 1],
/// #             Ctr::Read(k) if k == s => vec![*s],
/// #             Ctr::Read(_) => vec![],
/// #         }
/// #     }
/// # }
///
/// let mut h = History::new();
/// let a = h.push(OpRecord::new(ObjLabel::new(ObjId(0), Ctr::Inc), ReplicaId(0)), []);
/// let b = h.push(OpRecord::new(ObjLabel::new(ObjId(1), Ctr::Inc), ReplicaId(1)), []);
/// h.push(OpRecord::new(ObjLabel::new(ObjId(0), Ctr::Read(1)), ReplicaId(0)), [a]);
/// h.push(OpRecord::new(ObjLabel::new(ObjId(1), Ctr::Read(1)), ReplicaId(1)), [b]);
/// let spec = MultiObjSpec::new(CtrSpec, 2);
/// assert!(ra_search_sharded(&h, &Identity, &spec).is_linearizable());
/// ```
pub fn ra_search_sharded<In, R, S>(h: &History<In>, rw: &R, spec: &S) -> SearchOutcome
where
    R: Rewrite<In, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let rewritten = rewrite_history(h, rw);
    search_sharded(&rewritten.history, spec)
}

/// [`ra_search_sharded`], also returning the merged [`SearchStats`] of
/// every shard walk; `stats.shards` and `stats.fallback` report the
/// sharding shape and the Figure 10 fallback regime.
pub fn ra_search_sharded_with_stats<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
) -> (SearchOutcome, SearchStats)
where
    R: Rewrite<In, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let rewritten = rewrite_history(h, rw);
    search_sharded_with_threads_stats(&rewritten.history, spec, u64::MAX, memo::env_threads())
}

/// [`ra_search_sharded`] with a node budget, applied per shard (and to
/// the monolithic fallback when the stitch fails).
pub fn ra_search_sharded_with_budget<In, R, S>(
    h: &History<In>,
    rw: &R,
    spec: &S,
    budget: u64,
) -> SearchOutcome
where
    R: Rewrite<In, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let rewritten = rewrite_history(h, rw);
    search_sharded_with_budget(&rewritten.history, spec, budget)
}

/// [`ra_search`] on the naive seed-era engine ([`search_brute`]): rewrite,
/// then enumerate permutations. Factorially slower than [`ra_search`] —
/// kept for cross-checks against the memoized engine and for
/// specifications that are not `Sync`.
pub fn ra_search_brute<In, R, S>(h: &History<In>, rw: &R, spec: &S) -> SearchOutcome
where
    R: Rewrite<In, Out = S::Label>,
    S: Spec,
{
    let rewritten = rewrite_history(h, rw);
    search_brute(&rewritten.history, spec)
}
