//! Naive complete RA-linearizability search (the seed's ground truth).
//!
//! Enumerates linear extensions of the visibility relation by depth-first
//! search, pruning with two sound cuts:
//!
//! * placing an update whose frontier dies can never be completed
//!   (specification runs only shrink);
//! * a query's justification (condition (iii)) is fully determined the moment
//!   it is placed — all its visible updates are already placed and their
//!   relative order is fixed — so an unjustified query prunes immediately.
//!
//! The search is exponential in the number of concurrent operations and
//! re-derives every query justification from scratch. The **memoized
//! engine** ([`super::memo`], the default behind [`super::search`]) decides
//! the same question orders of magnitude faster; this module remains the
//! independent ground truth the property suites cross-check against, and
//! the only complete engine usable with non-`Sync` specifications.
//!
//! Budget semantics: every call of the recursive step charges one node,
//! except a *completed* linearization (depth = history length), which is
//! free — a search holding a complete valid order in hand is never
//! misreported as [`SearchOutcome::BudgetExhausted`].

use super::check::query_justified;
use super::{Linearization, SearchOutcome};
use crate::history::History;
use crate::label::SpecLabel;
use crate::spec::{Frontier, Spec};

struct Search<'a, S: Spec> {
    h: &'a History<S::Label>,
    spec: &'a S,
    // Number of not-yet-placed predecessors per operation.
    missing: Vec<usize>,
    placed: Vec<bool>,
    pos: Vec<usize>,
    order: Vec<usize>,
    budget: u64,
    exhausted: bool,
}

impl<S: Spec> Search<'_, S> {
    fn dfs(&mut self, depth: usize, frontier: &Frontier<'_, S>) -> Option<Vec<usize>> {
        if depth == self.h.len() {
            return Some(self.order.clone());
        }
        if self.budget == 0 {
            self.exhausted = true;
            return None;
        }
        self.budget -= 1;
        for x in 0..self.h.len() {
            if self.placed[x] || self.missing[x] != 0 {
                continue;
            }
            // Tentatively place x.
            self.placed[x] = true;
            self.pos[x] = depth;
            self.order.push(x);

            let feasible;
            let mut next_frontier = None;
            if self.h.label(x).is_update() {
                let mut f = frontier.clone();
                feasible = f.advance(self.h.label(x));
                next_frontier = Some(f);
            } else {
                feasible = query_justified(self.h, self.spec, x, &self.pos);
            }

            if feasible {
                for succ in 0..self.h.len() {
                    if self.h.sees(succ, x) {
                        self.missing[succ] -= 1;
                    }
                }
                let res = match &next_frontier {
                    Some(f) => self.dfs(depth + 1, f),
                    None => self.dfs(depth + 1, frontier),
                };
                for succ in 0..self.h.len() {
                    if self.h.sees(succ, x) {
                        self.missing[succ] += 1;
                    }
                }
                if res.is_some() {
                    return res;
                }
            }

            self.order.pop();
            self.pos[x] = usize::MAX;
            self.placed[x] = false;
            if self.exhausted {
                return None;
            }
        }
        None
    }
}

fn init_missing<L>(h: &History<L>) -> Vec<usize> {
    (0..h.len()).map(|i| h.preds(i).len()).collect()
}

/// Searches for an RA-linearization of `h` w.r.t. `spec` without a budget,
/// with the naive (non-memoized, single-threaded) engine. The history must
/// be query-update free.
pub fn search_brute<S: Spec>(h: &History<S::Label>, spec: &S) -> SearchOutcome {
    search_brute_with_budget(h, spec, u64::MAX)
}

/// Naive search visiting at most `budget` search nodes (completed
/// linearizations are free — see the module docs).
pub fn search_brute_with_budget<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
) -> SearchOutcome {
    let mut s = Search {
        h,
        spec,
        missing: init_missing(h),
        placed: vec![false; h.len()],
        pos: vec![usize::MAX; h.len()],
        order: Vec::with_capacity(h.len()),
        budget,
        exhausted: false,
    };
    let frontier = Frontier::new(spec);
    match s.dfs(0, &frontier) {
        Some(order) => {
            debug_assert_eq!(
                super::check::check_linearization(h, spec, &order),
                Ok(()),
                "search returned an invalid linearization"
            );
            SearchOutcome::Linearizable(Linearization { order })
        }
        None if s.exhausted => SearchOutcome::BudgetExhausted,
        None => SearchOutcome::NotLinearizable,
    }
}

/// Counts all valid RA-linearizations of `h` (up to `budget` search nodes;
/// completed linearizations are free, so an exactly-sufficient budget
/// reports `completed = true`).
///
/// Returns `(count, completed)`; `completed` is `false` if the budget ran
/// out. Useful for ablation benchmarks on the size of the witness space.
pub fn count_linearizations<S: Spec>(h: &History<S::Label>, spec: &S, budget: u64) -> (u64, bool) {
    struct Counter<'a, S: Spec> {
        inner: Search<'a, S>,
        count: u64,
    }
    impl<S: Spec> Counter<'_, S> {
        fn dfs(&mut self, depth: usize, frontier: &Frontier<'_, S>) {
            if depth == self.inner.h.len() {
                self.count += 1;
                return;
            }
            if self.inner.budget == 0 {
                self.inner.exhausted = true;
                return;
            }
            self.inner.budget -= 1;
            for x in 0..self.inner.h.len() {
                if self.inner.placed[x] || self.inner.missing[x] != 0 {
                    continue;
                }
                self.inner.placed[x] = true;
                self.inner.pos[x] = depth;

                let feasible;
                let mut next_frontier = None;
                if self.inner.h.label(x).is_update() {
                    let mut f = frontier.clone();
                    feasible = f.advance(self.inner.h.label(x));
                    next_frontier = Some(f);
                } else {
                    feasible = query_justified(self.inner.h, self.inner.spec, x, &self.inner.pos);
                }

                if feasible {
                    for succ in 0..self.inner.h.len() {
                        if self.inner.h.sees(succ, x) {
                            self.inner.missing[succ] -= 1;
                        }
                    }
                    match &next_frontier {
                        Some(f) => self.dfs(depth + 1, f),
                        None => self.dfs(depth + 1, frontier),
                    }
                    for succ in 0..self.inner.h.len() {
                        if self.inner.h.sees(succ, x) {
                            self.inner.missing[succ] += 1;
                        }
                    }
                }

                self.inner.pos[x] = usize::MAX;
                self.inner.placed[x] = false;
                if self.inner.exhausted {
                    return;
                }
            }
        }
    }
    let mut c = Counter {
        inner: Search {
            h,
            spec,
            missing: init_missing(h),
            placed: vec![false; h.len()],
            pos: vec![usize::MAX; h.len()],
            order: Vec::new(),
            budget,
            exhausted: false,
        },
        count: 0,
    };
    let frontier = Frontier::new(spec);
    c.dfs(0, &frontier);
    (c.count, !c.inner.exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::Kind;

    /// Plain set with add/remove/read — remove here is a *plain update*
    /// (this is the specification under which OR-Set is NOT linearizable).
    struct SetSpec;

    #[derive(Clone, Debug, PartialEq)]
    #[allow(dead_code)]
    enum L {
        Add(u32),
        Rem(u32),
        Read(Vec<u32>),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Read(_) => Kind::Query,
                _ => Kind::Update,
            }
        }
    }

    impl Spec for SetSpec {
        type Label = L;
        type State = Vec<u32>;
        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }
        fn step(&self, s: &Vec<u32>, l: &L) -> Vec<Vec<u32>> {
            match l {
                L::Add(x) => {
                    let mut t = s.clone();
                    if !t.contains(x) {
                        t.push(*x);
                        t.sort_unstable();
                    }
                    vec![t]
                }
                L::Rem(x) => {
                    let t: Vec<u32> = s.iter().copied().filter(|y| y != x).collect();
                    vec![t]
                }
                L::Read(v) => {
                    let mut sorted = v.clone();
                    sorted.sort_unstable();
                    if sorted == *s {
                        vec![s.clone()]
                    } else {
                        vec![]
                    }
                }
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn finds_reordering_witness() {
        // add(1) || add(2), then a read that saw only add(2).
        let mut h = History::new();
        let _a = h.push(OpRecord::new(L::Add(1), r(0)), []);
        let b = h.push(OpRecord::new(L::Add(2), r(1)), []);
        let _q = h.push(OpRecord::new(L::Read(vec![2]), r(1)), [b]);
        let out = search_brute(&h, &SetSpec);
        let lin = match out {
            SearchOutcome::Linearizable(l) => l,
            other => panic!("expected witness, got {other:?}"),
        };
        assert!(h.order_consistent(&lin.order));
    }

    #[test]
    fn refutes_impossible_history() {
        // One replica adds 1 then reads {} while seeing its own add: no
        // linearization can justify the read.
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r(0)), []);
        h.push(OpRecord::new(L::Read(vec![]), r(0)), [a]);
        assert_eq!(search_brute(&h, &SetSpec), SearchOutcome::NotLinearizable);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut h = History::new();
        for i in 0..6 {
            h.push(OpRecord::new(L::Add(i), r(i)), []);
        }
        h.push(OpRecord::new(L::Read(vec![]), r(0)), []);
        assert_eq!(
            search_brute_with_budget(&h, &SetSpec, 1),
            SearchOutcome::BudgetExhausted
        );
    }

    #[test]
    fn exact_budget_still_reports_the_witness() {
        // Regression for the budget off-by-one: a single-update history
        // needs exactly one search node; reaching the completed order on
        // the final node must report the witness, not BudgetExhausted.
        let mut h = History::new();
        h.push(OpRecord::new(L::Add(1), r(0)), []);
        assert!(search_brute_with_budget(&h, &SetSpec, 1).is_linearizable());
        // A two-op chain costs two nodes; the completion itself is free.
        let mut h2 = History::new();
        let a = h2.push(OpRecord::new(L::Add(1), r(0)), []);
        h2.push(OpRecord::new(L::Add(2), r(0)), [a]);
        assert!(search_brute_with_budget(&h2, &SetSpec, 2).is_linearizable());
        assert_eq!(
            search_brute_with_budget(&h2, &SetSpec, 1),
            SearchOutcome::BudgetExhausted
        );
    }

    #[test]
    fn counts_all_witnesses() {
        // Two concurrent adds, no queries: both orders are valid.
        let mut h = History::new();
        h.push(OpRecord::new(L::Add(1), r(0)), []);
        h.push(OpRecord::new(L::Add(2), r(1)), []);
        let (count, complete) = count_linearizations(&h, &SetSpec, u64::MAX);
        assert!(complete);
        assert_eq!(count, 2);
    }

    #[test]
    fn count_respects_visibility() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r(0)), []);
        h.push(OpRecord::new(L::Add(2), r(0)), [a]);
        let (count, complete) = count_linearizations(&h, &SetSpec, u64::MAX);
        assert!(complete);
        assert_eq!(count, 1);
    }

    #[test]
    fn count_with_exact_budget_is_complete() {
        // Regression for the budget off-by-one in the counter: two
        // concurrent adds explore 3 charged nodes (root + one per first
        // placement); the two completed leaves are free. An exact budget
        // must report the exact count as complete.
        let mut h = History::new();
        h.push(OpRecord::new(L::Add(1), r(0)), []);
        h.push(OpRecord::new(L::Add(2), r(1)), []);
        assert_eq!(count_linearizations(&h, &SetSpec, 3), (2, true));
        // One node short: the second branch is cut mid-way.
        assert_eq!(count_linearizations(&h, &SetSpec, 2), (1, false));
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<L> = History::new();
        assert!(search_brute(&h, &SetSpec).is_linearizable());
        assert_eq!(count_linearizations(&h, &SetSpec, 100), (1, true));
    }
}
