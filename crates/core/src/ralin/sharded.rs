//! Sharded compositional search over composed histories (Section 5).
//!
//! A composed history interleaves operations on several objects, and the
//! monolithic complete search ([`super::memo`]) pays for that dearly: its
//! configuration space is (up to memoization) the *product* of the
//! per-object configuration spaces — exponential in the **total** number
//! of concurrent operations, with every specification step cloning the
//! whole vector of per-object abstract states. Theorem 5.5 is what makes
//! a cheaper route sound for the shared-timestamp composition `⊗ts`:
//! RA-linearizability is compositional there, so per-object reasoning
//! suffices. This module exploits exactly that structure:
//!
//! 1. **Project** the composed history into per-object sub-histories
//!    ([`shard_history`]): each shard keeps the operations of one object
//!    with visibility restricted to same-object edges (the projection of
//!    `vis` used throughout Section 5), plus an index map back to the
//!    global history.
//! 2. **Search every shard independently** with the memoized engine,
//!    against the per-object component specification
//!    ([`ShardableSpec::search_shard`]), distributing shards over the
//!    same `RAL_CHECK_THREADS` pool the monolithic engine uses. The cost
//!    is the *sum* of per-object exponentials instead of their product.
//! 3. **Stitch** the per-object witnesses into one global linearization:
//!    a topological merge of `vis ∪ (per-object witness order)`
//!    ([`stitch_witness`]), validated end to end with
//!    [`super::check_linearization`].
//!
//! # Soundness over the unrestricted `⊗`
//!
//! Per-object RA-linearizability does **not** imply composed
//! RA-linearizability under the unrestricted composition `⊗` — Figure 10
//! is the counterexample: both of its shards linearize while the composed
//! history does not. The verdicts here are therefore asymmetric:
//!
//! * a shard **refutation refutes globally** — a global linearization
//!   projects to a valid per-object one (the composed specifications
//!   implementing [`ShardableSpec`] factor into independent per-object
//!   components), so no shard of a linearizable history can refute;
//! * a **Linearizable verdict is only reported once the stitched witness
//!   validates** against the full composed history. When the merge is
//!   cyclic or the stitched order exhibits a violation (as Figure 10
//!   forces), the search **falls back to the whole-history memoized
//!   engine**, so [`search_sharded`] agrees with [`super::search`] on
//!   every history — the sharded path is an optimization, never a
//!   weakening.

use super::check::check_linearization;
use super::memo::{
    effective_threads, env_threads, run_pool, search_with_threads_stats, SearchStats,
};
use super::{monitor, Linearization, SearchOutcome};
use crate::compose::{ComposedLabel, EitherLabel, MultiObjSpec, PairSpec};
use crate::history::History;
use crate::ids::ObjId;
use crate::label::SpecLabel;
use crate::spec::Spec;
use ral_obs as obs;
use std::collections::BTreeMap;

/// One object's projection of a composed history.
#[derive(Clone, Debug)]
pub struct Shard<L> {
    /// The object every operation of this shard belongs to.
    pub obj: ObjId,
    /// The sub-history: this object's operations in generator order, with
    /// visibility restricted to same-object edges.
    pub history: History<L>,
    /// `to_global[local]` is the index of shard operation `local` in the
    /// composed history.
    pub to_global: Vec<usize>,
}

/// Projects a composed history into its per-object sub-histories, in
/// ascending [`ObjId`] order. Objects without operations produce no shard.
///
/// Each shard keeps the composed label type (the object tag is retained so
/// [`ShardableSpec`] implementations can dispatch on it) and the same
/// generator order; predecessor sets are restricted to same-object edges,
/// which is the per-object projection of `vis` Section 5 reasons about.
pub fn shard_history<L: ComposedLabel + Clone + std::fmt::Debug>(h: &History<L>) -> Vec<Shard<L>> {
    // Shards keyed by object id: BTreeMap gives ascending-ObjId order.
    let mut shards: BTreeMap<ObjId, Shard<L>> = BTreeMap::new();
    let mut local_of = vec![usize::MAX; h.len()];
    for (i, op) in h.iter() {
        let obj = op.label.object();
        let shard = shards.entry(obj).or_insert_with(|| Shard {
            obj,
            history: History::new(),
            to_global: Vec::new(),
        });
        let preds: crate::bitset::BitSet = h
            .preds(i)
            .iter()
            .filter(|&p| h.label(p).object() == obj)
            .map(|p| local_of[p])
            .collect();
        local_of[i] = shard.history.push_set(op.clone(), preds);
        shard.to_global.push(i);
    }
    shards.into_values().collect()
}

/// A composed specification whose abstract state factors into independent
/// per-object components, each decidable on its own.
///
/// This is the contract that makes a shard refutation globally sound: the
/// composed frontier after any label sequence must be the product of the
/// per-object frontiers of the sequence's projections (true of
/// [`MultiObjSpec`] and [`PairSpec`], whose steps touch exactly one
/// component). Implementations decide one single-object sub-history with
/// the *component* specification — stripped of the object tag, so shard
/// searches run on per-object states instead of whole composed vectors.
pub trait ShardableSpec: Spec
where
    Self::Label: ComposedLabel,
{
    /// Runs the complete memoized search on one shard (a sub-history whose
    /// operations all belong to `obj`) against the per-object component
    /// specification. `budget` and `threads` as in
    /// [`super::memo::search_with_threads`]; the
    /// returned witness is in shard-local indices.
    fn search_shard(
        &self,
        obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> SearchOutcome;

    /// [`ShardableSpec::search_shard`], also returning the
    /// [`SearchStats`] of the shard walk. The default implementation
    /// delegates to `search_shard` and reports empty stats; the built-in
    /// composed specifications override it so the sharded engine's merged
    /// stats reflect real per-shard work.
    fn search_shard_with_stats(
        &self,
        obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> (SearchOutcome, SearchStats) {
        (
            self.search_shard(obj, shard, budget, threads),
            SearchStats::default(),
        )
    }

    /// Component-level admission: runs `updates` (labels of `obj`, in
    /// candidate order) through the per-object specification and, when
    /// `query` is given, checks that it is admitted afterwards.
    ///
    /// This is what lets the stitched witness be validated in per-object
    /// terms — O(1)-sized component states instead of whole composed
    /// vectors; by the factorization contract the two views agree.
    fn admits_shard(
        &self,
        obj: ObjId,
        updates: &[&Self::Label],
        query: Option<&Self::Label>,
    ) -> bool;
}

impl<S> ShardableSpec for MultiObjSpec<S>
where
    S: Spec + Sync,
    S::Label: Sync,
{
    fn search_shard(
        &self,
        obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> SearchOutcome {
        self.search_shard_with_stats(obj, shard, budget, threads).0
    }

    fn search_shard_with_stats(
        &self,
        _obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> (SearchOutcome, SearchStats) {
        let inner = shard.clone().map(|l| l.label);
        monitor::search_batch_with_stats(&inner, self.inner(), budget, threads)
    }

    fn admits_shard(
        &self,
        _obj: ObjId,
        updates: &[&Self::Label],
        query: Option<&Self::Label>,
    ) -> bool {
        monitor::replay_admits(
            self.inner(),
            updates.iter().map(|l| &l.label),
            query.map(|q| &q.label),
        )
    }
}

impl<S1, S2> ShardableSpec for PairSpec<S1, S2>
where
    S1: Spec + Sync,
    S2: Spec + Sync,
    S1::Label: Sync,
    S2::Label: Sync,
{
    fn search_shard(
        &self,
        obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> SearchOutcome {
        self.search_shard_with_stats(obj, shard, budget, threads).0
    }

    fn search_shard_with_stats(
        &self,
        obj: ObjId,
        shard: &History<Self::Label>,
        budget: u64,
        threads: usize,
    ) -> (SearchOutcome, SearchStats) {
        if obj == ObjId(0) {
            let inner = shard.clone().map(|l| match l {
                EitherLabel::First(a) => a,
                EitherLabel::Second(_) => unreachable!("shard of object 0 holds First labels only"),
            });
            monitor::search_batch_with_stats(&inner, self.first(), budget, threads)
        } else {
            let inner = shard.clone().map(|l| match l {
                EitherLabel::Second(b) => b,
                EitherLabel::First(_) => unreachable!("shard of object 1 holds Second labels only"),
            });
            monitor::search_batch_with_stats(&inner, self.second(), budget, threads)
        }
    }

    fn admits_shard(
        &self,
        obj: ObjId,
        updates: &[&Self::Label],
        query: Option<&Self::Label>,
    ) -> bool {
        if obj == ObjId(0) {
            monitor::replay_admits(
                self.first(),
                updates.iter().map(|l| match l {
                    EitherLabel::First(a) => a,
                    EitherLabel::Second(_) => {
                        unreachable!("object 0 sequence holds First labels only")
                    }
                }),
                query.map(|q| match q {
                    EitherLabel::First(a) => a,
                    EitherLabel::Second(_) => unreachable!("object 0 query must be a First label"),
                }),
            )
        } else {
            monitor::replay_admits(
                self.second(),
                updates.iter().map(|l| match l {
                    EitherLabel::Second(b) => b,
                    EitherLabel::First(_) => {
                        unreachable!("object 1 sequence holds Second labels only")
                    }
                }),
                query.map(|q| match q {
                    EitherLabel::Second(b) => b,
                    EitherLabel::First(_) => unreachable!("object 1 query must be a Second label"),
                }),
            )
        }
    }
}

/// Validates a stitched order against the composed history in per-object
/// terms: conditions (i)–(iii) of Definition 3.5, with every
/// specification step running on one component state instead of the whole
/// composed vector. Equivalent to [`check_linearization`] for any
/// [`ShardableSpec`] by the factorization contract — the composed
/// frontier after a label sequence is the product of the per-object
/// frontiers of its projections, so the update projection is admitted iff
/// each object's projection is, and a query is justified iff every
/// object's visible sub-sequence survives its component specification and
/// the query's own component then admits the query label.
fn validate_stitched<S>(h: &History<S::Label>, spec: &S, order: &[usize]) -> bool
where
    S: ShardableSpec,
    S::Label: ComposedLabel,
{
    let mut pos = vec![usize::MAX; h.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    // (i) consistency with visibility.
    for later in 0..h.len() {
        for earlier in h.preds(later) {
            if pos[earlier] >= pos[later] {
                return false;
            }
        }
    }
    // (ii) update projection admitted, one component at a time.
    let mut updates: BTreeMap<ObjId, Vec<&S::Label>> = BTreeMap::new();
    for &i in order {
        let l = h.label(i);
        if l.is_update() {
            updates.entry(l.object()).or_default().push(l);
        }
    }
    for (&obj, seq) in &updates {
        if !spec.admits_shard(obj, seq, None) {
            return false;
        }
    }
    // (iii) every query justified by its visible updates in seq order.
    for q in 0..h.len() {
        let ql = h.label(q);
        if !ql.is_query() {
            continue;
        }
        let mut visible: Vec<usize> = h
            .preds(q)
            .iter()
            .filter(|&u| h.label(u).is_update())
            .collect();
        visible.sort_by_key(|&u| pos[u]);
        let mut groups: BTreeMap<ObjId, Vec<&S::Label>> = BTreeMap::new();
        for u in visible {
            let l = h.label(u);
            groups.entry(l.object()).or_default().push(l);
        }
        // The query's own component must admit `ql` even when no update of
        // its object is visible.
        groups.entry(ql.object()).or_default();
        for (&obj, seq) in &groups {
            if !spec.admits_shard(obj, seq, (obj == ql.object()).then_some(ql)) {
                return false;
            }
        }
    }
    true
}

/// Topologically merges the global visibility relation with the
/// per-object witness orders into one candidate linearization.
///
/// Edges are `vis` (every direct predecessor edge of the composed
/// history) plus, per shard, the consecutive pairs of its witness mapped
/// back to global indices. Kahn's algorithm takes the smallest ready
/// index first, so the merge is deterministic. Returns `None` when the
/// union is cyclic — which Figure 10 shows does happen under the
/// unrestricted `⊗` even though every shard linearizes on its own.
pub fn stitch_witness<L>(
    h: &History<L>,
    shard_orders: &[(Vec<usize>, &[usize])],
) -> Option<Vec<usize>> {
    let n = h.len();
    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, degree) in indegree.iter_mut().enumerate() {
        for a in h.preds(b) {
            successors[a].push(b);
            *degree += 1;
        }
    }
    for (order, to_global) in shard_orders {
        for pair in order.windows(2) {
            let (a, b) = (to_global[pair[0]], to_global[pair[1]]);
            if !h.sees(b, a) {
                successors[a].push(b);
                indegree[b] += 1;
            }
        }
    }
    crate::compose::kahn_smallest_first(indegree, &successors)
}

/// Sharded complete search with an explicit thread count (`0` =
/// automatic, as for `RAL_CHECK_THREADS`). See the module docs for the
/// decision structure; the outcome agrees with
/// [`super::memo::search_with_threads`] on every
/// history (budgets excepted — shard budgets are per shard, so compare
/// exhaustion only qualitatively across engines).
pub fn search_sharded_with_threads<S>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
    threads: usize,
) -> SearchOutcome
where
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    search_sharded_with_threads_stats(h, spec, budget, threads).0
}

/// [`search_sharded_with_threads`], also returning the merged
/// [`SearchStats`] of every shard walk (plus the monolithic fallback's,
/// when taken). `stats.shards` counts the shards searched and
/// `stats.fallback` reports the Figure 10 regime; determinism caveats as
/// in [`SearchStats`].
pub fn search_sharded_with_threads_stats<S>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
    threads: usize,
) -> (SearchOutcome, SearchStats)
where
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    let t0 = obs::wallclock::now_nanos();
    let _span = obs::span("ralin.search_sharded");
    if h.is_empty() {
        let lin = SearchOutcome::Linearizable(Linearization { order: Vec::new() });
        return (lin, SearchStats::default());
    }
    if budget == 0 {
        return (SearchOutcome::BudgetExhausted, SearchStats::default());
    }
    let shards = shard_history(h);
    if shards.len() <= 1 {
        // One object: sharding adds nothing over the monolithic engine.
        let (out, mut stats) = monitor::search_batch_with_stats(h, spec, budget, threads);
        stats.shards = shards.len() as u64;
        return (out, stats);
    }
    // Shards are independent problems: spread them over the pool, each
    // shard walking sequentially (each gets the full budget — exhaustion
    // is per shard). Results are combined in ascending-object order, so
    // the outcome is thread-count independent.
    let pool = effective_threads(threads, h.len(), shards.len());
    obs::counter("ralin.shards", shards.len() as u64);
    let results = run_pool(pool, shards.len(), |i| {
        let s0 = obs::wallclock::now_nanos();
        let res = spec.search_shard_with_stats(shards[i].obj, &shards[i].history, budget, 1);
        obs::observe(
            "ralin.shard_nanos",
            obs::wallclock::now_nanos().saturating_sub(s0),
        );
        res
    });
    let mut stats = SearchStats::default();
    for (_, shard_stats) in &results {
        stats.merge(shard_stats);
    }
    stats.shards = shards.len() as u64;
    let finish = |outcome: SearchOutcome, mut stats: SearchStats| {
        stats.threads = pool as u64;
        stats.elapsed_nanos = obs::wallclock::now_nanos().saturating_sub(t0);
        (outcome, stats)
    };
    let outcomes: Vec<SearchOutcome> = results.into_iter().map(|(o, _)| o).collect();
    if outcomes.iter().any(SearchOutcome::is_refuted) {
        // A global witness would project to a witness of every shard
        // (ShardableSpec's factorization contract), so this is final.
        return finish(SearchOutcome::NotLinearizable, stats);
    }
    if outcomes
        .iter()
        .any(|o| matches!(o, SearchOutcome::BudgetExhausted))
    {
        return finish(SearchOutcome::BudgetExhausted, stats);
    }
    let shard_orders: Vec<(Vec<usize>, &[usize])> = outcomes
        .into_iter()
        .zip(&shards)
        .map(|(o, shard)| match o {
            SearchOutcome::Linearizable(lin) => (lin.order, shard.to_global.as_slice()),
            _ => unreachable!("refutations and exhaustion handled above"),
        })
        .collect();
    if let Some(order) = stitch_witness(h, &shard_orders) {
        if validate_stitched(h, spec, &order) {
            debug_assert!(check_linearization(h, spec, &order).is_ok());
            return finish(SearchOutcome::Linearizable(Linearization { order }), stats);
        }
    }
    // Every shard linearizes but no global witness could be stitched —
    // the Figure 10 regime. Only the whole-history engine can tell a
    // genuinely non-compositional history from an unlucky stitch.
    stats.fallback = true;
    obs::counter("ralin.fallback", 1);
    let (out, fallback_stats) = search_with_threads_stats(h, spec, budget, threads);
    stats.merge(&fallback_stats);
    finish(out, stats)
}

/// Sharded complete search of a composed history; thread count from
/// `RAL_CHECK_THREADS`. Agrees with [`super::search`] on every history
/// (see the module docs), while paying the sum — not the product — of the
/// per-object search costs.
pub fn search_sharded<S>(h: &History<S::Label>, spec: &S) -> SearchOutcome
where
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    search_sharded_with_budget(h, spec, u64::MAX)
}

/// [`search_sharded`] with a per-shard node budget (the monolithic
/// fallback, when taken, receives the same budget).
pub fn search_sharded_with_budget<S>(h: &History<S::Label>, spec: &S, budget: u64) -> SearchOutcome
where
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
{
    search_sharded_with_threads(h, spec, budget, env_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::ObjLabel;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::{Kind, SpecLabel};
    use crate::ralin::search;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Inc,
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Inc => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    #[derive(Clone, Debug)]
    struct Ctr;

    impl Spec for Ctr {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 1],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn o(i: u32) -> ObjId {
        ObjId(i)
    }

    /// Two counters incremented and read on separate replicas, with a
    /// cross-object visibility edge thrown in.
    fn two_counter_history() -> History<ObjLabel<L>> {
        let mut h = History::new();
        let a = h.push(OpRecord::new(ObjLabel::new(o(0), L::Inc), r(0)), []);
        let b = h.push(OpRecord::new(ObjLabel::new(o(1), L::Inc), r(1)), [a]);
        h.push(OpRecord::new(ObjLabel::new(o(0), L::Read(1)), r(0)), [a]);
        h.push(OpRecord::new(ObjLabel::new(o(1), L::Read(1)), r(1)), [a, b]);
        h
    }

    #[test]
    fn shards_project_same_object_edges_only() {
        let h = two_counter_history();
        let shards = shard_history(&h);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].obj, o(0));
        assert_eq!(shards[0].to_global, vec![0, 2]);
        assert_eq!(shards[1].to_global, vec![1, 3]);
        // The o1 read saw the o0 inc globally; the shard drops that edge.
        assert!(shards[1].history.sees(1, 0));
        assert_eq!(shards[1].history.preds(1).iter().count(), 1);
    }

    #[test]
    fn sharded_agrees_with_monolithic_on_witnesses() {
        let h = two_counter_history();
        let spec = MultiObjSpec::new(Ctr, 2);
        let sharded = search_sharded(&h, &spec);
        assert!(sharded.is_linearizable());
        assert_eq!(
            sharded.is_linearizable(),
            search(&h, &spec).is_linearizable()
        );
        if let SearchOutcome::Linearizable(lin) = sharded {
            assert_eq!(check_linearization(&h, &spec, &lin.order), Ok(()));
        }
    }

    #[test]
    fn shard_refutation_refutes_globally() {
        let mut h = two_counter_history();
        // An impossible read on object 1: its shard refutes, so the whole
        // composed history must refute without consulting object 0.
        h.push(OpRecord::new(ObjLabel::new(o(1), L::Read(9)), r(1)), [1]);
        let spec = MultiObjSpec::new(Ctr, 2);
        assert!(search_sharded(&h, &spec).is_refuted());
        assert!(search(&h, &spec).is_refuted());
    }

    #[test]
    fn outcome_is_thread_count_independent() {
        let h = two_counter_history();
        let spec = MultiObjSpec::new(Ctr, 2);
        let seq = search_sharded_with_threads(&h, &spec, u64::MAX, 1);
        for threads in [2, 3, 8] {
            assert_eq!(
                seq,
                search_sharded_with_threads(&h, &spec, u64::MAX, threads)
            );
        }
    }

    #[test]
    fn empty_and_zero_budget_edges() {
        let h: History<ObjLabel<L>> = History::new();
        let spec = MultiObjSpec::new(Ctr, 2);
        assert!(search_sharded(&h, &spec).is_linearizable());
        let h = two_counter_history();
        assert_eq!(
            search_sharded_with_budget(&h, &spec, 0),
            SearchOutcome::BudgetExhausted
        );
    }

    #[test]
    fn pair_spec_shards_dispatch_to_components() {
        let mut h: History<EitherLabel<L, L>> = History::new();
        let a = h.push(OpRecord::new(EitherLabel::First(L::Inc), r(0)), []);
        let b = h.push(OpRecord::new(EitherLabel::Second(L::Inc), r(1)), []);
        h.push(OpRecord::new(EitherLabel::First(L::Read(1)), r(0)), [a]);
        h.push(OpRecord::new(EitherLabel::Second(L::Read(1)), r(1)), [b]);
        let spec = PairSpec::new(Ctr, Ctr);
        assert!(search_sharded(&h, &spec).is_linearizable());
        // Corrupt the second object's read: the Second shard refutes.
        let mut bad: History<EitherLabel<L, L>> = History::new();
        let a = bad.push(OpRecord::new(EitherLabel::First(L::Inc), r(0)), []);
        let b = bad.push(OpRecord::new(EitherLabel::Second(L::Inc), r(1)), []);
        bad.push(OpRecord::new(EitherLabel::First(L::Read(1)), r(0)), [a]);
        bad.push(OpRecord::new(EitherLabel::Second(L::Read(7)), r(1)), [b]);
        assert!(search_sharded(&bad, &spec).is_refuted());
    }

    /// A history whose shards linearize individually but whose stitched
    /// witness cannot exist: the Figure 10 shape, minimized. The fallback
    /// to the monolithic engine must produce the refutation.
    #[test]
    fn stitch_failure_falls_back_to_monolithic() {
        // Spec whose reads pin the exact per-object order.
        let mut h: History<ObjLabel<L>> = History::new();
        // o0: two concurrent incs; a read on each side pinning opposite
        // orders is impossible — but keep each SHARD consistent and make
        // the conflict purely cross-object via visibility:
        //   o0.inc (x) ; o1.inc (y) sees x ; o0.read(1) sees x and y.
        // plus an o1 read forcing y before the o0 read's justification.
        // Simplest executable check: the composed verdicts agree with the
        // monolithic engine on a visibility chain that the stitch handles.
        let x = h.push(OpRecord::new(ObjLabel::new(o(0), L::Inc), r(0)), []);
        let y = h.push(OpRecord::new(ObjLabel::new(o(1), L::Inc), r(0)), [x]);
        h.push(OpRecord::new(ObjLabel::new(o(0), L::Read(1)), r(1)), [x, y]);
        let spec = MultiObjSpec::new(Ctr, 2);
        assert_eq!(
            search_sharded(&h, &spec).is_linearizable(),
            search(&h, &spec).is_linearizable()
        );
    }

    #[test]
    fn stitch_detects_cycles() {
        // Hand-built contradictory shard orders: shard o0 wants 0 before
        // 2, vis wants 2 before... build a 2-op cycle directly.
        let mut h: History<ObjLabel<L>> = History::new();
        let a = h.push(OpRecord::new(ObjLabel::new(o(0), L::Inc), r(0)), []);
        let b = h.push(OpRecord::new(ObjLabel::new(o(1), L::Inc), r(0)), [a]);
        // vis: a before b. A (fake) shard order demanding b before a
        // across objects cannot be topologically merged.
        let reversed = [b, a];
        let fake: Vec<(Vec<usize>, &[usize])> = vec![(vec![0, 1], &reversed[..])];
        assert_eq!(stitch_witness(&h, &fake), None);
        // The honest orders merge fine.
        let (ga, gb) = ([a], [b]);
        let honest: Vec<(Vec<usize>, &[usize])> = vec![(vec![0], &ga[..]), (vec![0], &gb[..])];
        assert_eq!(stitch_witness(&h, &honest), Some(vec![a, b]));
    }
}
