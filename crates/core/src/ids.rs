//! Identifiers for the semantic domains of Section 3.1: replicas `r ∈ R`,
//! objects `o ∈ O`, operation identifiers `i`, and the unique identifiers
//! sampled by generators (e.g. the tags of OR-Set `add`).

use std::fmt;

/// A replica identifier `r ∈ R`.
///
/// Replicas are numbered densely from zero within a cluster. The derived
/// `Ord` gives the arbitrary-but-fixed replica order the paper uses to break
/// ties between equal timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An object identifier `o ∈ O`, used when composing several objects
/// (Section 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The unique identifier `i` that tags an operation label `o.m(a) ⇒^{i,ts} b`.
///
/// In this implementation an `OpId` doubles as the dense index of the
/// operation inside its [`History`](crate::history::History).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A unique identifier sampled by a generator (`getUniqueIdentifier()` in the
/// OR-Set of Listing 2).
///
/// Uniqueness is guaranteed per cluster by a monotone counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uid(pub u64);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(2).to_string(), "r2");
        assert_eq!(ObjId(1).to_string(), "o1");
        assert_eq!(OpId(7).to_string(), "#7");
        assert_eq!(Uid(9).to_string(), "u9");
    }

    #[test]
    fn replica_order_is_total() {
        assert!(ReplicaId(0) < ReplicaId(1));
        assert!(ObjId(3) > ObjId(2));
        assert!(Uid(1) < Uid(2));
    }
}
