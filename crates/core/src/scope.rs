//! **Small-scope enumeration** — the interface behind `ral-analyze`'s
//! bounded-exhaustive obligation checking.
//!
//! The paper discharges its simulation obligations symbolically; the seeded
//! property suites in `ral-verify` only *sample* them. The middle ground is
//! small-scope analysis: enumerate **every** execution of a CRDT within a
//! bound `k` on the number of update operations — every choice of generator
//! call, origin replica, and message interleaving (which is what determines
//! the timestamps the Lamport discipline can issue) — and check each
//! obligation on each reachable configuration. The small-scope hypothesis
//! (and the paper's own counterexamples, all of which fit in 2–4 operations,
//! e.g. Figures 2, 8 and 10) says that a data type that violates an
//! obligation almost always violates it within a tiny bound.
//!
//! [`SmallScope`] is what a CRDT contributes to that search: the finite call
//! pool to enumerate at each step, and the number of replicas to model. The
//! exploration itself — breadth-first search over cluster configurations,
//! obligation checks, and delta-debugging of counterexamples — lives in the
//! `ral-analyze` crate; implementations for the shipped data types live next
//! to the CRDTs in `ral-crdts`.

use std::fmt::Debug;

/// A finite enumeration of a CRDT's generator calls within a scope bound.
///
/// `k` bounds the number of *update* invocations in an explored execution;
/// queries are exercised separately (they have identity effectors, so the
/// replication obligations quantify over updates). Implementations must keep
/// pools small — the explored state space is exponential in `k` with base
/// proportional to `scope_replicas * scope_calls(..).len()`.
///
/// # Client obligations
///
/// Several data types constrain their callers (Section 3.2): RGA elements
/// must be globally fresh, a 2P-Set element may be added at most once, list
/// anchors must come from the local view. `scope_calls` receives the
/// **op index** — how many update invocations the execution has performed
/// before this one — precisely so pools can respect those obligations: the
/// `i`-th insertion introduces the fresh element `i + 1`, and anchors and
/// removals only mention elements introduced by earlier indices. Calls whose
/// precondition still fails at a particular replica (e.g. an anchor not yet
/// visible there) are refused by the generator and pruned by the search.
pub trait SmallScope {
    /// The generator-call type being enumerated (the CRDT's `Call`).
    type Call: Clone + Debug;

    /// Number of replicas to model at scope `k`.
    ///
    /// Three is the canonical choice for operation-based types: it is the
    /// smallest cluster where two effectors of concurrent operations can be
    /// simultaneously deliverable at a third replica — the configuration the
    /// commutativity obligation quantifies over.
    fn scope_replicas(&self, k: usize) -> usize;

    /// The candidate calls for the `op_index`-th update invocation
    /// (`op_index < k`) of an execution bounded by `k` updates.
    fn scope_calls(&self, op_index: usize, k: usize) -> Vec<Self::Call>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-call toy type exercising the trait surface.
    struct Toy;

    impl SmallScope for Toy {
        type Call = u8;
        fn scope_replicas(&self, _k: usize) -> usize {
            3
        }
        fn scope_calls(&self, op_index: usize, k: usize) -> Vec<u8> {
            assert!(op_index < k);
            vec![0, op_index as u8 + 1]
        }
    }

    #[test]
    fn pools_can_depend_on_the_op_index() {
        assert_eq!(Toy.scope_calls(0, 3), vec![0, 1]);
        assert_eq!(Toy.scope_calls(2, 3), vec![0, 3]);
        assert_eq!(Toy.scope_replicas(3), 3);
    }
}
