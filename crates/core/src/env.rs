//! The workspace's **only** window onto process environment variables.
//!
//! Determinism is the repo's oracle: the same seed must produce byte-identical
//! traces on every machine, so ambient configuration can only enter through a
//! single audited surface. Every `RAL_*` variable is read here, through a
//! typed accessor with a documented default — and `ral-analyze`'s determinism
//! lint fails the CI gate on any `std::env::var` call *outside* this module,
//! which keeps the table below complete by construction.
//!
//! | Variable | Accessor | Default | Meaning |
//! |---|---|---|---|
//! | `RAL_PROP_SEED` | [`prop_seed`] | unset | replay exactly one property case with this seed |
//! | `RAL_PROP_CASES` | [`prop_cases`] | per-suite | run this many property cases |
//! | `RAL_CHECK_THREADS` | [`check_threads`] | `0` (auto) | thread count for the parallel RA-lin search |
//! | `RAL_RUNTIME_THREADS` | [`runtime_threads`] | `0` (sequential) | worker threads for the sharded replication runtime |
//! | `RAL_BENCH_QUICK` | [`bench_quick`] | unset | bench harness quick mode (shorter samples) |
//! | `RAL_BENCH_JSON` | [`bench_json`] | unset | bench harness JSON output path |
//! | `RAL_OBS` | [`obs`] | unset | enable `ral-obs` recording in obs-aware entry points |
//! | `RAL_OBS_OUT` | [`obs_out`] | unset | destination for the Perfetto trace the observability example writes |
//! | `RAL_OBS_CAPACITY` | [`obs_capacity`] | per-lane default | `ral-obs` per-lane event capacity |
//! | `CARGO` | [`cargo`] | `"cargo"` | cargo binary for subprocess smoke tests |
//!
//! All accessors are **read-once-per-call** (no caching): overrides behave
//! the same whether set before launch or mid-test via `std::env::set_var`.
//! A set-but-unparseable value panics instead of silently falling back — a
//! typo'd reproduction seed or thread count must fail loudly.

use std::ffi::OsString;
use std::path::PathBuf;

/// Parses a `u64` that may be decimal or `0x`-prefixed hex.
fn parse_u64(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

/// Reads a `u64` variable; `None` when unset.
///
/// # Panics
///
/// Panics on a set-but-unparseable value: silently ignoring a typo'd
/// override (e.g. a reproduction seed) would let a broken replay "pass".
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match parse_u64(&raw) {
        Some(v) => Some(v),
        None => panic!("invalid {name}={raw:?}: expected a decimal or 0x-prefixed hex u64"),
    }
}

/// `RAL_PROP_SEED` — replay exactly one property-test case with this seed
/// (decimal or `0x`-prefixed hex), as printed by a previous failure report.
///
/// # Panics
///
/// Panics on an unparseable value.
pub fn prop_seed() -> Option<u64> {
    env_u64("RAL_PROP_SEED")
}

/// `RAL_PROP_CASES` — run this many property-test cases instead of the
/// suite's default.
///
/// # Panics
///
/// Panics on an unparseable value.
pub fn prop_cases() -> Option<u64> {
    env_u64("RAL_PROP_CASES")
}

/// Parses a thread-count value. `None` (unset) and `"0"` both mean the
/// variable's documented default (automatic for the checker, sequential
/// for the runtime).
///
/// # Panics
///
/// Panics on an unparseable value — silently ignoring a typo'd override
/// would let "parallel" runs pass sequentially.
pub(crate) fn threads_from(name: &str, raw: Option<String>) -> usize {
    match raw {
        None => 0,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                panic!("invalid {name}={raw:?}: expected a non-negative thread count")
            }
        },
    }
}

/// `RAL_CHECK_THREADS` — thread count for the parallel RA-linearization
/// search. `0` or unset means automatic (sequential for small histories,
/// all available cores above the parallel threshold).
///
/// # Panics
///
/// Panics on an unparseable value.
pub fn check_threads() -> usize {
    threads_from("RAL_CHECK_THREADS", std::env::var("RAL_CHECK_THREADS").ok())
}

/// `RAL_RUNTIME_THREADS` — worker threads for the sharded replication
/// runtime's delivery drains (`ral_runtime::exec`). `0` or unset means
/// sequential delivery on the calling thread — the conservative default:
/// parallel delivery is byte-identical by construction, but opting in is
/// explicit, like every other scaling knob.
///
/// # Panics
///
/// Panics on an unparseable value.
pub fn runtime_threads() -> usize {
    threads_from(
        "RAL_RUNTIME_THREADS",
        std::env::var("RAL_RUNTIME_THREADS").ok(),
    )
}

/// `RAL_BENCH_QUICK` — when set (to anything), the bench harness runs with
/// shorter warmup and fewer samples, as `--quick` does.
pub fn bench_quick() -> bool {
    std::env::var_os("RAL_BENCH_QUICK").is_some()
}

/// `RAL_BENCH_JSON` — default destination for the bench harness's JSON
/// report, overridable per run with `--save <path>`.
pub fn bench_json() -> Option<PathBuf> {
    std::env::var_os("RAL_BENCH_JSON").map(PathBuf::from)
}

/// `RAL_OBS` — when set to anything but `"0"` (or the empty string),
/// obs-aware entry points (the observability example, `ci.sh`) turn on
/// `ral-obs` recording. Recording is *inert* — it never changes a trace
/// or verdict — so this is an output switch, not a behavior switch.
pub fn obs() -> bool {
    match std::env::var("RAL_OBS") {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
        Err(_) => false,
    }
}

/// `RAL_OBS_OUT` — where the observability example writes its Chrome
/// trace-event / Perfetto JSON (its accompanying `OBS_report.json` lands
/// next to it).
pub fn obs_out() -> Option<PathBuf> {
    std::env::var_os("RAL_OBS_OUT").map(PathBuf::from)
}

/// `RAL_OBS_CAPACITY` — override for the `ral-obs` per-lane event
/// capacity (`ral_obs::DEFAULT_CAPACITY` when unset).
///
/// # Panics
///
/// Panics on an unparseable value.
pub fn obs_capacity() -> Option<usize> {
    env_u64("RAL_OBS_CAPACITY").map(|v| v as usize)
}

/// `CARGO` — the cargo binary to use when a test shells out to cargo (set
/// by cargo itself for subprocesses); falls back to `"cargo"` on `PATH`.
pub fn cargo() -> OsString {
    std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64(" 0xAB "), Some(0xAB));
        assert_eq!(parse_u64("0Xff"), Some(0xFF));
        assert_eq!(parse_u64("nope"), None);
        assert_eq!(parse_u64(""), None);
    }

    #[test]
    fn threads_parse_and_default() {
        assert_eq!(threads_from("RAL_CHECK_THREADS", None), 0);
        assert_eq!(threads_from("RAL_CHECK_THREADS", Some("0".into())), 0);
        assert_eq!(threads_from("RAL_RUNTIME_THREADS", Some(" 4 ".into())), 4);
        let caught =
            std::panic::catch_unwind(|| threads_from("RAL_RUNTIME_THREADS", Some("lots".into())));
        assert!(caught.is_err(), "unparseable thread count must panic");
    }

    #[test]
    fn cargo_falls_back_to_path_lookup() {
        // Under `cargo test` the CARGO variable is set; either way the
        // accessor returns something non-empty.
        assert!(!cargo().is_empty());
    }
}
