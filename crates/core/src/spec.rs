//! Sequential specifications (Section 3.2).
//!
//! A specification is presented operationally: an abstract state domain `Φ`,
//! an initial state `ϕ₀`, and a transition relation `ϕ —ℓ→ ϕ′` per label.
//! Transitions may be *nondeterministic* — Wooki's `addBetween(a,b,c)`
//! inserts at any position between `a` and `c`, and `Spec(addAt3)` observes
//! an arbitrary sub-sequence — so [`Spec::step`] returns the set of successor
//! states; an empty set means the label is not admitted (its precondition
//! fails or its return value is wrong).
//!
//! The checker explores the resulting state space with a [`Frontier`]: the
//! set of abstract states reachable by some run of the specification over a
//! prefix of labels. A sequence is *admitted* (`seq ∈ Spec`) iff the frontier
//! stays non-empty.

use crate::label::SpecLabel;
use std::fmt::Debug;

/// A sequential specification: labels, abstract states, and a transition
/// relation.
pub trait Spec {
    /// Specification label type (already query/update classified).
    type Label: SpecLabel + Clone + Debug;
    /// Abstract state domain `Φ`.
    type State: Clone + Debug + PartialEq;

    /// The initial abstract state `ϕ₀`.
    fn initial(&self) -> Self::State;

    /// All successor states of `state` under `label`; empty when the label is
    /// not admitted in `state`.
    fn step(&self, state: &Self::State, label: &Self::Label) -> Vec<Self::State>;
}

/// The set of abstract states reachable by some specification run over the
/// labels fed to [`Frontier::advance`].
///
/// For deterministic specifications the frontier has at most one state; for
/// nondeterministic ones duplicates are pruned with `PartialEq`.
pub struct Frontier<'a, S: Spec> {
    spec: &'a S,
    states: Vec<S::State>,
}

impl<S: Spec> Clone for Frontier<'_, S> {
    fn clone(&self) -> Self {
        Frontier {
            spec: self.spec,
            states: self.states.clone(),
        }
    }
}

impl<S: Spec> Debug for Frontier<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontier")
            .field("states", &self.states)
            .finish()
    }
}

impl<'a, S: Spec> Frontier<'a, S> {
    /// A frontier containing only the initial state.
    pub fn new(spec: &'a S) -> Self {
        Frontier {
            spec,
            states: vec![spec.initial()],
        }
    }

    /// Advances the frontier by one label; returns `false` (and leaves the
    /// frontier empty) if no run admits it.
    pub fn advance(&mut self, label: &S::Label) -> bool {
        let mut next: Vec<S::State> = Vec::new();
        for st in &self.states {
            for succ in self.spec.step(st, label) {
                if !next.contains(&succ) {
                    next.push(succ);
                }
            }
        }
        self.states = next;
        !self.states.is_empty()
    }

    /// Returns `true` if some frontier state admits `label`, without
    /// advancing. Used for justifying queries (condition (iii) of
    /// Definition 3.5).
    pub fn admits(&self, label: &S::Label) -> bool {
        self.states
            .iter()
            .any(|st| !self.spec.step(st, label).is_empty())
    }

    /// The current frontier states.
    pub fn states(&self) -> &[S::State] {
        &self.states
    }

    /// Returns `true` if no run admits the labels consumed so far.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Returns `true` if the label sequence is admitted by the specification
/// (`seq ∈ Spec`).
pub fn admits<'l, S: Spec>(spec: &S, seq: impl IntoIterator<Item = &'l S::Label>) -> bool
where
    S::Label: 'l,
{
    let mut f = Frontier::new(spec);
    for l in seq {
        if !f.advance(l) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Kind;

    /// A register whose write is nondeterministic: it may round up by one.
    struct Fuzzy;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Write(i64),
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Write(_) => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for Fuzzy {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Write(v) => vec![*v, *v + 1],
                L::Read(v) if v == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn frontier_tracks_nondeterminism() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        assert!(f.advance(&L::Write(10)));
        assert_eq!(f.states().len(), 2);
        assert!(f.admits(&L::Read(10)));
        assert!(f.admits(&L::Read(11)));
        assert!(!f.admits(&L::Read(12)));
    }

    #[test]
    fn frontier_dedups() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        f.advance(&L::Write(5));
        f.advance(&L::Write(5));
        // {5,6} x write(5) = {5,6} again, deduplicated
        assert_eq!(f.states().len(), 2);
    }

    #[test]
    fn admits_sequences() {
        let spec = Fuzzy;
        assert!(admits(&spec, &[L::Write(1), L::Read(2)]));
        assert!(!admits(&spec, &[L::Write(1), L::Read(3)]));
        assert!(admits(&spec, &[]));
    }

    #[test]
    fn rejection_is_sticky() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        assert!(!f.advance(&L::Read(9)));
        assert!(f.is_empty());
        assert!(!f.advance(&L::Write(9)));
    }
}
