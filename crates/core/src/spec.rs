//! Sequential specifications (Section 3.2).
//!
//! A specification is presented operationally: an abstract state domain `Φ`,
//! an initial state `ϕ₀`, and a transition relation `ϕ —ℓ→ ϕ′` per label.
//! Transitions may be *nondeterministic* — Wooki's `addBetween(a,b,c)`
//! inserts at any position between `a` and `c`, and `Spec(addAt3)` observes
//! an arbitrary sub-sequence — so [`Spec::step`] returns the set of successor
//! states; an empty set means the label is not admitted (its precondition
//! fails or its return value is wrong).
//!
//! The checker explores the resulting state space with a [`Frontier`]: the
//! set of abstract states reachable by some run of the specification over a
//! prefix of labels. A sequence is *admitted* (`seq ∈ Spec`) iff the frontier
//! stays non-empty.

use crate::label::SpecLabel;
use std::fmt::{Debug, Write as _};
use std::hash::{Hash, Hasher};

/// A sequential specification: labels, abstract states, and a transition
/// relation.
pub trait Spec {
    /// Specification label type (already query/update classified).
    type Label: SpecLabel + Clone + Debug;
    /// Abstract state domain `Φ`.
    type State: Clone + Debug + PartialEq;

    /// The initial abstract state `ϕ₀`.
    fn initial(&self) -> Self::State;

    /// All successor states of `state` under `label`; empty when the label is
    /// not admitted in `state`.
    fn step(&self, state: &Self::State, label: &Self::Label) -> Vec<Self::State>;

    /// A 64-bit fingerprint of an abstract state, used by the memoized
    /// checker ([`crate::ralin::search`]) to key search configurations.
    ///
    /// Contract: **equal states (`PartialEq`) must produce equal
    /// fingerprints**. Unequal states *may* collide — the memo table
    /// verifies candidates with full state equality, so collisions only
    /// cost lookups, never soundness.
    ///
    /// The default hashes the `Debug` rendering, which satisfies the
    /// contract for derived `Debug` impls (equal values render
    /// identically). Override with [`fingerprint`] when `State: Hash` —
    /// it avoids formatting and is what every `ral_spec` type does.
    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        let mut h = Fnv64::new();
        let _ = write!(&mut h, "{state:?}");
        h.finish()
    }
}

// A specification can be used through a shared reference. This is what lets
// the batch search entry points drive a borrowing `Monitor<&S>` without
// taking ownership of the caller's spec. Delegates every method so
// `state_fingerprint` overrides are preserved.
impl<S: Spec> Spec for &S {
    type Label = S::Label;
    type State = S::State;

    fn initial(&self) -> Self::State {
        (**self).initial()
    }

    fn step(&self, state: &Self::State, label: &Self::Label) -> Vec<Self::State> {
        (**self).step(state, label)
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        (**self).state_fingerprint(state)
    }
}

/// FNV-1a, 64-bit: the workspace's dependency-free deterministic hasher.
///
/// Used for state fingerprints and memo keys. Unlike
/// `std::collections::hash_map::DefaultHasher`, its output is stable
/// across processes for byte-identical input.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        Hasher::write(self, s.as_bytes());
        Ok(())
    }
}

/// Fingerprints any hashable value with [`Fnv64`] — the fast path for
/// [`Spec::state_fingerprint`] overrides when `State: Hash`.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// SplitMix64's finalizer: a cheap bijective bit mixer, used to spread
/// fingerprints before order-independent combination.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advances a duplicate-free state *set* by one label: the union of
/// [`Spec::step`] over every state, deduplicated with `PartialEq`. An empty
/// result means no run admits the label.
///
/// This is the single transition primitive shared by [`Frontier`], the
/// memoized checker, and the incremental monitor
/// ([`crate::ralin::monitor`]) — they all hold bare state slices and step
/// them through here so the dedup discipline (and therefore every
/// canonical hash) is identical across engines.
pub(crate) fn advance_states<S: Spec>(
    spec: &S,
    states: &[S::State],
    label: &S::Label,
) -> Vec<S::State> {
    let mut next: Vec<S::State> = Vec::new();
    for st in states {
        for succ in spec.step(st, label) {
            if !next.contains(&succ) {
                next.push(succ);
            }
        }
    }
    next
}

/// Returns `true` if some state in the set admits `label` (has at least one
/// successor), without advancing.
pub(crate) fn states_admit<S: Spec>(spec: &S, states: &[S::State], label: &S::Label) -> bool {
    states.iter().any(|st| !spec.step(st, label).is_empty())
}

/// An order-independent 64-bit hash of a state *set*: two slices holding the
/// same states in any order hash identically. The canonical-hash half of
/// both search engines' configuration keys; key equality is always verified
/// with [`states_set_eq`] afterwards, so collisions are harmless.
pub(crate) fn states_canonical_hash<S: Spec>(spec: &S, states: &[S::State]) -> u64 {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for st in states {
        let m = mix64(spec.state_fingerprint(st));
        sum = sum.wrapping_add(m);
        xor ^= m.rotate_left(31);
    }
    mix64(sum ^ xor.rotate_left(7) ^ (states.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Set equality of two duplicate-free state slices.
pub(crate) fn states_set_eq<St: PartialEq>(a: &[St], b: &[St]) -> bool {
    a.len() == b.len() && a.iter().all(|st| b.contains(st))
}

/// The set of abstract states reachable by some specification run over the
/// labels fed to [`Frontier::advance`].
///
/// For deterministic specifications the frontier has at most one state; for
/// nondeterministic ones duplicates are pruned with `PartialEq`.
pub struct Frontier<'a, S: Spec> {
    spec: &'a S,
    states: Vec<S::State>,
}

impl<S: Spec> Clone for Frontier<'_, S> {
    fn clone(&self) -> Self {
        Frontier {
            spec: self.spec,
            states: self.states.clone(),
        }
    }
}

impl<S: Spec> Debug for Frontier<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontier")
            .field("states", &self.states)
            .finish()
    }
}

impl<'a, S: Spec> Frontier<'a, S> {
    /// A frontier containing only the initial state.
    pub fn new(spec: &'a S) -> Self {
        Frontier {
            spec,
            states: vec![spec.initial()],
        }
    }

    /// Advances the frontier by one label; returns `false` (and leaves the
    /// frontier empty) if no run admits it.
    pub fn advance(&mut self, label: &S::Label) -> bool {
        self.states = advance_states(self.spec, &self.states, label);
        !self.states.is_empty()
    }

    /// Returns `true` if some frontier state admits `label`, without
    /// advancing. Used for justifying queries (condition (iii) of
    /// Definition 3.5).
    pub fn admits(&self, label: &S::Label) -> bool {
        states_admit(self.spec, &self.states, label)
    }

    /// The current frontier states.
    pub fn states(&self) -> &[S::State] {
        &self.states
    }

    /// An order-independent 64-bit hash of the frontier's state *set*: two
    /// frontiers holding the same states in any order hash identically.
    ///
    /// This is the canonical-hash half of the memoized checker's
    /// configuration key; equality of keys is later verified with
    /// [`Frontier::states_set_eq`], so hash collisions are harmless.
    pub fn canonical_hash(&self) -> u64 {
        states_canonical_hash(self.spec, &self.states)
    }

    /// Returns `true` if this frontier holds exactly the states in `other`
    /// (as sets; both sides are duplicate-free by construction).
    pub fn states_set_eq(&self, other: &[S::State]) -> bool {
        states_set_eq(&self.states, other)
    }

    /// Returns `true` if no run admits the labels consumed so far.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Returns `true` if the label sequence is admitted by the specification
/// (`seq ∈ Spec`).
pub fn admits<'l, S: Spec>(spec: &S, seq: impl IntoIterator<Item = &'l S::Label>) -> bool
where
    S::Label: 'l,
{
    let mut f = Frontier::new(spec);
    for l in seq {
        if !f.advance(l) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Kind;

    /// A register whose write is nondeterministic: it may round up by one.
    struct Fuzzy;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Write(i64),
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Write(_) => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for Fuzzy {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Write(v) => vec![*v, *v + 1],
                L::Read(v) if v == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn frontier_tracks_nondeterminism() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        assert!(f.advance(&L::Write(10)));
        assert_eq!(f.states().len(), 2);
        assert!(f.admits(&L::Read(10)));
        assert!(f.admits(&L::Read(11)));
        assert!(!f.admits(&L::Read(12)));
    }

    #[test]
    fn frontier_dedups() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        f.advance(&L::Write(5));
        f.advance(&L::Write(5));
        // {5,6} x write(5) = {5,6} again, deduplicated
        assert_eq!(f.states().len(), 2);
    }

    #[test]
    fn admits_sequences() {
        let spec = Fuzzy;
        assert!(admits(&spec, &[L::Write(1), L::Read(2)]));
        assert!(!admits(&spec, &[L::Write(1), L::Read(3)]));
        assert!(admits(&spec, &[]));
    }

    #[test]
    fn rejection_is_sticky() {
        let spec = Fuzzy;
        let mut f = Frontier::new(&spec);
        assert!(!f.advance(&L::Read(9)));
        assert!(f.is_empty());
        assert!(!f.advance(&L::Write(9)));
    }

    #[test]
    fn state_fingerprint_default_respects_equality() {
        let spec = Fuzzy;
        assert_eq!(spec.state_fingerprint(&42), spec.state_fingerprint(&42));
        assert_ne!(spec.state_fingerprint(&42), spec.state_fingerprint(&43));
        // The Hash-based fast path agrees with itself, too.
        assert_eq!(fingerprint(&42i64), fingerprint(&42i64));
        assert_ne!(fingerprint(&42i64), fingerprint(&43i64));
    }

    /// A spec whose write order permutes the frontier's state vector: the
    /// canonical hash and set equality must not care.
    struct TwoWay;

    impl Spec for TwoWay {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                // Successors listed argument-first, so `write(5)` yields
                // the frontier `[5, -5]` and `write(-5)` yields `[-5, 5]`:
                // same set, different order.
                L::Write(v) => vec![*v, -*v],
                L::Read(v) if v == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn canonical_hash_is_order_independent() {
        let spec = TwoWay;
        let mut a = Frontier::new(&spec);
        let mut b = Frontier::new(&spec);
        a.advance(&L::Write(5)); // states [5, -5]
        b.advance(&L::Write(-5)); // states [-5, 5]
        assert!(a.states_set_eq(b.states()));
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let mut c = Frontier::new(&spec);
        c.advance(&L::Write(6));
        assert!(!a.states_set_eq(c.states()));
        assert_ne!(a.canonical_hash(), c.canonical_hash());
    }
}
