//! Object composition `⊗` at the specification level (Section 5).
//!
//! The composition of specifications `Spec₁ ⊗ Spec₂` is the set of
//! interleavings whose per-object projections are admitted by the component
//! specifications. Two forms are provided:
//!
//! * [`MultiObjSpec`] — `n` objects of the *same* data type, labelled by
//!   [`ObjLabel`]; this is what Figures 9 (two OR-Sets) and 10 (two RGAs)
//!   need;
//! * [`PairSpec`] — two objects of *different* data types, labelled by
//!   [`EitherLabel`].
//!
//! Whether the shared timestamp generator of `⊗ts` (Section 5.3) is used is a
//! property of the *runtime* (the cluster either shares one Lamport clock per
//! replica across objects or keeps one per object); the specification-side
//! composition is the same in both cases.

use crate::history::History;
use crate::ids::ObjId;
use crate::label::{Kind, Rewrite, Rewritten, SpecLabel};
use crate::ralin::{Linearization, Strategy, Violation};
use crate::spec::Spec;
use crate::timestamp::Ts;
use std::fmt::Debug;

/// A label of a composed history: an inner label tagged with the object it
/// belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjLabel<L> {
    /// The object the operation was issued on.
    pub obj: ObjId,
    /// The object-local label.
    pub label: L,
}

impl<L> ObjLabel<L> {
    /// Creates a label for object `obj`.
    pub fn new(obj: ObjId, label: L) -> Self {
        ObjLabel { obj, label }
    }
}

impl<L: SpecLabel> SpecLabel for ObjLabel<L> {
    fn kind(&self) -> Kind {
        self.label.kind()
    }
}

/// The composition `Spec ⊗ … ⊗ Spec` of `n` objects of one data type.
///
/// The abstract state is the vector of per-object abstract states; a step on
/// object `o` touches only component `o`.
#[derive(Clone, Debug)]
pub struct MultiObjSpec<S> {
    spec: S,
    objects: usize,
}

impl<S: Spec> MultiObjSpec<S> {
    /// Composes `objects` instances of `spec`.
    pub fn new(spec: S, objects: usize) -> Self {
        MultiObjSpec { spec, objects }
    }

    /// Number of composed objects.
    pub fn objects(&self) -> usize {
        self.objects
    }

    /// The underlying per-object specification.
    pub fn inner(&self) -> &S {
        &self.spec
    }
}

impl<S: Spec> Spec for MultiObjSpec<S> {
    type Label = ObjLabel<S::Label>;
    type State = Vec<S::State>;

    fn initial(&self) -> Self::State {
        (0..self.objects).map(|_| self.spec.initial()).collect()
    }

    fn step(&self, state: &Self::State, label: &Self::Label) -> Vec<Self::State> {
        let o = label.obj.0 as usize;
        if o >= state.len() {
            return Vec::new();
        }
        self.spec
            .step(&state[o], &label.label)
            .into_iter()
            .map(|succ| {
                let mut next = state.clone();
                next[o] = succ;
                next
            })
            .collect()
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        // Positional fold over the per-object fingerprints, so composed
        // searches inherit the components' fast paths.
        state.iter().fold(0xcbf2_9ce4_8422_2325, |acc, s| {
            acc.rotate_left(7) ^ self.spec.state_fingerprint(s).wrapping_mul(0x100_0000_01B3)
        })
    }
}

/// Lifts a per-object query-update rewriting to composed labels.
#[derive(Clone, Debug, Default)]
pub struct MultiObjRewrite<R> {
    inner: R,
}

impl<R> MultiObjRewrite<R> {
    /// Wraps the per-object rewriting `inner`.
    pub fn new(inner: R) -> Self {
        MultiObjRewrite { inner }
    }
}

impl<L, R: Rewrite<L>> Rewrite<ObjLabel<L>> for MultiObjRewrite<R> {
    type Out = ObjLabel<R::Out>;

    fn rewrite(&self, label: &ObjLabel<L>) -> Rewritten<Self::Out> {
        match self.inner.rewrite(&label.label) {
            Rewritten::One(l) => Rewritten::One(ObjLabel::new(label.obj, l)),
            Rewritten::Split { query, update } => Rewritten::Split {
                query: ObjLabel::new(label.obj, query),
                update: ObjLabel::new(label.obj, update),
            },
        }
    }
}

/// A label of a two-data-type composition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EitherLabel<A, B> {
    /// An operation on the first object.
    First(A),
    /// An operation on the second object.
    Second(B),
}

impl<A: SpecLabel, B: SpecLabel> SpecLabel for EitherLabel<A, B> {
    fn kind(&self) -> Kind {
        match self {
            EitherLabel::First(a) => a.kind(),
            EitherLabel::Second(b) => b.kind(),
        }
    }
}

/// The composition `Spec₁ ⊗ Spec₂` of two different data types.
#[derive(Clone, Debug)]
pub struct PairSpec<S1, S2> {
    first: S1,
    second: S2,
}

impl<S1: Spec, S2: Spec> PairSpec<S1, S2> {
    /// Composes `first ⊗ second`.
    pub fn new(first: S1, second: S2) -> Self {
        PairSpec { first, second }
    }

    /// The first component specification.
    pub fn first(&self) -> &S1 {
        &self.first
    }

    /// The second component specification.
    pub fn second(&self) -> &S2 {
        &self.second
    }
}

impl<S1: Spec, S2: Spec> Spec for PairSpec<S1, S2> {
    type Label = EitherLabel<S1::Label, S2::Label>;
    type State = (S1::State, S2::State);

    fn initial(&self) -> Self::State {
        (self.first.initial(), self.second.initial())
    }

    fn step(&self, state: &Self::State, label: &Self::Label) -> Vec<Self::State> {
        match label {
            EitherLabel::First(l) => self
                .first
                .step(&state.0, l)
                .into_iter()
                .map(|s| (s, state.1.clone()))
                .collect(),
            EitherLabel::Second(l) => self
                .second
                .step(&state.1, l)
                .into_iter()
                .map(|s| (state.0.clone(), s))
                .collect(),
        }
    }

    fn state_fingerprint(&self, state: &Self::State) -> u64 {
        self.first
            .state_fingerprint(&state.0)
            .rotate_left(31)
            .wrapping_mul(0x100_0000_01B3)
            ^ self.second.state_fingerprint(&state.1)
    }
}

/// The per-object virtual timestamp `ts_h(ℓ)` of operation `i`: its own
/// timestamp, or the maximal timestamp among *same-object* operations
/// visible to it.
///
/// In a composed history the global visibility relation is not transitive
/// (causal delivery holds per object, Section 5.1), so the timestamp-order
/// witness must not compare timestamps across objects.
pub fn object_virtual_ts<L>(h: &History<ObjLabel<L>>, i: usize) -> Option<Ts> {
    if let Some(ts) = h.op(i).ts {
        return Some(ts);
    }
    let obj = h.label(i).obj;
    h.preds(i)
        .iter()
        .filter(|&p| h.label(p).obj == obj)
        .fold(None, |acc, p| crate::timestamp::max_ts(acc, h.op(p).ts))
}

/// Builds the composed timestamp-order linearization: a topological sort of
/// the global visibility relation together with, per object, the order of
/// (virtual) timestamps (Lemma 5.4 / Theorem 5.5). Ties are broken by
/// generator order.
///
/// Returns `None` when `vis ∪ ≺h` is cyclic — which Theorem 5.5 rules out
/// for the shared-timestamp composition `⊗ts`, but which does happen under
/// the unrestricted `⊗` (Figure 10).
pub fn composed_timestamp_order<L>(h: &History<ObjLabel<L>>) -> Option<Vec<usize>> {
    let n = h.len();
    // Only operations that *generate* timestamps are ordered by them.
    // Timestamp-less operations (queries, tombstone removes) are
    // position-insensitive — condition (iii) only constrains the relative
    // order of the updates visible to a query — so visibility alone places
    // them; adding virtual-timestamp edges would create spurious cycles
    // through non-transitive cross-object visibility.
    let keys: Vec<Option<Ts>> = (0..n).map(|i| h.op(i).ts).collect();
    // successors[a] lists b with an edge a → b; indegree counts edges into b.
    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, degree) in indegree.iter_mut().enumerate() {
        for a in h.preds(b) {
            successors[a].push(b);
            *degree += 1;
        }
    }
    // Per object, sort the timestamped operations once and chain
    // consecutive timestamp levels — a transitive reduction of the
    // all-pairs `ts_a < ts_b` edge set (same reachability closure, so
    // Kahn's smallest-ready-first walk below returns the identical
    // witness), built in O(m log m) per object instead of O(n²) overall.
    // Edges already present as visibility edges are skipped, as before.
    let mut by_obj: std::collections::BTreeMap<crate::ids::ObjId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, key) in keys.iter().enumerate() {
        if key.is_some() {
            by_obj.entry(h.label(i).obj).or_default().push(i);
        }
    }
    for ops in by_obj.values_mut() {
        ops.sort_by_key(|&i| keys[i]);
        // Equal timestamps (possible only in hand-built histories — the
        // runtime's Lamport pairs are unique) form one level; each level
        // is linked fully to the next so the closure stays exact.
        let mut level_start = 0;
        let mut next_start = 0;
        while next_start < ops.len() {
            let level_key = keys[ops[next_start]];
            let level_end =
                next_start + ops[next_start..].partition_point(|&i| keys[i] == level_key);
            if next_start > 0 {
                for &a in &ops[level_start..next_start] {
                    for &b in &ops[next_start..level_end] {
                        if !h.sees(b, a) {
                            successors[a].push(b);
                            indegree[b] += 1;
                        }
                    }
                }
            }
            level_start = next_start;
            next_start = level_end;
        }
    }
    kahn_smallest_first(indegree, &successors)
}

/// Kahn's algorithm over an explicit edge list, always taking the
/// smallest ready index first — the tie-break every deterministic witness
/// in this crate relies on (it yields the lexicographically smallest
/// linear extension, a function of the reachability relation alone, not
/// of the particular edge set). Returns `None` when the graph is cyclic.
///
/// Shared by [`composed_timestamp_order`] and the sharded checker's
/// witness stitching ([`crate::ralin::sharded`]), so the tie-break rule
/// cannot drift between the guided and stitched witnesses.
pub(crate) fn kahn_smallest_first(
    mut indegree: Vec<usize>,
    successors: &[Vec<usize>],
) -> Option<Vec<usize>> {
    let n = indegree.len();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(a)) = ready.pop() {
        order.push(a);
        for &b in &successors[a] {
            indegree[b] -= 1;
            if indegree[b] == 0 {
                ready.push(std::cmp::Reverse(b));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Checks a composed history with the appropriate guided witness: index
/// order for [`Strategy::ExecutionOrder`] objects, the topological witness
/// of [`composed_timestamp_order`] for [`Strategy::TimestampOrder`].
///
/// # Errors
///
/// Returns the violation exhibited by the witness;
/// [`Violation::InconsistentWithVisibility`] with both fields `usize::MAX`
/// signals a `vis ∪ ≺h` cycle (no witness exists at all).
pub fn check_composed<S>(
    h: &History<S::Label>,
    spec: &S,
    strategy: Strategy,
) -> Result<Linearization, Violation>
where
    S: Spec,
    S::Label: ComposedLabel,
{
    let order = match strategy {
        Strategy::ExecutionOrder => (0..h.len()).collect(),
        Strategy::TimestampOrder => {
            let tagged = project_objects(h);
            match composed_timestamp_order(&tagged) {
                Some(order) => order,
                None => {
                    return Err(Violation::InconsistentWithVisibility {
                        earlier: usize::MAX,
                        later: usize::MAX,
                    })
                }
            }
        }
    };
    crate::ralin::check_linearization(h, spec, &order)?;
    Ok(Linearization { order })
}

/// A label that knows which object it belongs to (implemented by
/// [`ObjLabel`] and [`EitherLabel`]).
pub trait ComposedLabel: SpecLabel {
    /// The object of the operation.
    fn object(&self) -> ObjId;
}

impl<L: SpecLabel> ComposedLabel for ObjLabel<L> {
    fn object(&self) -> ObjId {
        self.obj
    }
}

impl<A: SpecLabel, B: SpecLabel> ComposedLabel for EitherLabel<A, B> {
    fn object(&self) -> ObjId {
        match self {
            EitherLabel::First(_) => ObjId(0),
            EitherLabel::Second(_) => ObjId(1),
        }
    }
}

/// Freely composes `k` independent single-object histories into one
/// composed history over `k` disjoint objects: operations are interleaved
/// round-robin in generator order, each keeping its within-object
/// visibility and gaining no cross-object edges (the composition `⊗` of
/// histories that never communicated).
///
/// This is the scenario-diversity workhorse for compositional checking:
/// it turns any per-type history generator into a `MultiObjSpec`-shaped
/// workload, for state-based types just as for op-based ones.
pub fn compose_disjoint<L: Clone + Debug>(parts: &[History<L>]) -> History<ObjLabel<L>> {
    let mut out = History::new();
    let mut maps: Vec<Vec<usize>> = parts.iter().map(|h| Vec::with_capacity(h.len())).collect();
    let mut next: Vec<usize> = vec![0; parts.len()];
    loop {
        let mut progressed = false;
        for (o, part) in parts.iter().enumerate() {
            if next[o] < part.len() {
                let i = next[o];
                next[o] += 1;
                let preds: crate::bitset::BitSet =
                    part.preds(i).iter().map(|p| maps[o][p]).collect();
                let record = part
                    .op(i)
                    .clone()
                    .map(|l| ObjLabel::new(ObjId(o as u32), l));
                maps[o].push(out.push_set(record, preds));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

fn project_objects<L: ComposedLabel + Clone + Debug>(h: &History<L>) -> History<ObjLabel<()>> {
    let mut out = History::new();
    for (i, op) in h.iter() {
        let record = crate::history::OpRecord {
            label: ObjLabel::new(op.label.object(), ()),
            replica: op.replica,
            ts: op.ts,
        };
        out.push_set(record, h.preds(i).clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, OpRecord};
    use crate::ids::ReplicaId;
    use crate::ralin::{search, SearchOutcome};

    /// Grow-only counter spec for testing.
    #[derive(Clone, Debug)]
    struct Ctr;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Inc,
        Read(i64),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Inc => Kind::Update,
                L::Read(_) => Kind::Query,
            }
        }
    }

    impl Spec for Ctr {
        type Label = L;
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn step(&self, s: &i64, l: &L) -> Vec<i64> {
            match l {
                L::Inc => vec![s + 1],
                L::Read(k) if k == s => vec![*s],
                L::Read(_) => vec![],
            }
        }
    }

    #[test]
    fn multi_obj_dispatches() {
        let spec = MultiObjSpec::new(Ctr, 2);
        let st = spec.initial();
        assert_eq!(st, vec![0, 0]);
        let st = spec
            .step(&st, &ObjLabel::new(ObjId(1), L::Inc))
            .pop()
            .unwrap();
        assert_eq!(st, vec![0, 1]);
        assert!(!spec
            .step(&st, &ObjLabel::new(ObjId(1), L::Read(1)))
            .is_empty());
        assert!(spec
            .step(&st, &ObjLabel::new(ObjId(0), L::Read(1)))
            .is_empty());
    }

    #[test]
    fn multi_obj_rejects_out_of_range() {
        let spec = MultiObjSpec::new(Ctr, 1);
        let st = spec.initial();
        assert!(spec.step(&st, &ObjLabel::new(ObjId(5), L::Inc)).is_empty());
    }

    #[test]
    fn composed_history_search() {
        // Two counters, each incremented once on different replicas; reads
        // observe per-object values.
        let spec = MultiObjSpec::new(Ctr, 2);
        let mut h = History::new();
        let a = h.push(
            OpRecord::new(ObjLabel::new(ObjId(0), L::Inc), ReplicaId(0)),
            [],
        );
        let b = h.push(
            OpRecord::new(ObjLabel::new(ObjId(1), L::Inc), ReplicaId(1)),
            [],
        );
        h.push(
            OpRecord::new(ObjLabel::new(ObjId(0), L::Read(1)), ReplicaId(0)),
            [a],
        );
        h.push(
            OpRecord::new(ObjLabel::new(ObjId(1), L::Read(1)), ReplicaId(1)),
            [b],
        );
        assert!(matches!(search(&h, &spec), SearchOutcome::Linearizable(_)));
    }

    #[test]
    fn pair_spec_dispatches() {
        let spec = PairSpec::new(Ctr, Ctr);
        let st = spec.initial();
        let st = spec.step(&st, &EitherLabel::First(L::Inc)).pop().unwrap();
        assert_eq!(st, (1, 0));
        assert!(!spec
            .step(&st, &EitherLabel::<L, L>::Second(L::Read(0)))
            .is_empty());
        assert!(spec
            .step(&st, &EitherLabel::<L, L>::Second(L::Read(1)))
            .is_empty());
    }

    #[test]
    fn composed_to_witness_and_cycle_detection() {
        use crate::history::OpRecord;
        use crate::timestamp::Ts;

        // Two objects; real-timestamped ops must sort per object, with
        // visibility bridging them.
        let mut h: History<ObjLabel<L>> = History::new();
        let a = h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(0), L::Inc),
                ReplicaId(0),
                Ts::new(2, ReplicaId(0)),
            ),
            [],
        );
        let b = h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(0), L::Inc),
                ReplicaId(1),
                Ts::new(1, ReplicaId(1)),
            ),
            [],
        );
        let c = h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(1), L::Inc),
                ReplicaId(0),
                Ts::new(1, ReplicaId(0)),
            ),
            [a],
        );
        let order = composed_timestamp_order(&h).expect("acyclic");
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        // Same-object ts order: b (ts 1) before a (ts 2); vis: a before c.
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(c));

        // A cycle: o0 wants x before y (timestamps) but y is visible to x.
        let mut h: History<ObjLabel<L>> = History::new();
        let y = h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(0), L::Inc),
                ReplicaId(0),
                Ts::new(5, ReplicaId(0)),
            ),
            [],
        );
        h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(0), L::Inc),
                ReplicaId(1),
                Ts::new(1, ReplicaId(1)),
            ),
            [y],
        );
        assert_eq!(composed_timestamp_order(&h), None);
    }

    #[test]
    fn object_virtual_ts_is_per_object() {
        use crate::history::OpRecord;
        use crate::timestamp::Ts;

        let mut h: History<ObjLabel<L>> = History::new();
        let big = h.push(
            OpRecord::with_ts(
                ObjLabel::new(ObjId(1), L::Inc),
                ReplicaId(0),
                Ts::new(9, ReplicaId(0)),
            ),
            [],
        );
        // A read of object 0 that saw the big-timestamped o1 op: its
        // per-object virtual timestamp stays ⊥.
        let q = h.push(
            OpRecord::new(ObjLabel::new(ObjId(0), L::Read(0)), ReplicaId(0)),
            [big],
        );
        assert_eq!(object_virtual_ts(&h, q), None);
        // The global virtual timestamp, by contrast, picks it up.
        assert_eq!(h.virtual_ts(q), Some(Ts::new(9, ReplicaId(0))));
    }

    #[test]
    fn obj_label_kind_passthrough() {
        assert_eq!(ObjLabel::new(ObjId(0), L::Inc).kind(), Kind::Update);
        assert_eq!(EitherLabel::<L, L>::Second(L::Read(0)).kind(), Kind::Query);
    }

    /// The seed-era all-pairs timestamp-edge construction, kept verbatim
    /// as the regression oracle for the consecutive-chain rewrite in
    /// [`composed_timestamp_order`]: the chained edge set is a transitive
    /// reduction, so Kahn's smallest-ready-first walk must return the
    /// bit-identical witness.
    fn composed_timestamp_order_naive<L>(h: &History<ObjLabel<L>>) -> Option<Vec<usize>> {
        let n = h.len();
        let keys: Vec<Option<Ts>> = (0..n).map(|i| h.op(i).ts).collect();
        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, degree) in indegree.iter_mut().enumerate() {
            for a in h.preds(b) {
                successors[a].push(b);
                *degree += 1;
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a != b
                    && h.label(a).obj == h.label(b).obj
                    && keys[a].is_some()
                    && keys[a] < keys[b]
                    && !h.sees(b, a)
                {
                    successors[a].push(b);
                    indegree[b] += 1;
                }
            }
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(a)) = ready.pop() {
            order.push(a);
            for &b in &successors[a] {
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    ready.push(std::cmp::Reverse(b));
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    #[test]
    fn chained_timestamp_edges_match_the_all_pairs_oracle() {
        use crate::rng::Rng;

        // Random composed histories: mixed objects, sparse timestamps
        // (including duplicates, which hand-built histories may contain),
        // random visibility over earlier operations.
        for seed in 0..200u64 {
            let mut rng = Rng::seed_from_u64(0xC0DE + seed);
            let n = rng.random_range(1..14usize);
            let mut h: History<ObjLabel<L>> = History::new();
            for i in 0..n {
                let obj = ObjId(rng.random_range(0..3u32));
                let replica = ReplicaId(rng.random_range(0..3u32));
                let label = ObjLabel::new(obj, L::Inc);
                let record = if rng.random_bool(0.7) {
                    let counter = rng.random_range(1..6u64);
                    OpRecord::with_ts(label, replica, crate::timestamp::Ts::new(counter, replica))
                } else {
                    OpRecord::new(label, replica)
                };
                let preds: Vec<usize> = (0..i).filter(|_| rng.random_bool(0.3)).collect();
                h.push(record, preds);
            }
            assert_eq!(
                composed_timestamp_order(&h),
                composed_timestamp_order_naive(&h),
                "witness drifted from the all-pairs oracle at seed {seed}"
            );
        }
    }

    #[test]
    fn compose_disjoint_interleaves_without_cross_edges() {
        let mut h0: History<L> = History::new();
        let a = h0.push(OpRecord::new(L::Inc, ReplicaId(0)), []);
        h0.push(OpRecord::new(L::Read(1), ReplicaId(0)), [a]);
        let mut h1: History<L> = History::new();
        h1.push(OpRecord::new(L::Inc, ReplicaId(1)), []);
        let composed = compose_disjoint(&[h0, h1]);
        assert_eq!(composed.len(), 3);
        // Round-robin: o0.inc, o1.inc, o0.read.
        assert_eq!(composed.label(0).obj, ObjId(0));
        assert_eq!(composed.label(1).obj, ObjId(1));
        assert_eq!(composed.label(2).obj, ObjId(0));
        // Within-object visibility is remapped; no cross-object edges.
        assert!(composed.sees(2, 0));
        assert!(!composed.sees(2, 1));
        let spec = MultiObjSpec::new(Ctr, 2);
        assert!(matches!(
            search(&composed, &spec),
            SearchOutcome::Linearizable(_)
        ));
    }
}
