//! Session guarantees (Terry et al. 1994), as checks over histories.
//!
//! Section 7 places RA-linearizability strictly above the session
//! guarantees of weakly consistent systems: any history produced under the
//! paper's semantics (program order within a replica, causal delivery)
//! satisfies all four. This module makes the claim checkable:
//!
//! * **Read Your Writes** — an operation sees every earlier update of its
//!   own replica;
//! * **Monotonic Reads** — the set of operations visible at a replica only
//!   grows along its program order;
//! * **Monotonic Writes** — two updates of one replica are visible in
//!   program order wherever both are visible;
//! * **Writes Follow Reads** — an update is ordered after the updates its
//!   replica had observed.
//!
//! The checks take a *session order* — for histories recorded by the
//! runtime, program order per replica, recovered from the origin replica
//! and the generation order.

use crate::history::History;
use crate::label::SpecLabel;
use std::fmt;

/// Which session guarantees a history satisfies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Violations of Read Your Writes: `(earlier_write, later_op)` of one
    /// replica with the write invisible to the later operation.
    pub read_your_writes: Vec<(usize, usize)>,
    /// Violations of Monotonic Reads: `(seen_by_earlier, earlier, later)` —
    /// a later operation of the replica lost sight of something.
    pub monotonic_reads: Vec<(usize, usize, usize)>,
    /// Violations of Monotonic Writes: `(w1, w2, observer)` — an operation
    /// sees `w2` but not the same-replica-earlier `w1`.
    pub monotonic_writes: Vec<(usize, usize, usize)>,
    /// Violations of Writes Follow Reads: `(seen, write, observer)` — an
    /// operation sees `write` but not the operation `seen` that `write`'s
    /// replica had observed before issuing it.
    pub writes_follow_reads: Vec<(usize, usize, usize)>,
}

impl SessionReport {
    /// Returns `true` if all four guarantees hold.
    pub fn all_hold(&self) -> bool {
        self.read_your_writes.is_empty()
            && self.monotonic_reads.is_empty()
            && self.monotonic_writes.is_empty()
            && self.writes_follow_reads.is_empty()
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all_hold() {
            return write!(f, "all session guarantees hold");
        }
        writeln!(f, "session-guarantee violations:")?;
        for (w, op) in &self.read_your_writes {
            writeln!(f, "  RYW: operation {op} misses own-replica write {w}")?;
        }
        for (seen, earlier, later) in &self.monotonic_reads {
            writeln!(f, "  MR: {later} lost sight of {seen} seen by {earlier}")?;
        }
        for (w1, w2, obs) in &self.monotonic_writes {
            writeln!(f, "  MW: {obs} sees {w2} but not earlier write {w1}")?;
        }
        for (seen, w, obs) in &self.writes_follow_reads {
            writeln!(f, "  WFR: {obs} sees {w} but not {seen} observed before it")?;
        }
        Ok(())
    }
}

/// Checks the four session guarantees of a history whose operations carry
/// their origin replica (as runtime-recorded histories do). Session order is
/// program order per replica: generation order restricted to each replica.
pub fn check_sessions<L: SpecLabel>(h: &History<L>) -> SessionReport {
    let mut report = SessionReport::default();
    let n = h.len();

    // Read Your Writes and Monotonic Reads over same-replica program order.
    for later in 0..n {
        for earlier in 0..later {
            if h.op(earlier).replica != h.op(later).replica {
                continue;
            }
            if h.label(earlier).is_update() && !h.sees(later, earlier) {
                report.read_your_writes.push((earlier, later));
            }
            for seen in h.preds(earlier) {
                if !h.sees(later, seen) {
                    report.monotonic_reads.push((seen, earlier, later));
                }
            }
        }
    }

    // Monotonic Writes and Writes Follow Reads, from any observer's view.
    // The MW scan enumerates, for every visible update `w2`, the earlier
    // updates of `w2`'s replica: precompute those per-replica lists once
    // instead of rescanning all of `0..w2` per (observer, w2) pair — the
    // same tuples in the same order (per-replica lists are ascending, as
    // the raw `0..w2` scan was after its replica filter), built in O(n)
    // instead of the cubic rescan.
    let mut updates_of_replica: std::collections::HashMap<crate::ids::ReplicaId, Vec<usize>> =
        std::collections::HashMap::new();
    for w in 0..n {
        if h.label(w).is_update() {
            updates_of_replica
                .entry(h.op(w).replica)
                .or_default()
                .push(w);
        }
    }
    for observer in 0..n {
        for w2 in h.preds(observer) {
            if !h.label(w2).is_update() {
                continue;
            }
            let same_replica = &updates_of_replica[&h.op(w2).replica];
            for &w1 in same_replica.iter().take_while(|&&w1| w1 < w2) {
                if !h.sees(observer, w1) {
                    report.monotonic_writes.push((w1, w2, observer));
                }
            }
            for seen in h.preds(w2) {
                if !h.sees(observer, seen) && h.label(seen).is_update() {
                    report.writes_follow_reads.push((seen, w2, observer));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::Kind;

    #[derive(Clone, Debug, PartialEq)]
    enum L {
        Write(u32),
        Read,
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Write(_) => Kind::Update,
                L::Read => Kind::Query,
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn causal_histories_satisfy_everything() {
        // r0 writes, r1 sees it and writes, r0 reads both.
        let mut h = History::new();
        let w1 = h.push(OpRecord::new(L::Write(1), r(0)), []);
        let w2 = h.push(OpRecord::new(L::Write(2), r(1)), [w1]);
        h.push(OpRecord::new(L::Read, r(0)), [w1, w2]);
        let report = check_sessions(&h);
        assert!(report.all_hold(), "{report}");
    }

    #[test]
    fn detects_read_your_writes_violation() {
        let mut h = History::new();
        let w = h.push(OpRecord::new(L::Write(1), r(0)), []);
        // Same replica reads but doesn't see its own write.
        let q = h.push(OpRecord::new(L::Read, r(0)), []);
        let report = check_sessions(&h);
        assert_eq!(report.read_your_writes, vec![(w, q)]);
        assert!(!report.all_hold());
        assert!(report.to_string().contains("RYW"));
    }

    #[test]
    fn detects_monotonic_reads_violation() {
        let mut h = History::new();
        let w = h.push(OpRecord::new(L::Write(1), r(1)), []);
        let q1 = h.push(OpRecord::new(L::Read, r(0)), [w]);
        // The later read at r0 forgot w.
        let q2 = h.push(OpRecord::new(L::Read, r(0)), []);
        let report = check_sessions(&h);
        assert!(report.monotonic_reads.contains(&(w, q1, q2)));
    }

    #[test]
    fn detects_monotonic_writes_violation() {
        let mut h = History::new();
        let w1 = h.push(OpRecord::new(L::Write(1), r(0)), []);
        let w2 = h.push(OpRecord::new(L::Write(2), r(0)), [w1]);
        // An observer sees w2 without w1 (causal delivery would forbid it).
        let obs = h.push(OpRecord::new(L::Read, r(1)), [w2]);
        let report = check_sessions(&h);
        assert!(report.monotonic_writes.contains(&(w1, w2, obs)));
    }

    /// The seed-era cubic monotonic-writes scan, kept verbatim as the
    /// regression oracle: the per-replica-update-list rewrite must produce
    /// a field-for-field identical report — same violation tuples, same
    /// order.
    fn check_sessions_naive<L: SpecLabel>(h: &History<L>) -> SessionReport {
        let mut report = SessionReport::default();
        let n = h.len();
        for later in 0..n {
            for earlier in 0..later {
                if h.op(earlier).replica != h.op(later).replica {
                    continue;
                }
                if h.label(earlier).is_update() && !h.sees(later, earlier) {
                    report.read_your_writes.push((earlier, later));
                }
                for seen in h.preds(earlier) {
                    if !h.sees(later, seen) {
                        report.monotonic_reads.push((seen, earlier, later));
                    }
                }
            }
        }
        for observer in 0..n {
            for w2 in h.preds(observer) {
                if !h.label(w2).is_update() {
                    continue;
                }
                for w1 in 0..w2 {
                    if h.op(w1).replica == h.op(w2).replica
                        && h.label(w1).is_update()
                        && !h.sees(observer, w1)
                    {
                        report.monotonic_writes.push((w1, w2, observer));
                    }
                }
                for seen in h.preds(w2) {
                    if !h.sees(observer, seen) && h.label(seen).is_update() {
                        report.writes_follow_reads.push((seen, w2, observer));
                    }
                }
            }
        }
        report
    }

    #[test]
    fn report_is_field_for_field_identical_to_the_cubic_oracle() {
        use crate::rng::Rng;

        // Random histories with deliberately broken visibility, so every
        // violation family is populated and its tuple order checked.
        for seed in 0..200u64 {
            let mut rng = Rng::seed_from_u64(0x5E55 + seed);
            let n = rng.random_range(1..16usize);
            let mut h: History<L> = History::new();
            for i in 0..n {
                let replica = r(rng.random_range(0..3u32));
                let label = if rng.random_bool(0.6) {
                    L::Write(rng.random_range(0..9u32))
                } else {
                    L::Read
                };
                let preds: Vec<usize> = (0..i).filter(|_| rng.random_bool(0.25)).collect();
                h.push(OpRecord::new(label, replica), preds);
            }
            let fast = check_sessions(&h);
            let naive = check_sessions_naive(&h);
            assert_eq!(
                fast, naive,
                "session report drifted from the cubic oracle at seed {seed}"
            );
        }
    }

    #[test]
    fn detects_writes_follow_reads_violation() {
        let mut h = History::new();
        let w1 = h.push(OpRecord::new(L::Write(1), r(0)), []);
        // r1 observed w1, then wrote w2.
        let w2 = h.push(OpRecord::new(L::Write(2), r(1)), [w1]);
        // An observer sees w2 but not w1.
        let obs = h.push(OpRecord::new(L::Read, r(2)), [w2]);
        let report = check_sessions(&h);
        assert!(report.writes_follow_reads.contains(&(w1, w2, obs)));
    }
}
