//! Standard (visibility-based) linearizability, for contrast with
//! RA-linearizability.
//!
//! Section 2.1 adapts linearizability to CRDTs by replacing the returns-before
//! order with visibility: a history is *linearizable* here if there is a
//! total order of **all** its operations, consistent with visibility, that is
//! admitted by the sequential specification — i.e. every operation (queries
//! included) executes against the full prefix before it. This is the notion
//! under which the OR-Set execution of Figure 5a has no witness, motivating
//! the sub-sequence relaxation and the query-update rewriting of
//! RA-linearizability.

use crate::history::History;
use crate::ralin::{Linearization, SearchOutcome};
use crate::spec::{Frontier, Spec};

/// Searches for a standard linearization: a total order of all operations,
/// consistent with visibility, admitted as a whole by `spec`.
pub fn linearizable<S: Spec>(h: &History<S::Label>, spec: &S) -> SearchOutcome {
    linearizable_with_budget(h, spec, u64::MAX)
}

/// Budgeted variant of [`linearizable`]; visits at most `budget` search
/// nodes.
pub fn linearizable_with_budget<S: Spec>(
    h: &History<S::Label>,
    spec: &S,
    budget: u64,
) -> SearchOutcome {
    struct St<'a, S: Spec> {
        h: &'a History<S::Label>,
        missing: Vec<usize>,
        placed: Vec<bool>,
        order: Vec<usize>,
        budget: u64,
        exhausted: bool,
    }
    impl<S: Spec> St<'_, S> {
        fn dfs(&mut self, depth: usize, frontier: &Frontier<'_, S>) -> Option<Vec<usize>> {
            // Completion is checked before the budget (and costs nothing):
            // a search holding a complete order must report it.
            if depth == self.h.len() {
                return Some(self.order.clone());
            }
            if self.budget == 0 {
                self.exhausted = true;
                return None;
            }
            self.budget -= 1;
            for x in 0..self.h.len() {
                if self.placed[x] || self.missing[x] != 0 {
                    continue;
                }
                let mut f = frontier.clone();
                if f.advance(self.h.label(x)) {
                    self.placed[x] = true;
                    self.order.push(x);
                    for succ in 0..self.h.len() {
                        if self.h.sees(succ, x) {
                            self.missing[succ] -= 1;
                        }
                    }
                    let res = self.dfs(depth + 1, &f);
                    for succ in 0..self.h.len() {
                        if self.h.sees(succ, x) {
                            self.missing[succ] += 1;
                        }
                    }
                    self.order.pop();
                    self.placed[x] = false;
                    if res.is_some() {
                        return res;
                    }
                }
                if self.exhausted {
                    return None;
                }
            }
            None
        }
    }
    let mut s = St {
        h,
        missing: (0..h.len()).map(|i| h.preds(i).len()).collect(),
        placed: vec![false; h.len()],
        order: Vec::with_capacity(h.len()),
        budget,
        exhausted: false,
    };
    let frontier = Frontier::new(spec);
    match s.dfs(0, &frontier) {
        Some(order) => SearchOutcome::Linearizable(Linearization { order }),
        None if s.exhausted => SearchOutcome::BudgetExhausted,
        None => SearchOutcome::NotLinearizable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::ids::ReplicaId;
    use crate::label::{Kind, SpecLabel};

    struct SetSpec;

    #[derive(Clone, Debug, PartialEq)]
    #[allow(dead_code)]
    enum L {
        Add(u32),
        Rem(u32),
        Read(Vec<u32>),
    }

    impl SpecLabel for L {
        fn kind(&self) -> Kind {
            match self {
                L::Read(_) => Kind::Query,
                _ => Kind::Update,
            }
        }
    }

    impl Spec for SetSpec {
        type Label = L;
        type State = Vec<u32>;
        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }
        fn step(&self, s: &Vec<u32>, l: &L) -> Vec<Vec<u32>> {
            match l {
                L::Add(x) => {
                    let mut t = s.clone();
                    if !t.contains(x) {
                        t.push(*x);
                        t.sort_unstable();
                    }
                    vec![t]
                }
                L::Rem(x) => vec![s.iter().copied().filter(|y| y != x).collect()],
                L::Read(v) => {
                    let mut sorted = v.clone();
                    sorted.sort_unstable();
                    if sorted == *s {
                        vec![s.clone()]
                    } else {
                        vec![]
                    }
                }
            }
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r(0)), []);
        let _q = h.push(OpRecord::new(L::Read(vec![1]), r(0)), [a]);
        assert!(linearizable(&h, &SetSpec).is_linearizable());
    }

    #[test]
    fn stale_read_is_not_linearizable_but_reorderable_one_is() {
        // read returning {} after seeing add(1): impossible in any order.
        let mut h = History::new();
        let a = h.push(OpRecord::new(L::Add(1), r(0)), []);
        h.push(OpRecord::new(L::Read(vec![]), r(0)), [a]);
        assert!(linearizable(&h, &SetSpec).is_refuted());

        // read returning {} concurrent with add(1): order read first.
        let mut h2 = History::new();
        h2.push(OpRecord::new(L::Add(1), r(0)), []);
        h2.push(OpRecord::new(L::Read(vec![]), r(1)), []);
        assert!(linearizable(&h2, &SetSpec).is_linearizable());
    }

    #[test]
    fn budget_is_respected() {
        let mut h = History::new();
        for i in 0..8 {
            h.push(OpRecord::new(L::Add(i), r(i)), []);
        }
        assert_eq!(
            linearizable_with_budget(&h, &SetSpec, 1),
            SearchOutcome::BudgetExhausted
        );
    }
}
