#![warn(missing_docs)]
//! `ral-fuzz` — a coverage-guided scenario fuzzer for the RA-linearizability
//! toolchain, with delta-debugged counterexample shrinking.
//!
//! The loop is classic greybox fuzzing transplanted from programs to
//! *distributed executions*:
//!
//! 1. [`gen`] derives a random [`scenario::FuzzScenario`] from the seeded
//!    stream — topology, link faults, partition windows, crash plans, and a
//!    per-family workload over every shipped CRDT and both timestamp
//!    disciplines — or mutates a high-novelty corpus entry.
//! 2. [`oracle`] replays it on the `ral-sim` discrete-event engine and
//!    cross-checks the outcome: convergence, lattice laws, and the
//!    independent RA-linearizability deciders run side by side
//!    ([`ral_verify::crosscheck`]).
//! 3. [`coverage`] scores which structural shapes the run exercised; novel
//!    runs enter the [`corpus`] and get mutated again.
//! 4. Findings (divergence, lattice violation, refutation, or checker
//!    disagreement) are [`shrink`]-minimized to a 1-minimal scenario and
//!    rendered as a byte-stable fixture anyone can replay.
//!
//! Everything is a pure function of the fuzzer seed: the scenario stream,
//! the coverage map, the verdict counters, and every shrunk counterexample
//! (`tests/fuzz_determinism.rs` pins this).

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod scenario;
pub mod shrink;

use corpus::Corpus;
use coverage::CoverageMap;
use oracle::VerdictKind;
use ral_core::rng::Rng;
use ral_core::spec::fingerprint;
use scenario::{Family, FuzzScenario};
use std::collections::BTreeMap;

/// Everything one fuzzing campaign needs to be reproducible.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seed of the whole campaign (scenario stream, mutation choices).
    pub seed: u64,
    /// Scenario attempts (duplicates count — they cost no replay).
    pub runs: u64,
    /// Families to draw from (default: every shipped family).
    pub families: Vec<Family>,
    /// Node budget per complete-search decider.
    pub search_budget: u64,
    /// Simulation-replay budget per shrink.
    pub shrink_replays: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            runs: 200,
            families: Family::SHIPPED.to_vec(),
            search_budget: 500_000,
            shrink_replays: 400,
        }
    }
}

/// One shrunk counterexample.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The scenario as generated.
    pub original: FuzzScenario,
    /// The 1-minimal scenario preserving the verdict.
    pub shrunk: FuzzScenario,
    /// What the replay proved.
    pub verdict: VerdictKind,
    /// The oracle's account of the failure.
    pub detail: String,
    /// Simulations spent shrinking.
    pub replays: u64,
}

/// The result of a campaign: counters, the coverage map, and every finding.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Scenario attempts made.
    pub runs: u64,
    /// Attempts skipped as structural duplicates (no replay spent).
    pub dedup: u64,
    /// Runs that earned corpus admission (new dimension or signature).
    pub novel: u64,
    /// Per-verdict run counts, keyed by [`VerdictKind::name`].
    pub verdicts: BTreeMap<&'static str, u64>,
    /// The structural-coverage map over all replayed runs.
    pub coverage: CoverageMap,
    /// Shrunk counterexamples, in discovery order.
    pub findings: Vec<Finding>,
    /// FNV fingerprint folded over the rendered scenario stream — the
    /// cheapest possible "same seed, same campaign" pin.
    pub stream_fnv: u64,
}

impl FuzzOutcome {
    fn new() -> Self {
        FuzzOutcome {
            coverage: CoverageMap::new(),
            ..Default::default()
        }
    }
}

/// Runs one fuzzing campaign.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut corpus = Corpus::new();
    let mut out = FuzzOutcome::new();
    for _ in 0..cfg.runs {
        out.runs += 1;
        // Half the attempts mutate a prior high-novelty scenario (once the
        // corpus has any), half explore fresh structure.
        let sc = match corpus.pick(&mut rng) {
            Some(base) if rng.random_bool(0.5) => {
                let base = base.clone();
                gen::mutate(&mut rng, &base)
            }
            _ => gen::generate(&mut rng, &cfg.families),
        };
        let rendered = sc.render();
        out.stream_fnv = fingerprint(&(out.stream_fnv, &rendered));
        if !corpus.observe(&sc) {
            out.dedup += 1;
            ral_obs::counter("fuzz.dedup", 1);
            continue;
        }
        let obs = oracle::run_scenario(&sc, cfg.search_budget);
        ral_obs::counter("fuzz.runs", 1);
        let (newly_hit, new_signature) = out.coverage.record(&obs.dims);
        *out.verdicts.entry(obs.verdict.name()).or_insert(0) += 1;
        let novelty = 4 * newly_hit as u64 + u64::from(new_signature);
        if novelty > 0 {
            out.novel += 1;
            ral_obs::counter("fuzz.novel", 1);
            corpus.add(sc.clone(), novelty);
        }
        if obs.verdict.is_finding() {
            ral_obs::counter("fuzz.findings", 1);
            let shrunk = shrink::shrink(&sc, cfg.search_budget, cfg.shrink_replays);
            out.findings.push(Finding {
                original: sc,
                shrunk: shrunk.scenario,
                verdict: obs.verdict,
                detail: obs.detail,
                replays: shrunk.replays,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_families_produce_no_findings() {
        let cfg = FuzzConfig {
            seed: 2,
            runs: 12,
            search_budget: 500_000,
            ..Default::default()
        };
        let out = fuzz(&cfg);
        assert_eq!(out.runs, 12);
        assert!(
            out.findings.is_empty(),
            "unexpected finding: {:?}",
            out.findings[0].verdict
        );
        assert!(out.coverage.hit() > 0);
        assert!(out.novel > 0, "first runs always open coverage");
    }

    #[test]
    fn broken_families_are_found_and_shrunk() {
        let cfg = FuzzConfig {
            seed: 3,
            runs: 10,
            families: Family::BROKEN.to_vec(),
            search_budget: 1_000,
            shrink_replays: 300,
        };
        let out = fuzz(&cfg);
        assert!(
            !out.findings.is_empty(),
            "negative controls must be caught within {} runs",
            cfg.runs
        );
        for f in &out.findings {
            assert!(f.verdict.is_finding());
            assert!(
                f.shrunk.n_elements() <= f.original.n_elements(),
                "shrinking never grows a scenario"
            );
        }
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let cfg = FuzzConfig {
            seed: 4,
            runs: 10,
            search_budget: 200_000,
            ..Default::default()
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.stream_fnv, b.stream_fnv);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.dedup, b.dedup);
    }
}
