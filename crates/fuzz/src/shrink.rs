//! Delta-debugging a failing scenario down to a minimal counterexample.
//!
//! [`ral_analyze::shrink`] minimizes *traces* (lists of events) and
//! *scalars*; this module lifts both to scenario structure. A scenario's
//! removable elements are its replicas, partition windows, crash windows,
//! and link-fault knobs ([`FuzzScenario::n_elements`]); its scalars are the
//! invoke budget, run length, fault-window endpoints, and cadence jitters.
//! Passes run in that order — structure first, then quantities — and repeat
//! until a whole cycle changes nothing, so the result is 1-minimal w.r.t.
//! element removal *and* a fixpoint of re-shrinking (given the deterministic
//! oracle, which [`crate::oracle`] guarantees).
//!
//! The predicate is "replaying still produces the *same* [`VerdictKind`]"
//! — a Diverged counterexample may not degrade into, say, an Undecided one
//! mid-shrink. Every probe is one full simulation, so a replay budget caps
//! the work; when it runs out, the current (still-failing) scenario is
//! returned as-is.

use crate::oracle::{run_scenario, VerdictKind};
use crate::scenario::FuzzScenario;
use ral_analyze::shrink::{shrink_scalar, shrink_trace};

/// The result of shrinking one finding.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized scenario (still produces [`ShrinkOutcome::verdict`]).
    pub scenario: FuzzScenario,
    /// Simulations replayed while shrinking.
    pub replays: u64,
    /// The verdict being preserved.
    pub verdict: VerdictKind,
}

struct Ctx {
    budget: u64,
    target: VerdictKind,
    replays: u64,
    max_replays: u64,
}

impl Ctx {
    fn exhausted(&self) -> bool {
        self.replays >= self.max_replays
    }

    // One probe: does the candidate still produce the target verdict?
    fn fails(&mut self, sc: &FuzzScenario) -> bool {
        if self.exhausted() || sc.validate().is_err() {
            return false;
        }
        self.replays += 1;
        run_scenario(sc, self.budget).verdict == self.target
    }
}

/// Minimizes `sc`, whose replay must produce a finding verdict, preserving
/// that exact verdict. `max_replays` bounds the total simulations spent.
pub fn shrink(sc: &FuzzScenario, budget: u64, max_replays: u64) -> ShrinkOutcome {
    let target = run_scenario(sc, budget).verdict;
    assert!(
        target.is_finding(),
        "shrink target must be a finding, got {}",
        target.name()
    );
    let mut ctx = Ctx {
        budget,
        target,
        replays: 1,
        max_replays,
    };
    let mut cur = sc.clone();
    loop {
        let before = cur.render();
        cur = pass_replicas(&mut ctx, cur);
        cur = pass_elements(&mut ctx, cur);
        cur = pass_scalars(&mut ctx, cur);
        if ctx.exhausted() || cur.render() == before {
            break;
        }
    }
    ShrinkOutcome {
        scenario: cur,
        replays: ctx.replays,
        verdict: target,
    }
}

// Drop trailing replicas while the verdict survives (2 is the floor — a
// single replica cannot disagree with anyone).
fn pass_replicas(ctx: &mut Ctx, mut cur: FuzzScenario) -> FuzzScenario {
    while cur.n_replicas > 2 {
        let candidate = cur.without_last_replica();
        if !ctx.fails(&candidate) {
            break;
        }
        cur = candidate;
    }
    cur
}

// The removable non-replica elements, mirrored from
// [`FuzzScenario::n_elements`].
#[derive(Clone, Copy)]
enum Elem {
    Partition(usize),
    Crash(usize),
    Drop,
    Dup,
}

fn elements_of(sc: &FuzzScenario) -> Vec<Elem> {
    let mut elems: Vec<Elem> = (0..sc.partitions.len()).map(Elem::Partition).collect();
    elems.extend((0..sc.crashes.len()).map(Elem::Crash));
    if sc.drop_pm > 0 {
        elems.push(Elem::Drop);
    }
    if sc.dup_pm > 0 {
        elems.push(Elem::Dup);
    }
    elems
}

fn with_elements(sc: &FuzzScenario, elems: &[Elem]) -> FuzzScenario {
    let mut out = sc.clone();
    out.partitions.clear();
    out.crashes.clear();
    out.drop_pm = 0;
    out.dup_pm = 0;
    for e in elems {
        match e {
            Elem::Partition(i) => out.partitions.push(sc.partitions[*i].clone()),
            Elem::Crash(i) => out.crashes.push(sc.crashes[*i].clone()),
            Elem::Drop => out.drop_pm = sc.drop_pm,
            Elem::Dup => out.dup_pm = sc.dup_pm,
        }
    }
    out
}

// Greedy 1-minimization of the fault-plan elements, via the same ddmin-ish
// sweep the trace shrinker uses.
fn pass_elements(ctx: &mut Ctx, cur: FuzzScenario) -> FuzzScenario {
    let elems = elements_of(&cur);
    if elems.is_empty() {
        return cur;
    }
    let kept = shrink_trace(&elems, |subset| ctx.fails(&with_elements(&cur, subset)));
    with_elements(&cur, &kept)
}

// Bisect-then-creep every quantitative knob toward its floor.
fn pass_scalars(ctx: &mut Ctx, mut cur: FuzzScenario) -> FuzzScenario {
    cur = scalar(ctx, cur, 1, |sc| sc.max_invokes, |sc, v| sc.max_invokes = v);
    cur = scalar(ctx, cur, 1, |sc| sc.duration, |sc, v| sc.duration = v);
    cur = scalar(ctx, cur, 1, |sc| sc.invoke.0, |sc, v| sc.invoke.0 = v);
    cur = scalar(ctx, cur, 0, |sc| sc.invoke.1, |sc, v| sc.invoke.1 = v);
    cur = scalar(ctx, cur, 1, |sc| sc.gossip.0, |sc, v| sc.gossip.0 = v);
    cur = scalar(ctx, cur, 0, |sc| sc.gossip.1, |sc, v| sc.gossip.1 = v);
    if cur.n_objects > 1 {
        cur = scalar(
            ctx,
            cur,
            1,
            |sc| u64::from(sc.n_objects),
            |sc, v| sc.n_objects = v as u32,
        );
    }
    for i in 0..cur.partitions.len() {
        // End first (shorter window), then start (earlier window).
        let end_floor = cur.partitions[i].start + 1;
        cur = scalar(
            ctx,
            cur,
            end_floor,
            |sc| sc.partitions[i].end,
            |sc, v| sc.partitions[i].end = v,
        );
        cur = scalar(
            ctx,
            cur,
            0,
            |sc| sc.partitions[i].start,
            |sc, v| sc.partitions[i].start = v,
        );
    }
    for i in 0..cur.crashes.len() {
        if cur.crashes[i].restart_at.is_some() {
            let restart_floor = cur.crashes[i].crash_at + 1;
            cur = scalar(
                ctx,
                cur,
                restart_floor,
                |sc| sc.crashes[i].restart_at.unwrap(),
                |sc, v| sc.crashes[i].restart_at = Some(v),
            );
        }
        cur = scalar(
            ctx,
            cur,
            0,
            |sc| sc.crashes[i].crash_at,
            |sc, v| sc.crashes[i].crash_at = v,
        );
    }
    if cur.drop_pm > 0 {
        cur = scalar(
            ctx,
            cur,
            1,
            |sc| u64::from(sc.drop_pm),
            |sc, v| sc.drop_pm = v as u32,
        );
    }
    if cur.dup_pm > 0 {
        cur = scalar(
            ctx,
            cur,
            1,
            |sc| u64::from(sc.dup_pm),
            |sc, v| sc.dup_pm = v as u32,
        );
    }
    cur
}

fn scalar(
    ctx: &mut Ctx,
    mut cur: FuzzScenario,
    min: u64,
    get: impl Fn(&FuzzScenario) -> u64,
    set: impl Fn(&mut FuzzScenario, u64),
) -> FuzzScenario {
    let best = shrink_scalar(get(&cur), min, |v| {
        let mut candidate = cur.clone();
        set(&mut candidate, v);
        ctx.fails(&candidate)
    });
    set(&mut cur, best);
    cur
}

/// Every scenario reachable from `sc` by removing exactly one structural
/// element — the candidates a 1-minimality check must all see *not* fail.
pub fn one_element_removals(sc: &FuzzScenario) -> Vec<FuzzScenario> {
    let mut out = Vec::new();
    if sc.n_replicas > 2 {
        out.push(sc.without_last_replica());
    }
    for i in 0..sc.partitions.len() {
        let mut c = sc.clone();
        c.partitions.remove(i);
        out.push(c);
    }
    for i in 0..sc.crashes.len() {
        let mut c = sc.clone();
        c.crashes.remove(i);
        out.push(c);
    }
    if sc.drop_pm > 0 {
        let mut c = sc.clone();
        c.drop_pm = 0;
        out.push(c);
    }
    if sc.dup_pm > 0 {
        let mut c = sc.clone();
        c.dup_pm = 0;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::scenario::Family;
    use ral_core::rng::Rng;

    // A BrokenCounter scenario that diverges (searched deterministically).
    fn failing_broken() -> FuzzScenario {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let sc = gen::generate_for_family(&mut rng, Family::BrokenCounter);
            if run_scenario(&sc, 1_000).verdict == VerdictKind::Diverged {
                return sc;
            }
        }
        panic!("no diverging BrokenCounter scenario in 200 tries");
    }

    #[test]
    fn shrinks_broken_counter_to_a_small_core() {
        let sc = failing_broken();
        let out = shrink(&sc, 1_000, 400);
        assert_eq!(out.verdict, VerdictKind::Diverged);
        assert_eq!(
            run_scenario(&out.scenario, 1_000).verdict,
            VerdictKind::Diverged,
            "shrunk scenario must still fail"
        );
        assert!(
            out.scenario.n_elements() <= 6,
            "expected a minimal counterexample, got {} elements:\n{}",
            out.scenario.n_elements(),
            out.scenario.render()
        );
    }

    #[test]
    fn shrinking_is_a_fixpoint() {
        let sc = failing_broken();
        let once = shrink(&sc, 1_000, 400);
        let twice = shrink(&once.scenario, 1_000, 400);
        assert_eq!(
            twice.scenario.render(),
            once.scenario.render(),
            "re-shrinking a shrunk scenario must change nothing"
        );
    }

    #[test]
    fn shrunk_scenario_is_one_minimal() {
        let sc = failing_broken();
        let out = shrink(&sc, 1_000, 400);
        for candidate in one_element_removals(&out.scenario) {
            if candidate.validate().is_err() {
                continue;
            }
            assert_ne!(
                run_scenario(&candidate, 1_000).verdict,
                out.verdict,
                "removing an element still fails — not 1-minimal:\n{}",
                out.scenario.render()
            );
        }
    }
}
