//! The structural-coverage map: a fixed vocabulary of scenario/run
//! features whose novelty drives corpus admission and mutation.
//!
//! Dimensions are *structural*, not line-based: they describe the shape of
//! the concurrency the run produced (partition depth, crash-during-
//! partition, cross-object interleaving, delta resyncs, …) — the shapes
//! the paper's anomalies live in. A run's dimension set is computed by the
//! oracle from the scenario plus the replayed trace/history, so it is as
//! deterministic as the run itself.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Names of every structural-coverage dimension, in index order.
///
/// The report and the rendered map both use this order; appending is fine,
/// reordering is a format break.
pub const DIMENSIONS: [&str; 26] = [
    "replicas_2",
    "replicas_3_4",
    "replicas_5_plus",
    "topology_uniform",
    "topology_dc",
    "partition_single",
    "partition_multi",
    "partition_3way",
    "crash_bounce",
    "crash_permanent",
    "crash_during_partition",
    "faults_drop",
    "faults_dup",
    "reorder_held",
    "retry_recovery",
    "family_op",
    "family_state",
    "family_delta",
    "family_multi",
    "ts_shared",
    "ts_per_object",
    "multi_objects_2plus",
    "cross_object_interleave",
    "delta_resync",
    "delta_gc",
    "concurrency_width_4plus",
];

/// Index of a dimension name (compile-time table, index by constant).
pub fn dim(name: &str) -> usize {
    DIMENSIONS
        .iter()
        .position(|d| *d == name)
        .unwrap_or_else(|| panic!("unknown coverage dimension {name:?}"))
}

/// Hit counts per dimension plus the set of distinct dimension-signatures
/// seen (which exact combination of dimensions one run lit up).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageMap {
    counts: Vec<u64>,
    signatures: BTreeSet<u64>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap {
            counts: vec![0; DIMENSIONS.len()],
            signatures: BTreeSet::new(),
        }
    }

    /// Records one run's dimension set. Returns `(newly_hit, new_signature)`:
    /// how many dimensions went from zero to nonzero, and whether this exact
    /// combination had never been seen.
    pub fn record(&mut self, dims: &[usize]) -> (usize, bool) {
        let mut newly = 0;
        let mut sig = 0u64;
        for &d in dims {
            sig |= 1 << d;
            if self.counts[d] == 0 {
                newly += 1;
            }
            self.counts[d] += 1;
        }
        let new_sig = self.signatures.insert(sig);
        (newly, new_sig)
    }

    /// Number of dimensions hit at least once.
    pub fn hit(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of dimensions hit, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.hit() as f64 / DIMENSIONS.len() as f64
    }

    /// Number of distinct dimension-signatures seen.
    pub fn signatures(&self) -> usize {
        self.signatures.len()
    }

    /// Hit count of one dimension by name.
    pub fn count(&self, name: &str) -> u64 {
        self.counts[dim(name)]
    }

    /// Iterates `(name, count)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        DIMENSIONS.iter().copied().zip(self.counts.iter().copied())
    }

    /// Byte-stable text rendering (one `name count` line per dimension),
    /// used by the determinism fixture.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, count) in self.iter() {
            let _ = writeln!(out, "{name} {count}");
        }
        let _ = writeln!(out, "signatures {}", self.signatures());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_novelty_and_signatures() {
        let mut map = CoverageMap::new();
        let (newly, new_sig) = map.record(&[0, 3, 5]);
        assert_eq!(newly, 3);
        assert!(new_sig);
        let (newly, new_sig) = map.record(&[0, 3, 5]);
        assert_eq!(newly, 0, "already hit");
        assert!(!new_sig, "same combination");
        let (newly, new_sig) = map.record(&[0, 4]);
        assert_eq!(newly, 1);
        assert!(new_sig);
        assert_eq!(map.hit(), 4);
        assert_eq!(map.signatures(), 2);
        assert_eq!(map.count("topology_uniform"), 2);
    }

    #[test]
    fn render_is_stable_and_complete() {
        let mut map = CoverageMap::new();
        map.record(&[dim("replicas_2"), dim("family_op")]);
        let text = map.render();
        assert_eq!(text.lines().count(), DIMENSIONS.len() + 1);
        assert!(text.contains("replicas_2 1\n"));
        assert!(text.contains("family_state 0\n"));
        assert_eq!(map.render(), text);
    }

    #[test]
    fn all_dimension_names_resolve() {
        for (i, name) in DIMENSIONS.iter().enumerate() {
            assert_eq!(dim(name), i);
        }
    }
}
