//! The `ral-fuzz` CLI: seeded fuzzing campaigns with a JSON report.
//!
//! ```text
//! cargo run -p ral-fuzz --release -- --seed 1 --runs 200 --report FUZZ_report.json
//! ```
//!
//! Exit codes: `0` success; `2` a finding survived on shipped families (or
//! none was found under `--broken`, where findings are *expected*); `3`
//! coverage fell below `--min-coverage`; `1` bad usage.

use ral_fuzz::scenario::Family;
use ral_fuzz::{fuzz, report, FuzzConfig};
use std::process::ExitCode;

struct Args {
    cfg: FuzzConfig,
    report_path: Option<String>,
    broken: bool,
    min_coverage_permille: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ral-fuzz [--seed N] [--runs N] [--quick] [--broken] \
         [--min-coverage PERMILLE] [--report PATH] [--no-report]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: FuzzConfig::default(),
        report_path: Some("FUZZ_report.json".to_string()),
        broken: false,
        min_coverage_permille: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => match value("--seed").parse() {
                Ok(v) => args.cfg.seed = v,
                Err(_) => usage(),
            },
            "--runs" => match value("--runs").parse() {
                Ok(v) => args.cfg.runs = v,
                Err(_) => usage(),
            },
            "--min-coverage" => match value("--min-coverage").parse() {
                Ok(v) => args.min_coverage_permille = v,
                Err(_) => usage(),
            },
            "--report" => args.report_path = Some(value("--report")),
            "--no-report" => args.report_path = None,
            // The CI smoke profile: small but still spanning the map.
            "--quick" => {
                args.cfg.runs = 40;
                args.cfg.search_budget = 300_000;
                args.cfg.shrink_replays = 200;
            }
            "--broken" => args.broken = true,
            _ => {
                eprintln!("unknown argument: {arg}");
                usage();
            }
        }
    }
    if args.broken {
        args.cfg.families = Family::BROKEN.to_vec();
        // Broken families never face the complete search; keep it cheap.
        args.cfg.search_budget = 1_000;
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let started = ral_obs::wallclock::now_nanos();
    let out = fuzz(&args.cfg);
    let elapsed = ral_obs::wallclock::now_nanos().saturating_sub(started);
    if let Some(path) = &args.report_path {
        let report = report::render_report(&args.cfg, &out, Some(elapsed));
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("ral-fuzz: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
    }
    let permille = (out.coverage.hit() as u64 * 1000) / ral_fuzz::coverage::DIMENSIONS.len() as u64;
    println!(
        "ral-fuzz: seed {} runs {} (dedup {}) novel {} coverage {}/{} ({permille}‰) \
         signatures {} findings {}",
        args.cfg.seed,
        out.runs,
        out.dedup,
        out.novel,
        out.coverage.hit(),
        ral_fuzz::coverage::DIMENSIONS.len(),
        out.coverage.signatures(),
        out.findings.len(),
    );
    for f in &out.findings {
        println!(
            "  [{}] {} ({} elements after shrinking, {} replays)",
            f.verdict.name(),
            f.detail,
            f.shrunk.n_elements(),
            f.replays
        );
    }
    if args.broken {
        if out.findings.is_empty() {
            eprintln!("ral-fuzz: negative controls produced no findings — the oracle is blind");
            return ExitCode::from(2);
        }
    } else if !out.findings.is_empty() {
        eprintln!(
            "ral-fuzz: {} finding(s) on shipped families — counterexamples above",
            out.findings.len()
        );
        return ExitCode::from(2);
    }
    if permille < args.min_coverage_permille {
        eprintln!(
            "ral-fuzz: coverage {permille}‰ below the {}‰ baseline",
            args.min_coverage_permille
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
