//! The corpus pool: deduplicated scenarios worth mutating again.
//!
//! Admission is novelty-gated: a scenario enters only if its run hit a
//! never-seen coverage dimension or lit up a new dimension-*combination*
//! (signature). Scheduling is novelty-weighted — scenarios that opened more
//! of the map get proportionally more mutation turns — which is the whole
//! "coverage-guided" feedback loop in one structure.
//!
//! Dedup keys are FNV fingerprints of the canonical fixture rendering
//! ([`crate::scenario::FuzzScenario::render`]), so two structurally equal
//! scenarios collide no matter how they were produced.

use crate::scenario::FuzzScenario;
use ral_core::rng::Rng;
use ral_core::spec::fingerprint;
use std::collections::BTreeSet;

struct Entry {
    sc: FuzzScenario,
    novelty: u64,
}

/// The deduplicated, novelty-weighted scenario pool.
#[derive(Default)]
pub struct Corpus {
    entries: Vec<Entry>,
    seen: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus {
            entries: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Registers a candidate before it runs. Returns `false` if an equal
    /// scenario was already observed (the caller skips the replay).
    pub fn observe(&mut self, sc: &FuzzScenario) -> bool {
        self.seen.insert(fingerprint(&sc.render()))
    }

    /// Admits a scenario whose run produced novelty (weight `novelty > 0`).
    pub fn add(&mut self, sc: FuzzScenario, novelty: u64) {
        debug_assert!(novelty > 0, "novelty-gated admission");
        self.entries.push(Entry { sc, novelty });
    }

    /// Number of admitted scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Picks a scenario to mutate, with probability proportional to its
    /// admission novelty.
    pub fn pick(&self, rng: &mut Rng) -> Option<&FuzzScenario> {
        let total: u64 = self.entries.iter().map(|e| e.novelty).sum();
        if total == 0 {
            return None;
        }
        let mut roll = rng.random_range(0..total);
        for e in &self.entries {
            if roll < e.novelty {
                return Some(&e.sc);
            }
            roll -= e.novelty;
        }
        unreachable!("weights summed to total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::scenario::Family;

    #[test]
    fn observe_dedups_on_structure() {
        let mut rng = Rng::seed_from_u64(5);
        let sc = gen::generate(&mut rng, &Family::SHIPPED);
        let mut corpus = Corpus::new();
        assert!(corpus.observe(&sc));
        assert!(!corpus.observe(&sc.clone()), "same rendering, same key");
        let other = gen::generate(&mut rng, &Family::SHIPPED);
        assert!(corpus.observe(&other));
    }

    #[test]
    fn pick_prefers_high_novelty() {
        let mut rng = Rng::seed_from_u64(6);
        let a = gen::generate(&mut rng, &Family::SHIPPED);
        let b = gen::generate(&mut rng, &Family::SHIPPED);
        let mut corpus = Corpus::new();
        corpus.add(a.clone(), 99);
        corpus.add(b.clone(), 1);
        let mut a_hits = 0;
        for _ in 0..200 {
            if corpus.pick(&mut rng).unwrap() == &a {
                a_hits += 1;
            }
        }
        assert!(a_hits > 150, "novelty weighting ignored: {a_hits}/200");
    }

    #[test]
    fn empty_corpus_picks_nothing() {
        let mut rng = Rng::seed_from_u64(7);
        assert!(Corpus::new().pick(&mut rng).is_none());
    }
}
