//! The generated-scenario model: every knob the fuzzer can turn, plus a
//! byte-stable fixture rendering (`render`) and a parser (`parse`) that
//! round-trips it exactly.
//!
//! A [`FuzzScenario`] is a *value*, not a closure: two equal scenarios
//! replay the same simulation bit-for-bit (the sim is a pure function of
//! `(config, driver, seed)` and the driver workload is derived from the
//! scenario fields alone). That is what makes shrinking and byte-pinned
//! counterexample fixtures possible.
//!
//! All latencies and probabilities are kept as integers (ticks and
//! per-mille) so the fixture text has one canonical spelling — no float
//! formatting to drift.

use ral_core::ids::ReplicaId;
use ral_runtime::multi::TsMode;
use ral_sim::fault::{CrashPlan, FaultPlan, PartitionWindow};
use ral_sim::network::{Latency, LinkFaults, Network, Topology};
use ral_sim::sim::SimConfig;
use ral_sim::time::SimTime;
use std::fmt::Write as _;

/// Magic first line of every rendered scenario fixture.
pub const FIXTURE_MAGIC: &str = "ral-fuzz scenario v1";

/// How a family ships its updates (which cluster runtime it exercises).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Op-based: reliable causal broadcast (§3.1).
    Op,
    /// State-based: lossy gossip of full states (App. D.2).
    State,
    /// Delta-state: lossy gossip of delta batches with resync fallback.
    Delta,
    /// Composed multi-object store over reliable broadcast (§5).
    Multi,
}

/// One CRDT-under-one-transport the generator can target.
///
/// The two `Broken*` families are negative controls (known-broken objects
/// from `ral_analyze::fixtures`); they are excluded from [`Family::SHIPPED`]
/// and only run when explicitly requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Op-based increment/decrement counter.
    OpCounter,
    /// Op-based last-writer-wins register.
    OpLwwRegister,
    /// Op-based observed-remove set.
    OpOrSet,
    /// Op-based replicated growable array (insert-after).
    OpRga,
    /// Op-based RGA with index-addressed inserts (`addAt`).
    OpRgaAddAt,
    /// Op-based Wooki list (exponential spec — kept to tiny histories).
    OpWooki,
    /// State-based PN-counter.
    StatePnCounter,
    /// State-based multi-value register.
    StateMvRegister,
    /// State-based LWW element set.
    StateLwwElementSet,
    /// State-based two-phase set.
    StateTwoPhaseSet,
    /// PN-counter over the delta transport.
    DeltaPnCounter,
    /// LWW element set over the delta transport.
    DeltaLwwElementSet,
    /// Composed store of op-counters (⊗ / ⊗ts).
    MultiCounter,
    /// Composed store of LWW registers (⊗ / ⊗ts).
    MultiLwwRegister,
    /// Negative control: non-commutative op counter (must diverge).
    BrokenCounter,
    /// Negative control: non-idempotent state "join" (must break laws).
    SummingCounter,
}

impl Family {
    /// Every correct family the fuzzer targets by default.
    pub const SHIPPED: [Family; 14] = [
        Family::OpCounter,
        Family::OpLwwRegister,
        Family::OpOrSet,
        Family::OpRga,
        Family::OpRgaAddAt,
        Family::OpWooki,
        Family::StatePnCounter,
        Family::StateMvRegister,
        Family::StateLwwElementSet,
        Family::StateTwoPhaseSet,
        Family::DeltaPnCounter,
        Family::DeltaLwwElementSet,
        Family::MultiCounter,
        Family::MultiLwwRegister,
    ];

    /// The negative-control families.
    pub const BROKEN: [Family; 2] = [Family::BrokenCounter, Family::SummingCounter];

    /// Every family, shipped and broken.
    pub const ALL: [Family; 16] = [
        Family::OpCounter,
        Family::OpLwwRegister,
        Family::OpOrSet,
        Family::OpRga,
        Family::OpRgaAddAt,
        Family::OpWooki,
        Family::StatePnCounter,
        Family::StateMvRegister,
        Family::StateLwwElementSet,
        Family::StateTwoPhaseSet,
        Family::DeltaPnCounter,
        Family::DeltaLwwElementSet,
        Family::MultiCounter,
        Family::MultiLwwRegister,
        Family::BrokenCounter,
        Family::SummingCounter,
    ];

    /// The stable fixture name of the family.
    pub fn name(self) -> &'static str {
        match self {
            Family::OpCounter => "op_counter",
            Family::OpLwwRegister => "op_lww_register",
            Family::OpOrSet => "op_or_set",
            Family::OpRga => "op_rga",
            Family::OpRgaAddAt => "op_rga_addat",
            Family::OpWooki => "op_wooki",
            Family::StatePnCounter => "state_pn_counter",
            Family::StateMvRegister => "state_mv_register",
            Family::StateLwwElementSet => "state_lww_element_set",
            Family::StateTwoPhaseSet => "state_two_phase_set",
            Family::DeltaPnCounter => "delta_pn_counter",
            Family::DeltaLwwElementSet => "delta_lww_element_set",
            Family::MultiCounter => "multi_counter",
            Family::MultiLwwRegister => "multi_lww_register",
            Family::BrokenCounter => "broken_counter",
            Family::SummingCounter => "summing_counter",
        }
    }

    /// Parses a fixture name back into a family.
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The transport the family runs on.
    pub fn transport(self) -> Transport {
        match self {
            Family::OpCounter
            | Family::OpLwwRegister
            | Family::OpOrSet
            | Family::OpRga
            | Family::OpRgaAddAt
            | Family::OpWooki
            | Family::BrokenCounter => Transport::Op,
            Family::StatePnCounter
            | Family::StateMvRegister
            | Family::StateLwwElementSet
            | Family::StateTwoPhaseSet
            | Family::SummingCounter => Transport::State,
            Family::DeltaPnCounter | Family::DeltaLwwElementSet => Transport::Delta,
            Family::MultiCounter | Family::MultiLwwRegister => Transport::Multi,
        }
    }

    /// Whether this is a negative-control family.
    pub fn is_broken(self) -> bool {
        matches!(self, Family::BrokenCounter | Family::SummingCounter)
    }
}

/// Network layout of a generated scenario (integer mirror of
/// [`ral_sim::network::Topology`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzTopology {
    /// One latency class for every link: `base + uniform(0..=jitter)`.
    Uniform {
        /// Minimum link delay in ticks.
        base: u64,
        /// Inclusive uniform jitter in ticks.
        jitter: u64,
    },
    /// Data-center layout: fast intra links, slow inter links.
    DataCenters {
        /// Data-center id per replica (`dc_of.len() == n_replicas`).
        dc_of: Vec<u32>,
        /// `(base, jitter)` of same-DC links.
        intra: (u64, u64),
        /// `(base, jitter)` of cross-DC links.
        inter: (u64, u64),
    },
}

/// A partition window in scenario form: sides per replica, active in
/// `[start, end)` ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzPartition {
    /// When the partition forms.
    pub start: u64,
    /// When it heals (exclusive; must exceed `start`).
    pub end: u64,
    /// Group id per replica (`groups.len() == n_replicas`).
    pub groups: Vec<u32>,
}

impl FuzzPartition {
    /// Number of distinct sides the window actually splits the cluster into.
    pub fn sides(&self) -> usize {
        let mut seen: Vec<u32> = self.groups.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// A crash window in scenario form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCrash {
    /// The replica that halts.
    pub replica: u32,
    /// When it halts.
    pub crash_at: u64,
    /// When it restarts (`None` = down until final sync).
    pub restart_at: Option<u64>,
}

/// A fully-specified fuzz scenario: one simulation the oracle can replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzScenario {
    /// The CRDT/transport under test.
    pub family: Family,
    /// Timestamp discipline for composed stores (ignored elsewhere).
    pub ts_mode: TsMode,
    /// Number of objects in a composed store (1 elsewhere).
    pub n_objects: u32,
    /// Cluster size.
    pub n_replicas: u32,
    /// Simulated run length in ticks (faults and invokes live inside it).
    pub duration: u64,
    /// Per-replica invoke cadence `(base, jitter)` in ticks.
    pub invoke: (u64, u64),
    /// Gossip cadence `(base, jitter)` for gossiping transports.
    pub gossip: (u64, u64),
    /// Network layout.
    pub topo: FuzzTopology,
    /// Message drop probability in per-mille (lossy transports only).
    pub drop_pm: u32,
    /// Message duplication probability in per-mille (lossy transports only).
    pub dup_pm: u32,
    /// Retransmission delay in ticks for reliable transports.
    pub retry: u64,
    /// Delta-transport resync horizon (ignored elsewhere).
    pub resync_after: u64,
    /// Cap on total invokes across the cluster (keeps histories checkable).
    pub max_invokes: u64,
    /// The simulation seed (workload choices and latency samples).
    pub sim_seed: u64,
    /// Scheduled partitions.
    pub partitions: Vec<FuzzPartition>,
    /// Scheduled crashes.
    pub crashes: Vec<FuzzCrash>,
}

impl FuzzScenario {
    /// Structural element count used by the shrink target (`≤ 6` is the
    /// bar for a "minimal" counterexample): replicas + fault-plan entries
    /// + one per active link-fault knob.
    pub fn n_elements(&self) -> usize {
        self.n_replicas as usize
            + self.partitions.len()
            + self.crashes.len()
            + usize::from(self.drop_pm > 0)
            + usize::from(self.dup_pm > 0)
    }

    /// Checks internal consistency (everything `sim::run` would assert,
    /// plus fuzzer-side invariants). Returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_replicas < 2 {
            return Err("need at least 2 replicas".into());
        }
        if self.duration == 0 {
            return Err("duration must be positive".into());
        }
        if self.max_invokes == 0 {
            return Err("max_invokes must be positive".into());
        }
        if self.n_objects == 0 {
            return Err("n_objects must be positive".into());
        }
        if self.drop_pm > 1000 || self.dup_pm > 1000 {
            return Err("fault probabilities are per-mille (0..=1000)".into());
        }
        if let FuzzTopology::DataCenters { dc_of, .. } = &self.topo {
            if dc_of.len() != self.n_replicas as usize {
                return Err(format!(
                    "dc_of covers {} replicas, cluster has {}",
                    dc_of.len(),
                    self.n_replicas
                ));
            }
        }
        for (i, p) in self.partitions.iter().enumerate() {
            if p.start >= p.end {
                return Err(format!("partition {i}: start {} >= end {}", p.start, p.end));
            }
            if p.groups.len() != self.n_replicas as usize {
                return Err(format!(
                    "partition {i}: {} groups for {} replicas",
                    p.groups.len(),
                    self.n_replicas
                ));
            }
        }
        for (i, c) in self.crashes.iter().enumerate() {
            if c.replica >= self.n_replicas {
                return Err(format!("crash {i}: replica {} out of range", c.replica));
            }
            if let Some(r) = c.restart_at {
                if r <= c.crash_at {
                    return Err(format!("crash {i}: restart {} <= crash {}", r, c.crash_at));
                }
            }
        }
        Ok(())
    }

    /// Lowers the scenario to the simulator's configuration.
    pub fn sim_config(&self) -> SimConfig {
        let topology = match &self.topo {
            FuzzTopology::Uniform { base, jitter } => {
                Topology::Uniform(Latency::jittered(*base, *jitter))
            }
            FuzzTopology::DataCenters {
                dc_of,
                intra,
                inter,
            } => Topology::DataCenters {
                dc_of: dc_of.clone(),
                intra: Latency::jittered(intra.0, intra.1),
                inter: Latency::jittered(inter.0, inter.1),
            },
        };
        SimConfig {
            n_replicas: self.n_replicas as usize,
            duration: SimTime(self.duration),
            invoke_every: Latency::jittered(self.invoke.0, self.invoke.1),
            gossip_every: Latency::jittered(self.gossip.0, self.gossip.1),
            network: Network {
                topology,
                faults: LinkFaults {
                    drop: f64::from(self.drop_pm) / 1000.0,
                    duplicate: f64::from(self.dup_pm) / 1000.0,
                },
                retry: self.retry,
            },
            faults: FaultPlan {
                partitions: self
                    .partitions
                    .iter()
                    .map(|p| {
                        PartitionWindow::new(SimTime(p.start), SimTime(p.end), p.groups.clone())
                    })
                    .collect(),
                crashes: self
                    .crashes
                    .iter()
                    .map(|c| match c.restart_at {
                        Some(r) => {
                            CrashPlan::bounce(ReplicaId(c.replica), SimTime(c.crash_at), SimTime(r))
                        }
                        None => CrashPlan::permanent(ReplicaId(c.replica), SimTime(c.crash_at)),
                    })
                    .collect(),
            },
            final_sync: true,
        }
    }

    /// The scenario with its last replica removed (shrink step). Fault-plan
    /// entries referring to the removed replica are dropped or truncated.
    pub fn without_last_replica(&self) -> FuzzScenario {
        let mut sc = self.clone();
        let gone = sc.n_replicas - 1;
        sc.n_replicas = gone;
        for p in &mut sc.partitions {
            p.groups.truncate(gone as usize);
        }
        sc.crashes.retain(|c| c.replica < gone);
        if let FuzzTopology::DataCenters { dc_of, .. } = &mut sc.topo {
            dc_of.truncate(gone as usize);
        }
        sc
    }

    /// Renders the scenario as byte-stable fixture text. Every field is
    /// always present, in a fixed order, with one canonical spelling —
    /// `parse(render(sc)) == sc` exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{FIXTURE_MAGIC}");
        let _ = writeln!(out, "family = {}", self.family.name());
        let ts = match self.ts_mode {
            TsMode::PerObject => "per_object",
            TsMode::Shared => "shared",
        };
        let _ = writeln!(out, "ts_mode = {ts}");
        let _ = writeln!(out, "objects = {}", self.n_objects);
        let _ = writeln!(out, "replicas = {}", self.n_replicas);
        let _ = writeln!(out, "duration = {}", self.duration);
        let _ = writeln!(out, "invoke = {}+{}", self.invoke.0, self.invoke.1);
        let _ = writeln!(out, "gossip = {}+{}", self.gossip.0, self.gossip.1);
        match &self.topo {
            FuzzTopology::Uniform { base, jitter } => {
                let _ = writeln!(out, "topology = uniform {base}+{jitter}");
            }
            FuzzTopology::DataCenters {
                dc_of,
                intra,
                inter,
            } => {
                let _ = writeln!(
                    out,
                    "topology = dc {} intra {}+{} inter {}+{}",
                    csv(dc_of),
                    intra.0,
                    intra.1,
                    inter.0,
                    inter.1
                );
            }
        }
        let _ = writeln!(out, "drop_pm = {}", self.drop_pm);
        let _ = writeln!(out, "dup_pm = {}", self.dup_pm);
        let _ = writeln!(out, "retry = {}", self.retry);
        let _ = writeln!(out, "resync_after = {}", self.resync_after);
        let _ = writeln!(out, "max_invokes = {}", self.max_invokes);
        let _ = writeln!(out, "sim_seed = {}", self.sim_seed);
        for p in &self.partitions {
            let _ = writeln!(out, "partition = {}..{} {}", p.start, p.end, csv(&p.groups));
        }
        for c in &self.crashes {
            match c.restart_at {
                Some(r) => {
                    let _ = writeln!(out, "crash = {} {}..{}", c.replica, c.crash_at, r);
                }
                None => {
                    let _ = writeln!(out, "crash = {} {}..-", c.replica, c.crash_at);
                }
            }
        }
        out
    }

    /// Parses fixture text produced by [`FuzzScenario::render`].
    pub fn parse(text: &str) -> Result<FuzzScenario, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == FIXTURE_MAGIC => {}
            other => return Err(format!("bad magic line: {other:?}")),
        }
        // Field defaults are only placeholders: render always writes every
        // scalar field, so a round-tripped scenario never relies on them.
        let mut sc = FuzzScenario {
            family: Family::OpCounter,
            ts_mode: TsMode::Shared,
            n_objects: 1,
            n_replicas: 2,
            duration: 100,
            invoke: (10, 0),
            gossip: (10, 0),
            topo: FuzzTopology::Uniform { base: 1, jitter: 0 },
            drop_pm: 0,
            dup_pm: 0,
            retry: 10,
            resync_after: 8,
            max_invokes: 8,
            sim_seed: 0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        };
        for (no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(" = ")
                .ok_or_else(|| format!("line {}: expected `key = value`", no + 2))?;
            let err = |what: &str| format!("line {}: bad {what}: {value:?}", no + 2);
            match key {
                "family" => {
                    sc.family = Family::from_name(value).ok_or_else(|| err("family"))?;
                }
                "ts_mode" => {
                    sc.ts_mode = match value {
                        "per_object" => TsMode::PerObject,
                        "shared" => TsMode::Shared,
                        _ => return Err(err("ts_mode")),
                    };
                }
                "objects" => sc.n_objects = value.parse().map_err(|_| err("objects"))?,
                "replicas" => sc.n_replicas = value.parse().map_err(|_| err("replicas"))?,
                "duration" => sc.duration = value.parse().map_err(|_| err("duration"))?,
                "invoke" => sc.invoke = parse_pair(value).ok_or_else(|| err("invoke"))?,
                "gossip" => sc.gossip = parse_pair(value).ok_or_else(|| err("gossip"))?,
                "topology" => sc.topo = parse_topology(value).ok_or_else(|| err("topology"))?,
                "drop_pm" => sc.drop_pm = value.parse().map_err(|_| err("drop_pm"))?,
                "dup_pm" => sc.dup_pm = value.parse().map_err(|_| err("dup_pm"))?,
                "retry" => sc.retry = value.parse().map_err(|_| err("retry"))?,
                "resync_after" => {
                    sc.resync_after = value.parse().map_err(|_| err("resync_after"))?;
                }
                "max_invokes" => sc.max_invokes = value.parse().map_err(|_| err("max_invokes"))?,
                "sim_seed" => sc.sim_seed = value.parse().map_err(|_| err("sim_seed"))?,
                "partition" => {
                    let (span, groups) = value.split_once(' ').ok_or_else(|| err("partition"))?;
                    let (start, end) = parse_span(span).ok_or_else(|| err("partition"))?;
                    let groups = parse_csv(groups).ok_or_else(|| err("partition"))?;
                    sc.partitions.push(FuzzPartition { start, end, groups });
                }
                "crash" => {
                    let (replica, span) = value.split_once(' ').ok_or_else(|| err("crash"))?;
                    let replica = replica.parse().map_err(|_| err("crash"))?;
                    let (crash_at, rest) = span.split_once("..").ok_or_else(|| err("crash"))?;
                    let crash_at = crash_at.parse().map_err(|_| err("crash"))?;
                    let restart_at = if rest == "-" {
                        None
                    } else {
                        Some(rest.parse().map_err(|_| err("crash"))?)
                    };
                    sc.crashes.push(FuzzCrash {
                        replica,
                        crash_at,
                        restart_at,
                    });
                }
                _ => return Err(format!("line {}: unknown key {key:?}", no + 2)),
            }
        }
        Ok(sc)
    }
}

fn csv(xs: &[u32]) -> String {
    let mut s = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s
}

fn parse_csv(s: &str) -> Option<Vec<u32>> {
    s.split(',').map(|p| p.parse().ok()).collect()
}

fn parse_pair(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once('+')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_span(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..")?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_topology(s: &str) -> Option<FuzzTopology> {
    if let Some(rest) = s.strip_prefix("uniform ") {
        let (base, jitter) = parse_pair(rest)?;
        return Some(FuzzTopology::Uniform { base, jitter });
    }
    let rest = s.strip_prefix("dc ")?;
    let (dcs, rest) = rest.split_once(" intra ")?;
    let (intra, inter) = rest.split_once(" inter ")?;
    Some(FuzzTopology::DataCenters {
        dc_of: parse_csv(dcs)?,
        intra: parse_pair(intra)?,
        inter: parse_pair(inter)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzScenario {
        FuzzScenario {
            family: Family::MultiLwwRegister,
            ts_mode: TsMode::PerObject,
            n_objects: 3,
            n_replicas: 4,
            duration: 240,
            invoke: (15, 10),
            gossip: (12, 4),
            topo: FuzzTopology::DataCenters {
                dc_of: vec![0, 0, 1, 1],
                intra: (1, 2),
                inter: (40, 20),
            },
            drop_pm: 150,
            dup_pm: 50,
            retry: 12,
            resync_after: 8,
            max_invokes: 14,
            sim_seed: 99,
            partitions: vec![FuzzPartition {
                start: 40,
                end: 160,
                groups: vec![0, 0, 1, 1],
            }],
            crashes: vec![
                FuzzCrash {
                    replica: 2,
                    crash_at: 60,
                    restart_at: Some(180),
                },
                FuzzCrash {
                    replica: 1,
                    crash_at: 90,
                    restart_at: None,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let sc = sample();
        let text = sc.render();
        let back = FuzzScenario::parse(&text).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.render(), text, "second render must be byte-identical");
    }

    #[test]
    fn element_count_counts_structure() {
        let sc = sample();
        // 4 replicas + 1 partition + 2 crashes + drop + dup
        assert_eq!(sc.n_elements(), 9);
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut sc = sample();
        sc.partitions[0].groups.pop();
        assert!(sc.validate().is_err());
        let mut sc = sample();
        sc.crashes[0].replica = 9;
        assert!(sc.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        assert_eq!(Family::from_name("nope"), None);
    }
}
