//! The fuzzing oracle: replay one [`FuzzScenario`] and decide what it
//! proved.
//!
//! Every run goes through the same three gates, strongest first:
//!
//! 1. **Convergence** after the driver's final sync — the paper's "all
//!    updates eventually visible everywhere" hypothesis. A correct CRDT can
//!    *never* fail this, whatever the network did, so a failure is a
//!    finding on its own (the [`super::scenario::Family::BrokenCounter`]
//!    negative control trips exactly here).
//! 2. **Lattice laws** on the surviving states (gossip transports only) —
//!    the join-semilattice obligations of Appendix D.
//! 3. **Checker cross-check** of the recorded history through
//!    [`ral_verify::crosscheck`]: guided strategy vs complete memoized
//!    search vs brute-force reference (single-object), or sharded vs
//!    whole-history search (composed). Refutations *and* decider
//!    disagreements are findings.
//!
//! Alongside the verdict, the oracle reports which structural-coverage
//! dimensions the run exercised (from the scenario shape, the engine's
//! fault counters, and the history's concurrency structure) — the feedback
//! signal of the fuzz loop — plus the engine trace for byte-stable replay
//! comparison.

use crate::coverage::dim;
use crate::scenario::{Family, FuzzScenario, FuzzTopology, Transport};
use ral_analyze::fixtures::{BrokenCall, BrokenCounter, SumCall, SummingCounter};
use ral_core::compose::{ComposedLabel, MultiObjRewrite, MultiObjSpec, ObjLabel};
use ral_core::history::History;
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::{Identity, Rewrite};
use ral_core::ralin::{ShardableSpec, Strategy};
use ral_core::rng::Rng;
use ral_core::spec::Spec;
use ral_crdts::op::counter::OpCounter;
use ral_crdts::op::lww_register::LwwRegister;
use ral_crdts::op::or_set::{OrSet, OrSetRewrite};
use ral_crdts::op::rga::Rga;
use ral_crdts::op::rga_addat::RgaAddAt;
use ral_crdts::op::wooki::Wooki;
use ral_crdts::state::lww_element_set::LwwElementSet;
use ral_crdts::state::mv_register::MvRegister;
use ral_crdts::state::pn_counter::PnCounter;
use ral_crdts::state::two_phase_set::TwoPhaseSet;
use ral_runtime::delta::{DeltaConfig, DeltaCrdt};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::OpBased;
use ral_runtime::state_based::StateBased;
use ral_sim::driver::{DeltaDriver, Driver, MultiDriver, OpDriver, StateDriver};
use ral_sim::sim::{self, SimStats};
use ral_spec::addat::AddAt3Spec;
use ral_spec::counter::CounterSpec;
use ral_spec::register::{MvRegSpec, RegSpec};
use ral_spec::rga::RgaSpec;
use ral_spec::set::{OrSetSpec, SetSpec};
use ral_spec::wooki::WookiSpec;
use ral_verify::crosscheck::{self, HistoryVerdict};
use ral_verify::workloads;

/// Wooki's spec is exponential in concurrent inserts; the workload caps
/// inserts per replica at this many.
const WOOKI_INSERT_LIMIT: u16 = 5;

/// What one replayed scenario proved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerdictKind {
    /// Converged and every decider agreed the history is RA-linearizable.
    Pass,
    /// Replicas disagreed after final sync — a convergence violation.
    Diverged,
    /// The surviving states violate the join-semilattice laws.
    LatticeBroken,
    /// The complete search refuted RA-linearizability of the history.
    Refuted,
    /// Two deciders reached contradictory definite verdicts — a checker bug.
    Disagreement,
    /// Complete search found a witness the guided strategy missed
    /// (heuristic blind spot, not a soundness bug).
    StrategyMiss,
    /// Every decider exhausted its budget undecided.
    Undecided,
}

impl VerdictKind {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Pass => "pass",
            VerdictKind::Diverged => "diverged",
            VerdictKind::LatticeBroken => "lattice_broken",
            VerdictKind::Refuted => "refuted",
            VerdictKind::Disagreement => "disagreement",
            VerdictKind::StrategyMiss => "strategy_miss",
            VerdictKind::Undecided => "undecided",
        }
    }

    /// Whether this verdict is a counterexample worth shrinking.
    pub fn is_finding(self) -> bool {
        matches!(
            self,
            VerdictKind::Diverged
                | VerdictKind::LatticeBroken
                | VerdictKind::Refuted
                | VerdictKind::Disagreement
        )
    }
}

/// Everything one replay produced: the verdict, the coverage dimensions the
/// run lit up, and the byte-stable engine trace.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The oracle's verdict.
    pub verdict: VerdictKind,
    /// Human-readable account of a non-`Pass` verdict (empty on `Pass`).
    pub detail: String,
    /// Structural-coverage dimension indices the run exercised.
    pub dims: Vec<usize>,
    /// Successful invocations the engine performed.
    pub invokes: u64,
    /// Operations in the recorded history.
    pub history_len: usize,
    /// The engine trace ([`ral_sim::trace::Trace::render`]).
    pub trace: String,
}

/// Replays `sc` and cross-checks it with `budget` search nodes per decider.
pub fn run_scenario(sc: &FuzzScenario, budget: u64) -> Observation {
    dispatch(sc, Some(budget))
}

/// Replays `sc` without the history cross-check and returns the engine
/// trace — the byte-stable replay record the round-trip fixtures compare.
pub fn replay_trace(sc: &FuzzScenario) -> String {
    dispatch(sc, None).trace
}

fn dispatch(sc: &FuzzScenario, budget: Option<u64>) -> Observation {
    match sc.family {
        Family::OpCounter => op_case(
            sc,
            budget,
            OpCounter,
            &Identity,
            &CounterSpec,
            OpCounter::STRATEGY,
            |rng, _, _| Some(workloads::counter(rng)),
        ),
        Family::OpLwwRegister => op_case(
            sc,
            budget,
            LwwRegister::<u8>::new(),
            &Identity,
            &RegSpec::new(),
            LwwRegister::<u8>::STRATEGY,
            |rng, _, _| Some(workloads::lww_register(rng)),
        ),
        Family::OpOrSet => op_case(
            sc,
            budget,
            OrSet::<u8>::new(),
            &OrSetRewrite::new(),
            &OrSetSpec::new(),
            OrSet::<u8>::STRATEGY,
            |rng, _, _| Some(workloads::or_set(rng)),
        ),
        Family::OpRga => {
            let mut next = 0u16;
            op_case(
                sc,
                budget,
                Rga::<u16>::new(),
                &Identity,
                &RgaSpec::new(),
                Rga::<u16>::STRATEGY,
                move |rng, _, st| workloads::rga(rng, st, &mut next),
            )
        }
        Family::OpRgaAddAt => {
            let mut next = 0u16;
            op_case(
                sc,
                budget,
                RgaAddAt::<u16>::new(),
                &Identity,
                &AddAt3Spec::new(),
                RgaAddAt::<u16>::STRATEGY,
                move |rng, _, st| workloads::rga_addat(rng, st, &mut next),
            )
        }
        Family::OpWooki => {
            let mut next = 0u16;
            op_case(
                sc,
                budget,
                Wooki::<u16>::new(),
                &Identity,
                &WookiSpec::new(),
                Wooki::<u16>::STRATEGY,
                move |rng, _, st| workloads::wooki(rng, st, &mut next, WOOKI_INSERT_LIMIT),
            )
        }
        Family::StatePnCounter => state_case(
            sc,
            budget,
            PnCounter,
            &Identity,
            &CounterSpec,
            PnCounter::STRATEGY,
            |rng, _, _| Some(workloads::pn_counter(rng)),
        ),
        Family::StateMvRegister => state_case(
            sc,
            budget,
            MvRegister::<u8>::new(),
            &Identity,
            &MvRegSpec::new(),
            MvRegister::<u8>::STRATEGY,
            |rng, _, _| Some(workloads::mv_register(rng)),
        ),
        Family::StateLwwElementSet => state_case(
            sc,
            budget,
            LwwElementSet::<u8>::new(),
            &Identity,
            &SetSpec::new(),
            LwwElementSet::<u8>::STRATEGY,
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        ),
        Family::StateTwoPhaseSet => {
            let mut next = 0u16;
            state_case(
                sc,
                budget,
                TwoPhaseSet::<u16>::new(),
                &Identity,
                &SetSpec::new(),
                TwoPhaseSet::<u16>::STRATEGY,
                move |rng, _, st| workloads::two_phase_set(rng, st, &mut next),
            )
        }
        Family::DeltaPnCounter => delta_case(
            sc,
            budget,
            PnCounter,
            &Identity,
            &CounterSpec,
            PnCounter::STRATEGY,
            |rng, _, _| Some(workloads::pn_counter(rng)),
        ),
        Family::DeltaLwwElementSet => delta_case(
            sc,
            budget,
            LwwElementSet::<u8>::new(),
            &Identity,
            &SetSpec::new(),
            LwwElementSet::<u8>::STRATEGY,
            |rng, _, _| Some(workloads::lww_element_set(rng)),
        ),
        Family::MultiCounter => multi_case(
            sc,
            budget,
            OpCounter,
            &MultiObjRewrite::new(Identity),
            &MultiObjSpec::new(CounterSpec, sc.n_objects as usize),
            |rng, _, _, _| Some(workloads::counter(rng)),
        ),
        Family::MultiLwwRegister => multi_case(
            sc,
            budget,
            LwwRegister::<u8>::new(),
            &MultiObjRewrite::new(Identity),
            &MultiObjSpec::new(RegSpec::new(), sc.n_objects as usize),
            |rng, _, _, _| Some(workloads::lww_register(rng)),
        ),
        Family::BrokenCounter => broken_case(sc),
        Family::SummingCounter => summing_case(sc),
    }
}

// Wraps a workload with the scenario's total-invoke cap (the knob that
// keeps histories inside the complete searches' reach — and that the
// shrinker minimizes).
fn capped<St, Call>(
    max_invokes: u64,
    mut call_gen: impl FnMut(&mut Rng, ReplicaId, &St) -> Option<Call>,
) -> impl FnMut(&mut Rng, ReplicaId, &St) -> Option<Call> {
    let mut left = max_invokes;
    move |rng, r, st| {
        if left == 0 {
            return None;
        }
        let call = call_gen(rng, r, st)?;
        left -= 1;
        Some(call)
    }
}

fn op_case<C, R, S, F>(
    sc: &FuzzScenario,
    budget: Option<u64>,
    crdt: C,
    rw: &R,
    spec: &S,
    strategy: Strategy,
    call_gen: F,
) -> Observation
where
    C: OpBased,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut driver = OpDriver::new(
        crdt,
        sc.n_replicas as usize,
        capped(sc.max_invokes, call_gen),
    );
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let h = driver.into_cluster().into_history();
    let dims = all_dims(sc, &run.stats, &h);
    let (verdict, detail) = if !converged {
        diverged()
    } else {
        checked(budget, || {
            fold(crosscheck::op_oracle(
                &h,
                rw,
                spec,
                strategy,
                budget.unwrap(),
            ))
        })
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

fn state_case<C, R, S, F>(
    sc: &FuzzScenario,
    budget: Option<u64>,
    crdt: C,
    rw: &R,
    spec: &S,
    strategy: Strategy,
    call_gen: F,
) -> Observation
where
    C: StateBased,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut driver = StateDriver::new(
        crdt,
        sc.n_replicas as usize,
        capped(sc.max_invokes, call_gen),
    );
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let lattice_ok = driver.cluster().check_lattice_laws();
    let h = driver.into_cluster().into_history();
    let dims = all_dims(sc, &run.stats, &h);
    let (verdict, detail) = if !converged {
        diverged()
    } else if !lattice_ok {
        lattice_broken()
    } else {
        checked(budget, || {
            fold(crosscheck::op_oracle(
                &h,
                rw,
                spec,
                strategy,
                budget.unwrap(),
            ))
        })
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

fn delta_case<C, R, S, F>(
    sc: &FuzzScenario,
    budget: Option<u64>,
    crdt: C,
    rw: &R,
    spec: &S,
    strategy: Strategy,
    call_gen: F,
) -> Observation
where
    C: DeltaCrdt,
    R: Rewrite<C::Label, Out = S::Label>,
    S: Spec + Sync,
    S::Label: Sync,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let config = DeltaConfig {
        resync_after: sc.resync_after as usize,
    };
    let mut driver = DeltaDriver::new(
        crdt,
        config,
        sc.n_replicas as usize,
        capped(sc.max_invokes, call_gen),
    );
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let lattice_ok = driver.cluster().check_lattice_laws();
    let delta_stats = driver.cluster().stats();
    let h = driver.into_cluster().into_history();
    let mut dims = all_dims(sc, &run.stats, &h);
    if delta_stats.resyncs > 0 {
        dims.push(dim("delta_resync"));
    }
    if delta_stats.gc_entries > 0 {
        dims.push(dim("delta_gc"));
    }
    let (verdict, detail) = if !converged {
        diverged()
    } else if !lattice_ok {
        lattice_broken()
    } else {
        checked(budget, || {
            fold(crosscheck::op_oracle(
                &h,
                rw,
                spec,
                strategy,
                budget.unwrap(),
            ))
        })
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

fn multi_case<C, R, S, F>(
    sc: &FuzzScenario,
    budget: Option<u64>,
    crdt: C,
    rw: &R,
    spec: &S,
    call_gen: F,
) -> Observation
where
    C: OpBased,
    R: Rewrite<ObjLabel<C::Label>, Out = S::Label>,
    S: ShardableSpec + Sync,
    S::Label: ComposedLabel + Sync,
    F: FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
{
    let cluster = MultiCluster::new(
        crdt,
        sc.n_objects as usize,
        sc.n_replicas as usize,
        sc.ts_mode,
    );
    // The per-object cap wrapper has a different workload shape, so the
    // invoke budget is threaded by hand here.
    let mut left = sc.max_invokes;
    let mut call_gen = call_gen;
    let mut driver = MultiDriver::new(cluster, move |rng, r, obj, st| {
        if left == 0 {
            return None;
        }
        let call = call_gen(rng, r, obj, st)?;
        left -= 1;
        Some(call)
    });
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let h = driver.into_cluster().into_history();
    let mut dims = all_dims(sc, &run.stats, &h);
    if cross_object_interleave(&h) {
        dims.push(dim("cross_object_interleave"));
    }
    let (verdict, detail) = if !converged {
        diverged()
    } else {
        checked(budget, || {
            fold(crosscheck::composed_oracle(&h, rw, spec, budget.unwrap()))
        })
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

// Negative control: convergence is the only oracle a broken op-based
// counter needs — its non-commutative effectors diverge on their own.
fn broken_case(sc: &FuzzScenario) -> Observation {
    let mut driver = OpDriver::new(
        BrokenCounter,
        sc.n_replicas as usize,
        capped(sc.max_invokes, |rng: &mut Rng, _, _| {
            Some(if rng.random_bool(0.7) {
                BrokenCall::Inc
            } else {
                BrokenCall::Dec
            })
        }),
    );
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let h = driver.into_cluster().into_history();
    let dims = all_dims(sc, &run.stats, &h);
    let (verdict, detail) = if converged {
        (VerdictKind::Pass, String::new())
    } else {
        diverged()
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

// Negative control: the summing "join" breaks idempotence, so the lattice
// laws catch it even when the states happen to agree.
fn summing_case(sc: &FuzzScenario) -> Observation {
    let mut driver = StateDriver::new(
        SummingCounter,
        sc.n_replicas as usize,
        capped(sc.max_invokes, |_: &mut Rng, _, _| Some(SumCall::Inc)),
    );
    let run = sim::run(&mut driver, &sc.sim_config(), sc.sim_seed);
    let converged = driver.converged();
    let lattice_ok = driver.cluster().check_lattice_laws();
    let h = driver.into_cluster().into_history();
    let dims = all_dims(sc, &run.stats, &h);
    let (verdict, detail) = if !lattice_ok {
        lattice_broken()
    } else if !converged {
        diverged()
    } else {
        (VerdictKind::Pass, String::new())
    };
    observe(
        verdict,
        detail,
        dims,
        &run.stats,
        h.len(),
        run.trace.render(),
    )
}

fn diverged() -> (VerdictKind, String) {
    (
        VerdictKind::Diverged,
        "replicas disagree after final sync".into(),
    )
}

fn lattice_broken() -> (VerdictKind, String) {
    (
        VerdictKind::LatticeBroken,
        "surviving states violate the join-semilattice laws".into(),
    )
}

// Runs the history cross-check only when a budget was supplied (trace-only
// replays skip it).
fn checked(
    budget: Option<u64>,
    run: impl FnOnce() -> (VerdictKind, String),
) -> (VerdictKind, String) {
    match budget {
        Some(_) => run(),
        None => (VerdictKind::Pass, String::new()),
    }
}

fn fold(v: HistoryVerdict) -> (VerdictKind, String) {
    match v {
        HistoryVerdict::Linearizable => (VerdictKind::Pass, String::new()),
        HistoryVerdict::StrategyMiss => (
            VerdictKind::StrategyMiss,
            "guided strategy missed a witness the complete search found".into(),
        ),
        HistoryVerdict::Refuted { detail } => (VerdictKind::Refuted, detail),
        HistoryVerdict::Disagreement { detail } => (VerdictKind::Disagreement, detail),
        HistoryVerdict::Undecided => (
            VerdictKind::Undecided,
            "every decider exhausted its budget".into(),
        ),
    }
}

fn observe(
    verdict: VerdictKind,
    detail: String,
    mut dims: Vec<usize>,
    stats: &SimStats,
    history_len: usize,
    trace: String,
) -> Observation {
    dims.sort_unstable();
    dims.dedup();
    Observation {
        verdict,
        detail,
        dims,
        invokes: stats.invokes as u64,
        history_len,
        trace,
    }
}

// The structural dimensions a run exercised: scenario shape + engine fault
// counters + history concurrency. Transport-specific dims (delta resync,
// cross-object interleave) are appended by the case functions.
fn all_dims<L>(sc: &FuzzScenario, stats: &SimStats, h: &History<L>) -> Vec<usize> {
    let mut dims = Vec::new();
    dims.push(match sc.n_replicas {
        2 => dim("replicas_2"),
        3 | 4 => dim("replicas_3_4"),
        _ => dim("replicas_5_plus"),
    });
    dims.push(match sc.topo {
        FuzzTopology::Uniform { .. } => dim("topology_uniform"),
        FuzzTopology::DataCenters { .. } => dim("topology_dc"),
    });
    match sc.partitions.len() {
        0 => {}
        1 => dims.push(dim("partition_single")),
        _ => dims.push(dim("partition_multi")),
    }
    if sc.partitions.iter().any(|p| p.sides() >= 3) {
        dims.push(dim("partition_3way"));
    }
    if sc.crashes.iter().any(|c| c.restart_at.is_some()) {
        dims.push(dim("crash_bounce"));
    }
    if sc.crashes.iter().any(|c| c.restart_at.is_none()) {
        dims.push(dim("crash_permanent"));
    }
    if sc.crashes.iter().any(|c| {
        sc.partitions
            .iter()
            .any(|p| p.start <= c.crash_at && c.crash_at < p.end)
    }) {
        dims.push(dim("crash_during_partition"));
    }
    if stats.dropped > 0 {
        dims.push(dim("faults_drop"));
    }
    if stats.duplicated > 0 {
        dims.push(dim("faults_dup"));
    }
    if stats.held > 0 {
        dims.push(dim("reorder_held"));
    }
    if stats.retried > 0 {
        dims.push(dim("retry_recovery"));
    }
    dims.push(match sc.family.transport() {
        Transport::Op => dim("family_op"),
        Transport::State => dim("family_state"),
        Transport::Delta => dim("family_delta"),
        Transport::Multi => dim("family_multi"),
    });
    if sc.family.transport() == Transport::Multi {
        dims.push(match sc.ts_mode {
            TsMode::Shared => dim("ts_shared"),
            TsMode::PerObject => dim("ts_per_object"),
        });
        if sc.n_objects >= 2 {
            dims.push(dim("multi_objects_2plus"));
        }
    }
    if antichain_at_least(h, 4) {
        dims.push(dim("concurrency_width_4plus"));
    }
    dims
}

// Greedy search for an antichain of `k` pairwise-concurrent operations
// (exact maximum-width computation is NP-ish; greedy from each start is
// plenty for a coverage bit on histories this small).
fn antichain_at_least<L>(h: &History<L>, k: usize) -> bool {
    for start in 0..h.len() {
        let mut chain = vec![start];
        for j in start + 1..h.len() {
            if chain.iter().all(|&c| h.concurrent(c, j)) {
                chain.push(j);
                if chain.len() >= k {
                    return true;
                }
            }
        }
    }
    false
}

// Did two operations on *different* objects overlap in time? The composed
// shapes the §5 composition theorems (and the Fig. 10 anomaly) care about.
fn cross_object_interleave<L>(h: &History<ObjLabel<L>>) -> bool {
    for i in 0..h.len() {
        for j in i + 1..h.len() {
            if h.label(i).obj != h.label(j).obj && h.concurrent(i, j) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn quiet(family: Family) -> FuzzScenario {
        FuzzScenario {
            family,
            ts_mode: TsMode::Shared,
            n_objects: if family.transport() == Transport::Multi {
                2
            } else {
                1
            },
            n_replicas: 2,
            duration: 200,
            invoke: (15, 5),
            gossip: (10, 2),
            topo: FuzzTopology::Uniform { base: 2, jitter: 3 },
            drop_pm: 0,
            dup_pm: 0,
            retry: 10,
            resync_after: 8,
            max_invokes: 8,
            sim_seed: 42,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    #[test]
    fn every_shipped_family_passes_a_quiet_scenario() {
        for family in Family::SHIPPED {
            let obs = run_scenario(&quiet(family), 2_000_000);
            assert_eq!(
                obs.verdict,
                VerdictKind::Pass,
                "{}: {}",
                family.name(),
                obs.detail
            );
            assert!(obs.history_len > 0, "{}: empty history", family.name());
        }
    }

    #[test]
    fn broken_counter_is_caught() {
        // Concurrent ops on both replicas: the non-commutative effectors
        // race, so some seed in a small window must diverge.
        let mut sc = quiet(Family::BrokenCounter);
        sc.invoke = (5, 2);
        sc.max_invokes = 12;
        let found = (0..20).any(|seed| {
            sc.sim_seed = seed;
            run_scenario(&sc, 1_000).verdict == VerdictKind::Diverged
        });
        assert!(found, "BrokenCounter never diverged in 20 seeds");
    }

    #[test]
    fn summing_counter_breaks_the_lattice() {
        let obs = run_scenario(&quiet(Family::SummingCounter), 1_000);
        assert_eq!(obs.verdict, VerdictKind::LatticeBroken, "{}", obs.detail);
    }

    #[test]
    fn observation_is_deterministic() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..8 {
            let sc = gen::generate(&mut rng, &Family::SHIPPED);
            let a = run_scenario(&sc, 500_000);
            let b = run_scenario(&sc, 500_000);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.dims, b.dims);
            assert_eq!(a.trace, b.trace);
            assert_eq!(replay_trace(&sc), a.trace);
        }
    }
}
