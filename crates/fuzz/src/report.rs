//! FUZZ_report.json rendering — hand-rolled, canonical, byte-stable.
//!
//! Same-seed campaigns must render byte-identical reports, so everything
//! ordered is emitted in a fixed order (coverage dimensions by index,
//! verdicts by name, findings by discovery) and the only nondeterministic
//! field — wall-clock nanoseconds — is optional and last, so tests simply
//! omit it. Fractions are reported in per-mille integers; no float
//! formatting anywhere.

use crate::coverage::DIMENSIONS;
use crate::{FuzzConfig, FuzzOutcome};
use ral_obs::json::json_string;
use std::fmt::Write as _;

/// Renders the campaign report. Pass `wall_nanos: None` for a byte-stable
/// report (the determinism fixtures do), or `Some(ral_obs::wallclock::now_nanos())`
/// for the CLI.
pub fn render_report(cfg: &FuzzConfig, out: &FuzzOutcome, wall_nanos: Option<u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"tool\": \"ral-fuzz\",");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"runs\": {},", out.runs);
    let _ = writeln!(s, "  \"dedup\": {},", out.dedup);
    let _ = writeln!(s, "  \"novel\": {},", out.novel);
    let _ = writeln!(s, "  \"stream_fnv\": {},", out.stream_fnv);
    let _ = writeln!(s, "  \"coverage\": {{");
    let _ = writeln!(s, "    \"hit\": {},", out.coverage.hit());
    let _ = writeln!(s, "    \"total\": {},", DIMENSIONS.len());
    let _ = writeln!(
        s,
        "    \"fraction_permille\": {},",
        (out.coverage.hit() * 1000) / DIMENSIONS.len()
    );
    let _ = writeln!(s, "    \"signatures\": {},", out.coverage.signatures());
    let _ = writeln!(s, "    \"dims\": {{");
    let n_dims = DIMENSIONS.len();
    for (i, (name, count)) in out.coverage.iter().enumerate() {
        let comma = if i + 1 < n_dims { "," } else { "" };
        let _ = writeln!(s, "      {}: {count}{comma}", json_string(name));
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"verdicts\": {{");
    let n_verdicts = out.verdicts.len();
    for (i, (name, count)) in out.verdicts.iter().enumerate() {
        let comma = if i + 1 < n_verdicts { "," } else { "" };
        let _ = writeln!(s, "    {}: {count}{comma}", json_string(name));
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"findings\": [");
    let n_findings = out.findings.len();
    for (i, f) in out.findings.iter().enumerate() {
        let comma = if i + 1 < n_findings { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"verdict\": {},", json_string(f.verdict.name()));
        let _ = writeln!(s, "      \"detail\": {},", json_string(&f.detail));
        let _ = writeln!(
            s,
            "      \"family\": {},",
            json_string(f.shrunk.family.name())
        );
        let _ = writeln!(s, "      \"elements\": {},", f.shrunk.n_elements());
        let _ = writeln!(s, "      \"shrink_replays\": {},", f.replays);
        let _ = writeln!(s, "      \"shrunk\": {}", json_string(&f.shrunk.render()));
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    match wall_nanos {
        Some(ns) => {
            let _ = writeln!(s, "  \"wall_nanos\": {ns}");
        }
        None => {
            let _ = writeln!(s, "  \"wall_nanos\": null");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz;
    use crate::scenario::Family;

    #[test]
    fn report_is_valid_json_and_stable() {
        let cfg = FuzzConfig {
            seed: 5,
            runs: 6,
            search_budget: 200_000,
            ..Default::default()
        };
        let out = fuzz(&cfg);
        let report = render_report(&cfg, &out, None);
        ral_obs::json::validate(&report).expect("report must be valid JSON");
        assert_eq!(
            report,
            render_report(&cfg, &fuzz(&cfg), None),
            "same seed, same report bytes"
        );
        assert!(report.contains("\"tool\": \"ral-fuzz\""));
        assert!(report.contains("\"fraction_permille\""));
    }

    #[test]
    fn findings_render_with_their_fixture() {
        let cfg = FuzzConfig {
            seed: 6,
            runs: 6,
            families: Family::BROKEN.to_vec(),
            search_budget: 1_000,
            shrink_replays: 200,
        };
        let out = fuzz(&cfg);
        assert!(!out.findings.is_empty());
        let report = render_report(&cfg, &out, Some(123));
        ral_obs::json::validate(&report).expect("report must be valid JSON");
        assert!(report.contains("ral-fuzz scenario v1"));
        assert!(report.contains("\"wall_nanos\": 123"));
    }
}
