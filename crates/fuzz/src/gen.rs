//! Seeded scenario generation and mutation.
//!
//! Everything here is a pure function of the supplied [`Rng`]: the fuzz
//! loop owns one seeded stream, so the i-th generated scenario is a pure
//! function of `(fuzzer seed, i)` — the determinism contract the fixture
//! pins (`tests/fuzz_determinism.rs`).
//!
//! Parameter ranges are tuned so every generated run stays *checkable*:
//! op-based and composed families face a complete search, so their
//! histories are capped tighter than the gossip families whose oracle is
//! convergence plus lattice laws.

use crate::scenario::{Family, FuzzCrash, FuzzPartition, FuzzScenario, FuzzTopology, Transport};
use ral_core::rng::Rng;
use ral_runtime::multi::TsMode;

/// Generates one scenario for a family drawn from `families`.
pub fn generate(rng: &mut Rng, families: &[Family]) -> FuzzScenario {
    assert!(!families.is_empty(), "no families to fuzz");
    let family = families[rng.random_range(0..families.len())];
    generate_for_family(rng, family)
}

/// Generates one scenario of the given family.
pub fn generate_for_family(rng: &mut Rng, family: Family) -> FuzzScenario {
    let transport = family.transport();
    // Search-facing families keep clusters and histories small; the
    // gossip families can afford wider clusters and more ops.
    let (n_replicas, max_invokes) = match (transport, family) {
        (_, Family::OpWooki) => (rng.random_range(2..=3u32), rng.random_range(4..=8u64)),
        (Transport::Op | Transport::Multi, _) => {
            (rng.random_range(2..=4u32), rng.random_range(6..=12u64))
        }
        (Transport::State | Transport::Delta, _) => {
            (rng.random_range(2..=6u32), rng.random_range(8..=16u64))
        }
    };
    let duration = rng.random_range(150..=400u64);
    let lossy = matches!(transport, Transport::State | Transport::Delta);
    let mut sc = FuzzScenario {
        family,
        ts_mode: if rng.random_bool(0.5) {
            TsMode::Shared
        } else {
            TsMode::PerObject
        },
        n_objects: match transport {
            Transport::Multi => rng.random_range(2..=4u32),
            _ => 1,
        },
        n_replicas,
        duration,
        invoke: (rng.random_range(8..=25u64), rng.random_range(0..=12u64)),
        gossip: (rng.random_range(6..=20u64), rng.random_range(0..=8u64)),
        topo: random_topology(rng, n_replicas),
        drop_pm: if lossy && rng.random_bool(0.5) {
            rng.random_range(1..=250u32)
        } else {
            0
        },
        dup_pm: if lossy && rng.random_bool(0.35) {
            rng.random_range(1..=150u32)
        } else {
            0
        },
        retry: rng.random_range(5..=20u64),
        resync_after: rng.random_range(4..=16u64),
        max_invokes,
        sim_seed: rng.next_u64(),
        partitions: Vec::new(),
        crashes: Vec::new(),
    };
    let n_partitions = [0usize, 1, 1, 2][rng.random_range(0..4usize)];
    for _ in 0..n_partitions {
        let p = random_partition(rng, &sc);
        sc.partitions.push(p);
    }
    let n_crashes = [0usize, 0, 1, 2][rng.random_range(0..4usize)];
    for _ in 0..n_crashes {
        let c = random_crash(rng, &sc);
        sc.crashes.push(c);
    }
    debug_assert!(sc.validate().is_ok(), "generator broke its own invariants");
    sc
}

fn random_topology(rng: &mut Rng, n_replicas: u32) -> FuzzTopology {
    if n_replicas < 3 || rng.random_bool(0.6) {
        FuzzTopology::Uniform {
            base: rng.random_range(1..=30u64),
            jitter: rng.random_range(0..=20u64),
        }
    } else {
        let n_dcs = rng.random_range(2..=3u32.min(n_replicas));
        // Round-robin assignment guarantees every DC is populated, then a
        // shuffle decorrelates DC membership from replica ids.
        let mut dc_of: Vec<u32> = (0..n_replicas).map(|r| r % n_dcs).collect();
        rng.shuffle(&mut dc_of);
        FuzzTopology::DataCenters {
            dc_of,
            intra: (rng.random_range(1..=3u64), rng.random_range(0..=2u64)),
            inter: (rng.random_range(30..=60u64), rng.random_range(0..=25u64)),
        }
    }
}

fn random_partition(rng: &mut Rng, sc: &FuzzScenario) -> FuzzPartition {
    let start = rng.random_range(10..=sc.duration / 2);
    let len = rng.random_range(20..=sc.duration / 2);
    // Up to three-way splits on clusters big enough to have three sides.
    let sides = if sc.n_replicas >= 3 && rng.random_bool(0.3) {
        3
    } else {
        2
    };
    let groups = (0..sc.n_replicas)
        .map(|_| rng.random_range(0..sides))
        .collect();
    FuzzPartition {
        start,
        end: start + len,
        groups,
    }
}

fn random_crash(rng: &mut Rng, sc: &FuzzScenario) -> FuzzCrash {
    let replica = rng.random_range(0..sc.n_replicas);
    let crash_at = rng.random_range(20..=sc.duration * 2 / 3);
    let restart_at = if rng.random_bool(0.75) {
        Some(crash_at + rng.random_range(20..=120u64))
    } else {
        None
    };
    FuzzCrash {
        replica,
        crash_at,
        restart_at,
    }
}

/// Mutates a corpus scenario: 1–3 random small edits (the coverage loop
/// feeds back high-novelty seeds through this).
pub fn mutate(rng: &mut Rng, sc: &FuzzScenario) -> FuzzScenario {
    let mut out = sc.clone();
    let edits = rng.random_range(1..=3usize);
    for _ in 0..edits {
        match rng.random_range(0..8u32) {
            // A fresh workload/latency draw over the same structure.
            0 => out.sim_seed = rng.next_u64(),
            // Nudge the invoke cadence (contention knob).
            1 => out.invoke.0 = rng.random_range(8..=25u64),
            // Add or re-roll a partition.
            2 => {
                if out.partitions.len() < 3 {
                    let p = random_partition(rng, &out);
                    out.partitions.push(p);
                } else {
                    let i = rng.random_range(0..out.partitions.len());
                    out.partitions[i] = random_partition(rng, &out);
                }
            }
            // Add or re-roll a crash.
            3 => {
                if out.crashes.len() < 3 {
                    let c = random_crash(rng, &out);
                    out.crashes.push(c);
                } else {
                    let i = rng.random_range(0..out.crashes.len());
                    out.crashes[i] = random_crash(rng, &out);
                }
            }
            // Re-roll the topology.
            4 => out.topo = random_topology(rng, out.n_replicas),
            // Flip the timestamp discipline (composed stores only).
            5 => {
                out.ts_mode = match out.ts_mode {
                    TsMode::Shared => TsMode::PerObject,
                    TsMode::PerObject => TsMode::Shared,
                };
            }
            // Re-roll link faults on lossy transports.
            6 => {
                if matches!(out.family.transport(), Transport::State | Transport::Delta) {
                    out.drop_pm = rng.random_range(0..=250u32);
                    out.dup_pm = rng.random_range(0..=150u32);
                }
            }
            // Stretch or squeeze the run (more/less overlap with faults).
            _ => out.duration = rng.random_range(150..=400u64),
        }
    }
    debug_assert!(out.validate().is_ok(), "mutation broke scenario invariants");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let gen_stream = |seed: u64| -> Vec<String> {
            let mut rng = Rng::seed_from_u64(seed);
            (0..30)
                .map(|_| generate(&mut rng, &Family::SHIPPED).render())
                .collect()
        };
        assert_eq!(gen_stream(7), gen_stream(7));
        assert_ne!(gen_stream(7), gen_stream(8));
    }

    #[test]
    fn generated_scenarios_validate_and_round_trip() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            let sc = generate(&mut rng, &Family::ALL);
            sc.validate().expect("generated scenario must validate");
            let back = FuzzScenario::parse(&sc.render()).unwrap();
            assert_eq!(back, sc);
        }
    }

    #[test]
    fn mutation_preserves_validity() {
        let mut rng = Rng::seed_from_u64(13);
        let mut sc = generate(&mut rng, &Family::SHIPPED);
        for _ in 0..100 {
            sc = mutate(&mut rng, &sc);
            sc.validate().expect("mutated scenario must validate");
        }
    }
}
