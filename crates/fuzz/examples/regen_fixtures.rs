//! Regenerates the byte-pinned counterexample fixtures under
//! `tests/fixtures/` from the seeded negative-control campaigns.
//!
//! ```text
//! cargo run -p ral-fuzz --example regen_fixtures
//! ```
//!
//! For each negative-control family this runs the exact campaign
//! `tests/fuzz_negative_control.rs` runs, takes the first shrunk finding,
//! and writes its byte-stable rendering next to the root test suite. Run
//! it (and re-check the pinned seeds it prints) whenever the generator,
//! the oracle, or the shrinker changes shape; the test then fails loudly
//! until the new bytes are reviewed and committed.

use ral_fuzz::scenario::Family;
use ral_fuzz::{fuzz, FuzzConfig};
use std::path::Path;

/// The campaign `tests/fuzz_negative_control.rs` pins: one family, a
/// bounded number of runs, a checker budget too small to matter (broken
/// families fail before the search), and a generous shrink allowance.
fn campaign(family: Family, seed: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        runs: 10,
        families: vec![family],
        search_budget: 1_000,
        shrink_replays: 400,
    }
}

fn main() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/fixtures");
    std::fs::create_dir_all(&fixtures).expect("create tests/fixtures");
    for (family, file) in [
        (Family::BrokenCounter, "fuzz_broken_counter.txt"),
        (Family::SummingCounter, "fuzz_summing_counter.txt"),
    ] {
        // The first seed whose bounded campaign catches the bug; the test
        // hardcodes the same seed, so a generator change that shifts it
        // must be mirrored there.
        let (seed, out) = (1..=20)
            .map(|seed| (seed, fuzz(&campaign(family, seed))))
            .find(|(_, out)| !out.findings.is_empty())
            .unwrap_or_else(|| panic!("{}: no finding in seeds 1..=20", family.name()));
        let finding = &out.findings[0];
        let path = fixtures.join(file);
        std::fs::write(&path, finding.shrunk.render()).expect("write fixture");
        println!(
            "{}: seed {} verdict {} ({} -> {} elements, {} replays) -> {}",
            family.name(),
            seed,
            finding.verdict.name(),
            finding.original.n_elements(),
            finding.shrunk.n_elements(),
            finding.replays,
            path.display()
        );
    }
}
