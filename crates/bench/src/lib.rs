#![warn(missing_docs)]
//! Minimal internal benchmarking harness — the workspace's `criterion`
//! replacement, so `cargo bench` works offline with zero external crates.
//!
//! Each bench target is a plain binary (`harness = false` in
//! `Cargo.toml`) built from [`bench_group!`] + [`bench_main!`]. The
//! measurement protocol per benchmark:
//!
//! 1. **warmup** — run the closure for ~`warmup` wall time to stabilise
//!    caches and frequency scaling;
//! 2. **calibrate** — pick an iteration count per sample so one sample
//!    takes ~`sample_time`;
//! 3. **sample** — collect `sample_size` samples and report the
//!    **median** per-iteration time (plus min/mean/max).
//!
//! Every run prints a human-readable line per benchmark and, at process
//! exit, a JSON document on stdout (between `BENCH-JSON-BEGIN`/`END`
//! markers) for machine consumption. Passing `--save <path>` (or setting
//! `RAL_BENCH_JSON=<path>` in the environment) writes the JSON to a file
//! instead.
//!
//! A benchmark name passed as a CLI argument filters (substring match),
//! mirroring libtest: `cargo bench --bench figures -- fig5`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One measured benchmark: its name and per-iteration statistics.
#[derive(Clone, Debug)]
pub struct Record {
    /// Full benchmark name (`group/function/param`).
    pub name: String,
    /// Samples actually collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median per-iteration time.
    pub median: Duration,
    /// Arithmetic mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
}

/// Escapes `s` as a JSON string literal (quotes included). Rust's `{:?}`
/// is close but not JSON: it renders non-ASCII as `\u{b5}`-style escapes
/// that no JSON parser accepts.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"samples\":{},\"iters_per_sample\":{},\
             \"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            json_string(&self.name),
            self.samples,
            self.iters_per_sample,
            self.median.as_nanos(),
            self.mean.as_nanos(),
            self.min.as_nanos(),
            self.max.as_nanos(),
        )
    }
}

/// Formats a duration the way humans read benchmark output.
fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Names a benchmark within a group, optionally parameterised.
///
/// API-compatible with the criterion type of the same name for the two
/// constructors the benches use.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter (the group name already identifies the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Hands the benchmark closure to the measurement loop.
pub struct Bencher<'a> {
    harness: &'a Harness,
    sample_size: usize,
    record: Option<Record>,
    name: String,
}

impl Bencher<'_> {
    /// Measures `routine`: warmup, calibration, then `sample_size`
    /// samples whose median is reported.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup (and a first timing estimate).
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.harness.warmup {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() / u128::from(warmup_iters.max(1));

        // Calibrate iterations per sample to ~sample_time.
        let target = self.harness.sample_time.as_nanos();
        let iters = ((target / per_iter.max(1)).min(u128::from(u64::MAX)) as u64).max(1);

        let mut per_iter_times: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter_times.push(start.elapsed() / iters.try_into().unwrap_or(u32::MAX));
        }
        per_iter_times.sort_unstable();
        let median = per_iter_times[per_iter_times.len() / 2];
        let mean = per_iter_times.iter().sum::<Duration>() / per_iter_times.len() as u32;
        self.record = Some(Record {
            name: self.name.clone(),
            samples: per_iter_times.len(),
            iters_per_sample: iters,
            median,
            mean,
            min: per_iter_times[0],
            max: *per_iter_times.last().unwrap(),
        });
    }
}

/// Top-level harness state: configuration, the name filter, and every
/// record measured so far.
pub struct Harness {
    warmup: Duration,
    sample_time: Duration,
    default_sample_size: usize,
    filter: Option<String>,
    save_path: Option<PathBuf>,
    records: Vec<Record>,
}

/// Criterion-compatible alias so bench functions keep their
/// `fn bench(c: &mut Criterion)` signatures.
pub type Criterion = Harness;

impl Default for Harness {
    fn default() -> Self {
        Harness::from_args(std::env::args().skip(1))
    }
}

impl Harness {
    /// Builds a harness from CLI-style arguments (used by [`bench_main!`]).
    ///
    /// Recognised: `--save <path>` (JSON destination), `--quick` (fewer,
    /// shorter samples), and a free-form substring filter. Flags libtest
    /// passes to bench binaries (`--bench`, `--test`) are ignored.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut filter = None;
        let mut quick = ral_core::env::bench_quick();
        let mut save_path = ral_core::env::bench_json();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--save" => {
                    if let Some(path) = args.next() {
                        save_path = Some(PathBuf::from(path));
                    }
                }
                "--quick" => quick = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Harness {
            warmup: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(300)
            },
            sample_time: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(60)
            },
            default_sample_size: if quick { 5 } else { 21 },
            filter,
            save_path,
            records: Vec::new(),
        }
    }

    fn wants(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: String, sample_size: usize, f: impl FnOnce(&mut Bencher<'_>)) {
        if !self.wants(&name) {
            return;
        }
        let mut bencher = Bencher {
            harness: self,
            sample_size,
            record: None,
            name: name.clone(),
        };
        f(&mut bencher);
        if let Some(record) = bencher.record {
            eprintln!(
                "bench {:<44} median {:>10}   (mean {}, {} samples x {} iters)",
                record.name,
                human(record.median),
                human(record.mean),
                record.samples,
                record.iters_per_sample,
            );
            self.records.push(record);
        }
    }

    /// Measures a single standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        self.run_one(name.to_string(), self.default_sample_size, f);
    }

    /// Opens a named group; benchmarks inside are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Renders all collected records as a JSON array.
    pub fn json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(out, "  {}{}", r.to_json(), sep);
        }
        out.push(']');
        out
    }

    /// Emits the JSON report: to the `--save` path (or `RAL_BENCH_JSON`)
    /// if given, else to stdout between explicit markers. Called once by
    /// [`bench_main!`].
    pub fn finalize(&self) {
        if self.records.is_empty() {
            return;
        }
        let json = self.json();
        match &self.save_path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("warning: could not write {path:?}: {e}");
                } else {
                    eprintln!("wrote {} records to {path:?}", self.records.len());
                }
            }
            None => {
                println!("BENCH-JSON-BEGIN");
                println!("{json}");
                println!("BENCH-JSON-END");
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group
    /// (use a small count for expensive routines).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    /// Measures `group/id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher<'_>)) {
        let name = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.harness.default_sample_size);
        self.harness.run_one(name, samples, f);
    }

    /// Measures `group/id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for criterion source compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group: a runner function calling each listed
/// benchmark function in order. Drop-in for `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Harness) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a bench binary: builds a [`Harness`] from CLI
/// args, runs the groups, and emits the JSON report. Drop-in for
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::Harness::default();
            $( $group(&mut harness); )+
            harness.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_harness() -> Harness {
        let mut h = Harness::from_args(["--quick".to_string()]);
        h.warmup = Duration::from_micros(200);
        h.sample_time = Duration::from_micros(100);
        h.default_sample_size = 3;
        h
    }

    #[test]
    fn measures_and_records() {
        let mut h = quiet_harness();
        h.bench_function("tiny", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert_eq!(r.name, "tiny");
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn groups_prefix_names_and_respect_sample_size() {
        let mut h = quiet_harness();
        let mut g = h.benchmark_group("grp");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| ()));
        g.finish();
        assert_eq!(h.records[0].name, "grp/32");
        assert_eq!(h.records[0].samples, 5);
        assert_eq!(h.records[1].name, "grp/f/7");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = quiet_harness();
        h.filter = Some("keep".to_string());
        h.bench_function("keep_this", |b| b.iter(|| ()));
        h.bench_function("drop_this", |b| b.iter(|| ()));
        assert_eq!(h.records.len(), 1);
        assert_eq!(h.records[0].name, "keep_this");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        // Non-ASCII passes through raw — valid JSON, unlike {:?}'s \u{b5}.
        assert_eq!(json_string("5µs"), "\"5µs\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = quiet_harness();
        h.bench_function("a", |b| b.iter(|| ()));
        h.bench_function("b", |b| b.iter(|| ()));
        let json = h.json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(json.matches("median_ns").count(), 2);
    }
}
