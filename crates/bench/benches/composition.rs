//! Ablation A2 — `⊗` vs `⊗ts` on random two-object RGA workloads.
//!
//! The unrestricted composition occasionally produces non-RA-linearizable
//! histories (the Figure 10 phenomenon); the shared-timestamp composition
//! never does (Theorem 5.5). The bench times the composed checker under
//! both disciplines and prints the measured acceptance rates.
//!
//! Run with `cargo bench -p ral-bench --bench composition`.

use ral_bench::{bench_group, bench_main, Criterion};
use ral_core::compose::{check_composed, MultiObjSpec, ObjLabel};
use ral_core::history::History;
use ral_core::ralin::Strategy;
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::schedule::{drive_multi, ScheduleConfig};
use ral_spec::rga::{Anchor, RgaOp, RgaSpec};
use std::hint::black_box;

fn random_two_rga_history(mode: TsMode, seed: u64) -> History<ObjLabel<RgaOp<u16>>> {
    let mut cl = MultiCluster::new(Rga::<u16>::new(), 2, 3, mode);
    let mut next: u16 = 0;
    drive_multi(
        &mut cl,
        &ScheduleConfig::default(),
        seed,
        |rng, _, _, state| {
            let roll: u8 = rng.random_range(0..10);
            if roll < 5 {
                let visible = state.visible();
                let anchor = if visible.is_empty() || rng.random_bool(0.3) {
                    Anchor::Head
                } else {
                    Anchor::Elem(visible[rng.random_range(0..visible.len())])
                };
                next += 1;
                Some(RgaCall::AddAfter(anchor, next))
            } else {
                Some(RgaCall::Read)
            }
        },
    );
    cl.into_history()
}

fn acceptance_rate(mode: TsMode, seeds: u64) -> (u64, u64) {
    let spec = MultiObjSpec::new(RgaSpec::new(), 2);
    let mut accepted = 0;
    for seed in 0..seeds {
        let h = random_two_rga_history(mode, seed);
        if check_composed(&h, &spec, Strategy::TimestampOrder).is_ok() {
            accepted += 1;
        }
    }
    (accepted, seeds)
}

fn bench_composition(c: &mut Criterion) {
    let spec = MultiObjSpec::new(RgaSpec::new(), 2);
    c.bench_function("compose_check_per_object", |b| {
        b.iter(|| {
            let h = random_two_rga_history(TsMode::PerObject, 3);
            black_box(check_composed(&h, &spec, Strategy::TimestampOrder))
        })
    });
    c.bench_function("compose_check_shared_ts", |b| {
        b.iter(|| {
            let h = random_two_rga_history(TsMode::Shared, 3);
            let lin = check_composed(&h, &spec, Strategy::TimestampOrder);
            assert!(lin.is_ok(), "⊗ts histories are always RA-linearizable");
            black_box(lin)
        })
    });

    // Print the acceptance-rate series (the "table" of this ablation).
    let (shared_ok, total) = acceptance_rate(TsMode::Shared, 60);
    let (per_obj_ok, _) = acceptance_rate(TsMode::PerObject, 60);
    println!("\ncomposed TO-check acceptance over {total} random workloads:");
    println!("  ⊗ts (shared generator):   {shared_ok}/{total}");
    println!("  ⊗   (per-object clocks):  {per_obj_ok}/{total}");
    assert_eq!(shared_ok, total, "Theorem 5.5 must hold on every workload");
}

bench_group!(composition, bench_composition);
bench_main!(composition);
