//! Replication-runtime throughput: delivered effectors/sec of the mailbox
//! drain on a `multi_mix`-class workload (50 replicas × 32 objects of a
//! TO LWW-Register), at 1 and 8 configured runtime threads.
//!
//! This measures the runtime itself, not the discrete-event simulator: the
//! workload invokes in round-robin bursts and drains every mailbox with
//! `deliver_all`, so nearly all time is spent applying effectors. Every
//! invocation is delivered at the 49 other replicas, so one run performs
//! `ops × 49` deliveries; the count is deterministic and baked into the
//! benchmark name (`{threads}thr_{events}ev`), making the JSON report
//! (median_ns per run) yield events/sec directly. The derived events/sec is
//! also printed per thread count before sampling.
//!
//! Thread counts go through the production configuration path
//! ([`exec::override_threads`] + [`ExecConfig::from_env`], the equivalent
//! of setting `RAL_RUNTIME_THREADS`), which caps workers at the machine's
//! available parallelism — so the 8-thread row reports what that setting
//! actually buys on this hardware rather than the cost of oversubscribing
//! it. Outcomes are thread-count invariant either way (the
//! `exec_equivalence` suite forces real 8-worker runs and proves it).
//!
//! Run with `cargo bench -p ral-bench --bench runtime_throughput`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::ids::{ObjId, ReplicaId};
use ral_crdts::op::lww_register::{LwwRegister, RegCall};
use ral_runtime::exec::{self, ExecConfig};
use ral_runtime::multi::{MultiCluster, TsMode};
use std::hint::black_box;
use std::time::Instant;

const REPLICAS: usize = 50;
const OBJECTS: usize = 32;
const OPS: usize = 10_000;
/// Invocations between drains: big enough that drains amortize executor
/// dispatch, small enough that the pending suffix stays cache-resident.
const BURST: usize = 1_000;
const THREADS: [usize; 2] = [1, 8];

/// One complete run: `OPS` writes round-robin over replicas and objects,
/// drained every `BURST`; returns the deliveries performed (constant).
fn run(exec: ExecConfig) -> usize {
    let mut cluster = MultiCluster::with_exec(
        LwwRegister::<u8>::new(),
        OBJECTS,
        REPLICAS,
        TsMode::Shared,
        exec,
    );
    for i in 0..OPS {
        let r = ReplicaId((i % REPLICAS) as u32);
        let obj = ObjId(((i / REPLICAS) % OBJECTS) as u32);
        cluster.invoke(r, obj, RegCall::Write((i % 251) as u8));
        if i % BURST == BURST - 1 {
            cluster.deliver_all();
        }
    }
    cluster.deliver_all();
    assert!(cluster.converged());
    OPS * (REPLICAS - 1)
}

fn mailbox_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput/multi_mix_50x32");
    group.sample_size(11);
    for threads in THREADS {
        exec::override_threads(Some(threads));
        let cfg = ExecConfig::from_env();
        let start = Instant::now();
        let events = run(cfg);
        eprintln!(
            "runtime_throughput: {threads} thread(s) ({} granted) — {events} deliveries/run, \
             ~{:.0} events/sec",
            cfg.threads,
            events as f64 / start.elapsed().as_secs_f64()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}thr_{events}ev")),
            &cfg,
            |b, &cfg| b.iter(|| black_box(run(cfg))),
        );
    }
    exec::override_threads(None);
    group.finish();
}

bench_group!(runtime_throughput, mailbox_drain);
bench_main!(runtime_throughput);
