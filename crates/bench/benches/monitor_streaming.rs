//! Streaming-monitor throughput: monitored events/sec over rolling-
//! partition churn histories of 1k, 10k, and 100k operations.
//!
//! Histories are generated once per size by a deterministic simulation
//! (four replicas on a tick-tight LAN with recurring 2|2 partition
//! windows — the regime where causal stability keeps the monitor's
//! retained state O(window)); the measured region is the monitor alone,
//! replaying the recorded stream event by event. Every replay must end
//! accepted (`Verdict::Ok`) and fully settled, so a monitor regression
//! fails the bench outright rather than skewing it. The benchmark name
//! encodes the operation count (`{n}ops`), making the JSON report
//! (median_ns per replay) yield monitored ops/sec directly; the derived
//! rate and the peak live window / configuration counts are printed per
//! size before sampling.
//!
//! Run with `cargo bench -p ral-bench --bench monitor_streaming`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::history::History;
use ral_core::label::Identity;
use ral_core::ralin::{MonitorFeed, MonitorStats, Verdict};
use ral_core::rng::Rng;
use ral_crdts::op::counter::OpCounter;
use ral_runtime::op_based::OpBased;
use ral_sim::driver::{Driver, OpDriver};
use ral_sim::fault::{FaultPlan, PartitionWindow};
use ral_sim::network::{Latency, LinkFaults, Network, Topology};
use ral_sim::sim::{self, SimConfig};
use ral_sim::time::SimTime;
use ral_verify::workloads;
use std::hint::black_box;
use std::time::Instant;

type CtrLabel = <OpCounter as OpBased>::Label;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const REPLICAS: usize = 4;

/// The churn environment: a 60-tick 2|2 partition window (rolling
/// through three different splits — short enough that each side holds
/// only a handful of concurrent ops) reopening every 3000 ticks on an
/// otherwise tick-tight LAN.
fn churn_config(duration: u64) -> SimConfig {
    let splits = [vec![0u32, 0, 1, 1], vec![0, 1, 0, 1], vec![0, 1, 1, 0]];
    let mut partitions = Vec::new();
    let mut start = 1_000;
    while start + 60 < duration {
        partitions.push(PartitionWindow::new(
            SimTime(start),
            SimTime(start + 60),
            splits[partitions.len() % splits.len()].clone(),
        ));
        start += 3_000;
    }
    SimConfig {
        n_replicas: REPLICAS,
        duration: SimTime(duration),
        invoke_every: Latency::jittered(25, 30),
        gossip_every: Latency::jittered(20, 25),
        network: Network {
            topology: Topology::Uniform(Latency::jittered(1, 2)),
            faults: LinkFaults::NONE,
            retry: 10,
        },
        faults: FaultPlan {
            partitions,
            crashes: vec![],
        },
        final_sync: true,
    }
}

/// Generates a churn history of at least `n_ops` operations (the invoke
/// rate is ~0.1 ops/tick, so the duration is sized with headroom).
fn churn_history(n_ops: usize) -> History<CtrLabel> {
    let cfg = churn_config(n_ops as u64 * 11 + 2_000);
    let mut driver = OpDriver::new(OpCounter, cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::counter(rng))
    });
    sim::run(&mut driver, &cfg, 0xBEEF);
    assert!(driver.converged(), "churn generation failed to converge");
    let h = driver.into_cluster().into_history();
    assert!(
        h.len() >= n_ops,
        "{} ops generated, wanted {n_ops}",
        h.len()
    );
    h
}

/// One monitored replay of the full stream: every operation fed with its
/// visibility, every origin frontier observed, and the generating run's
/// final sync replayed as full end-of-stream frontiers. Returns the final
/// stats; panics unless the stream ends accepted and fully settled.
fn replay(h: &History<CtrLabel>) -> MonitorStats {
    let mut feed = MonitorFeed::new(&Identity, &ral_spec::counter::CounterSpec, REPLICAS);
    let mut fronts = [0usize; REPLICAS];
    for i in 0..h.len() {
        feed.feed_op(h.label(i), h.preds(i));
        let r = h.op(i).replica;
        let f = &mut fronts[r.0 as usize];
        while *f < h.len() && (*f == i || h.preds(i).contains(*f)) {
            *f += 1;
        }
        feed.observe_frontier(r, *f);
    }
    for r in 0..REPLICAS {
        feed.observe_frontier(ral_core::ids::ReplicaId(r as u32), h.len());
    }
    assert_eq!(
        feed.verdict(),
        Verdict::Ok,
        "churn replay must end accepted"
    );
    let stats = feed.stats().clone();
    assert_eq!(stats.settled, h.len() as u64, "stream must settle fully");
    stats
}

fn churn_replays(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_streaming/churn_4r");
    group.sample_size(11);
    for n_ops in SIZES {
        let h = churn_history(n_ops);
        let start = Instant::now();
        let stats = replay(&h);
        eprintln!(
            "monitor_streaming: {} ops — ~{:.0} monitored ops/sec, peak live window {}, \
             peak live configs {}, {} compactions",
            h.len(),
            h.len() as f64 / start.elapsed().as_secs_f64(),
            stats.peak_live_window,
            stats.peak_live_configs,
            stats.compactions
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_ops}ops")),
            &h,
            |b, h| b.iter(|| black_box(replay(h))),
        );
    }
    group.finish();
}

bench_group!(monitor_streaming, churn_replays);
bench_main!(monitor_streaming);
