//! Fuzzer throughput: scenarios generated/sec, full campaign cost, and
//! the price of shrinking one counterexample.
//!
//! Three groups on the internal harness:
//!
//! * `generate` — derive + render + parse one scenario per shipped
//!   family draw (the pure-generator hot path, no simulation);
//! * `campaign` — a complete seeded 20-run campaign over the shipped
//!   families (replay + oracle cross-check + coverage accounting), which
//!   must end with zero findings;
//! * `shrink` — delta-debug one diverging `broken_counter` scenario to
//!   its 1-minimal core (the per-finding cost a real campaign pays).
//!
//! Every run is deterministic, so each group also asserts its outcome —
//! a fuzzer regression (missed negative control, lost coverage, shrink
//! blow-up) fails the bench rather than silently shifting the numbers.
//!
//! Run with `cargo bench -p ral-bench --bench fuzz_throughput`.

use ral_bench::{bench_group, bench_main, Criterion};
use ral_core::rng::Rng;
use ral_fuzz::oracle::{run_scenario, VerdictKind};
use ral_fuzz::scenario::{Family, FuzzScenario};
use ral_fuzz::{fuzz, gen, shrink, FuzzConfig};
use std::hint::black_box;

fn generate_and_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput/generate");
    group.sample_size(11);
    group.bench_function("gen_render_parse_x100", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from_u64(7);
            let families = Family::SHIPPED.to_vec();
            let mut bytes = 0usize;
            for _ in 0..100 {
                let sc = gen::generate(&mut rng, &families);
                let rendered = sc.render();
                let parsed = FuzzScenario::parse(&rendered).expect("round-trip");
                assert_eq!(parsed, sc);
                bytes += rendered.len();
            }
            black_box(bytes)
        })
    });
    group.finish();
}

fn campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput/campaign");
    group.sample_size(5);
    let cfg = FuzzConfig {
        seed: 1,
        runs: 20,
        search_budget: 200_000,
        ..Default::default()
    };
    group.bench_function("shipped_20_runs", |b| {
        b.iter(|| {
            let out = fuzz(&cfg);
            assert!(out.findings.is_empty(), "shipped families must pass");
            assert!(out.coverage.hit() > 0);
            black_box(out.stream_fnv)
        })
    });
    group.finish();
}

fn shrink_one_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_throughput/shrink");
    group.sample_size(5);
    // A diverging BrokenCounter scenario, found deterministically once.
    let sc = {
        let mut rng = Rng::seed_from_u64(1);
        (0..200)
            .map(|_| gen::generate_for_family(&mut rng, Family::BrokenCounter))
            .find(|sc| run_scenario(sc, 1_000).verdict == VerdictKind::Diverged)
            .expect("a diverging BrokenCounter scenario")
    };
    group.bench_function("broken_counter_to_core", |b| {
        b.iter(|| {
            let out = shrink::shrink(&sc, 1_000, 400);
            assert_eq!(out.verdict, VerdictKind::Diverged);
            assert!(out.scenario.n_elements() <= 6, "shrink regressed");
            black_box(out.replays)
        })
    });
    group.finish();
}

bench_group!(
    fuzz_throughput,
    generate_and_roundtrip,
    campaign,
    shrink_one_finding
);
bench_main!(fuzz_throughput);
